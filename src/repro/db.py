"""Database facade: the public entry point of the library.

A :class:`Database` owns the catalog, row storage, the grant registry,
update-authorization policies, and the access-control configuration.
Queries are admitted according to the selected model:

* ``"open"`` — no access control (the baseline substrate);
* ``"truman"`` — query modification (paper Section 3): every base
  relation is transparently replaced by the user's authorization view
  of it before execution;
* ``"non-truman"`` — the paper's model (Section 4): the query is tested
  for (unconditional or conditional) validity against the user's
  instantiated authorization views; valid queries run **unmodified**,
  invalid queries raise :class:`~repro.errors.QueryRejectedError`.

Typical usage::

    db = Database()
    db.execute_script(SCHEMA_SQL)
    db.execute("create authorization view MyGrades as "
               "select * from Grades where student_id = $user_id")
    db.grant("MyGrades", to_user="11")
    conn = db.connect(user_id="11", mode="non-truman")
    result = conn.query("select avg(grade) from Grades where student_id = '11'")
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from repro.errors import (
    AccessControlError,
    BindError,
    DurabilityError,
    ExecutionError,
    GrantError,
    IntegrityError,
    QueryRejectedError,
    ReproError,
    UnknownTableError,
    UnsupportedFeatureError,
)
from repro.sql import ast, parse_statement, parse_statements, render
from repro.algebra import ops
from repro.algebra.translate import Translator
from repro.authviews.registry import GrantRegistry, PUBLIC
from repro.authviews.session import SessionContext
from repro.authviews.views import AuthorizationView, InstantiatedView
from repro.catalog.catalog import Catalog, ViewDef
from repro.catalog.constraints import TotalParticipation
from repro.engine import ENGINES, make_executor
from repro.engine.evaluator import Evaluator, RowResolver
from repro.engine.executor import Executor
from repro.storage.table import Table

MODES = ("open", "truman", "non-truman", "motro")


@dataclass
class Result:
    """Query result: column names plus rows (bag semantics, in order)."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def as_multiset(self) -> Counter:
        return Counter(self.rows)

    def scalar(self) -> object:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        lowered = name.lower()
        for index, col in enumerate(self.columns):
            if col.lower() == lowered:
                return [row[index] for row in self.rows]
        raise ExecutionError(f"no column {name!r} in result")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class _QueryContext:
    """ExecContext implementation bound to one database + session."""

    def __init__(self, db: "Database", session: SessionContext,
                 access_params: Optional[Mapping[str, object]] = None):
        self.db = db
        self.session = session
        self.access_params = dict(access_params or {})

    def table_rows(self, name: str) -> Iterable[tuple]:
        return self.db.table(name).rows()

    def table_handle(self, name: str) -> Table:
        """Storage-level handle; lets the vectorized engine reach hash
        indexes for pushdown scans."""
        return self.db.table(name)

    def view_plan(
        self, name: str, access_args: tuple[tuple[str, object], ...] = ()
    ) -> ops.Operator:
        """Plan for an authorization-view scan inside a witness query."""
        view = self.db.catalog.view(name)
        instantiated = AuthorizationView.from_def(view).instantiate(self.session)
        access_values = dict(self.access_params)
        access_values.update(dict(access_args))
        query = instantiated.bind_access_params(access_values)
        translator = Translator(
            self.db.catalog,
            param_values=self.session.param_values(),
            access_param_values=access_values,
        )
        from repro.algebra.rewrite import push_selections

        plan = push_selections(translator.translate(query))
        if view.column_names:
            renames = tuple(
                (col.ref(), new)
                for col, new in zip(plan.columns, view.column_names)
            )
            plan = ops.Project(plan, renames)
        return plan


class Connection:
    """A session-bound handle with a fixed access-control mode."""

    def __init__(self, db: "Database", session: SessionContext, mode: str):
        self.db = db
        self.session = session
        self.mode = mode

    def query(self, sql: Union[str, ast.QueryExpr],
              access_params: Optional[Mapping[str, object]] = None,
              engine: Optional[str] = None) -> Result:
        return self.db.execute_query(
            sql, session=self.session, mode=self.mode,
            access_params=access_params, engine=engine,
        )

    def execute(self, sql: Union[str, ast.Statement],
                access_params: Optional[Mapping[str, object]] = None,
                sync: bool = True) -> object:
        return self.db.execute(
            sql, session=self.session, mode=self.mode,
            access_params=access_params, sync=sync,
        )

    def check_validity(self, sql: Union[str, ast.QueryExpr]):
        """Run only the Non-Truman validity check; returns the decision."""
        return self.db.check_validity(sql, session=self.session)


class Database:
    """Relational database with fine-grained access control.

    By default everything lives in memory and evaporates with the
    process.  Passing ``data_dir`` (or using :meth:`open` /
    :meth:`save`) attaches the durability layer
    (:mod:`repro.durability`): every mutation is written to a
    CRC-framed write-ahead log, :meth:`checkpoint` snapshots the full
    state and truncates the log, and :meth:`open` recovers tables,
    indexes, the auth-view registry, and the policy-epoch/data-version
    counters after a crash.
    """

    def __init__(self, data_dir: Optional[str] = None,
                 durability_sync: str = "group"):
        self.catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self.grants = GrantRegistry()
        #: AUTHORIZE policies (Section 4.4), managed by UpdateAuthorizer
        from repro.updates.authorize import UpdateAuthorizer

        self.update_authorizer = UpdateAuthorizer(self)
        #: Truman model: table name (lower) -> authorization view name
        self.truman_policy: dict[str, str] = {}
        #: VPD-style predicate policies (per-table WHERE fragments)
        from repro.truman.vpd import VpdPolicySet

        self.vpd_policies = VpdPolicySet()
        #: lazily-created validity checker (Non-Truman model)
        self._checker = None
        #: validity-decision cache (Section 5.6 optimization); shared
        #: across sessions, keyed on (user, query signature)
        from repro.nontruman.cache import ValidityCache

        self.validity_cache = ValidityCache()
        self.checker_options: dict[str, object] = {}
        #: prepared-statement template cache (paper Section 5.6); always
        #: populated lazily, but only consulted by execute_query when
        #: ``prepared_enabled`` (or the per-call flag) says so
        from repro.prepared import PreparedStatementCache

        self.prepared = PreparedStatementCache(self)
        self.prepared_enabled = False
        #: undo log for the active transaction (None = autocommit)
        self._txn_log: Optional[list[tuple]] = None
        #: ANALYZE snapshot for the optimizer's cost model
        from repro.optimizer.statistics import TableStatistics

        self.statistics = TableStatistics(self)
        #: execution engine used when no per-query override is given:
        #: "row" (tuple-at-a-time oracle) or "vectorized" (columnar)
        self.default_engine = "row"
        #: ReBAC subsystem (repro.rebac); set by attach_rebac
        self.rebac = None
        #: durability manager (repro.durability); None = in-memory
        self.durability = None
        if data_dir is not None:
            self._attach_durability(data_dir, sync=durability_sync)

    # -- durability lifecycle ---------------------------------------------

    @classmethod
    def open(cls, data_dir: str, sync: str = "group",
             injector: Optional[object] = None) -> "Database":
        """Open (or create) a durable database rooted at ``data_dir``.

        If the directory holds durable state, the latest valid snapshot
        is loaded and the WAL tail replayed (a torn final record is
        detected by CRC and truncated, never applied).  Otherwise an
        empty durable database is initialized there.
        """
        db = cls()
        db._attach_durability(data_dir, sync=sync, injector=injector)
        return db

    def save(self, data_dir: str, sync: str = "group") -> None:
        """Attach durable storage to this in-memory database.

        Writes an initial checkpoint of the current state to
        ``data_dir``; subsequent mutations are logged.  Refuses to save
        over a directory that already holds durable data.
        """
        from repro.durability.layout import has_durable_data

        if has_durable_data(data_dir):
            raise DurabilityError(
                f"{data_dir!r} already holds durable data; open it with "
                "Database.open or choose an empty directory"
            )
        self._attach_durability(data_dir, sync=sync)

    def _attach_durability(self, data_dir: str, sync: str = "group",
                           injector: Optional[object] = None) -> None:
        if self.durability is not None:
            raise DurabilityError(
                f"database is already durable at {self.durability.data_dir!r}"
            )
        from repro.durability.manager import DurabilityManager

        DurabilityManager(
            data_dir, sync_policy=sync, injector=injector
        ).attach(self)

    def checkpoint(self) -> int:
        """Snapshot all state + truncate the WAL; returns the LSN."""
        if self.durability is None:
            raise DurabilityError(
                "checkpoint requires a durable database "
                "(Database.open or save first)"
            )
        return self.durability.checkpoint()

    def close(self, checkpoint: bool = True) -> None:
        """Flush and close durable storage (no-op when in-memory)."""
        if self.durability is not None:
            self.durability.close(checkpoint=checkpoint)

    def _durable_commit(self) -> None:
        """Group-commit the WAL when durable and not inside BEGIN."""
        if self.durability is not None and self._txn_log is None:
            self.durability.commit()

    # -- connections ------------------------------------------------------

    def connect(self, user_id: Optional[object] = None, mode: str = "open",
                **extra) -> Connection:
        if mode not in MODES:
            raise AccessControlError(f"unknown access-control mode {mode!r}")
        time = extra.pop("time", None)
        location = extra.pop("location", None)
        session = SessionContext(
            user_id=user_id, time=time, location=location, extra=extra
        )
        return Connection(self, session, mode)

    def serve(self, **kwargs) -> "object":
        """Start a concurrent enforcement gateway over this database.

        Keyword arguments are forwarded to
        :class:`repro.service.EnforcementGateway` (``workers``,
        ``queue_size``, ``cache_shards``, ...).  The caller owns the
        gateway and should ``shutdown()`` it (or use it as a context
        manager).
        """
        from repro.service import EnforcementGateway

        return EnforcementGateway(self, **kwargs)

    # -- storage access ------------------------------------------------------

    def table(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise UnknownTableError(name)
        return table

    # -- script / statement execution -------------------------------------------

    def execute_script(self, sql: str) -> None:
        """Execute a ``;``-separated script of statements (open mode)."""
        for statement in parse_statements(sql):
            self.execute(statement)

    def execute(
        self,
        sql: Union[str, ast.Statement],
        session: Optional[SessionContext] = None,
        mode: str = "open",
        access_params: Optional[Mapping[str, object]] = None,
        sync: bool = True,
    ) -> object:
        """Execute any statement; returns a Result for queries, a count
        for DML, None for DDL.

        When durable, non-query statements are group-committed (WAL
        fsync) before returning unless ``sync=False`` — concurrent
        callers (the gateway) pass False and issue one shared
        :meth:`DurabilityManager.commit` per batch instead.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        session = session or SessionContext()

        if isinstance(statement, ast.QueryExpr):
            return self.execute_query(
                statement, session=session, mode=mode, access_params=access_params
            )
        result = self._execute_statement(statement, session, mode)
        if sync:
            self._durable_commit()
        return result

    def _execute_statement(
        self, statement: ast.Statement, session: SessionContext, mode: str
    ) -> object:
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateView):
            self._create_view(statement)
            self._log_ddl(statement)
            return None
        if isinstance(statement, ast.DropStmt):
            if statement.kind == "table":
                self.catalog.drop_table(statement.name)
                self._tables.pop(statement.name.lower(), None)
            else:
                self.catalog.drop_view(statement.name)
            self.prepared.invalidate_relation(statement.name)
            self._log_ddl(statement)
            return None
        if isinstance(statement, ast.Grant):
            return self.grant(statement.object_name, to_user=statement.grantee)
        if isinstance(statement, ast.AuthorizeStmt):
            self.update_authorizer.add_policy(statement)
            self._log_ddl(statement)
            return None
        if isinstance(statement, ast.TransactionStmt):
            return self._transaction(statement.action)
        if isinstance(statement, ast.Insert):
            return self._insert(statement, session, mode)
        if isinstance(statement, ast.Update):
            return self._update(statement, session, mode)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, session, mode)
        raise UnsupportedFeatureError(
            f"cannot execute statement {type(statement).__name__}"
        )

    def _log_ddl(self, statement: ast.Statement) -> None:
        if self.durability is not None:
            self.durability.log_ddl(render(statement))

    # -- DDL ------------------------------------------------------------------

    def _make_table(self, schema) -> Table:
        """Storage for one relation; the cluster coordinator overrides
        this to hash-partition the rows across its storage nodes."""
        return Table(schema)

    def _create_table(self, statement: ast.CreateTable) -> None:
        schema = self.catalog.create_table_from_ast(statement)
        table = self._make_table(schema)
        pk = self.catalog.primary_key(schema.name)
        if pk is not None:
            table.create_index(pk.columns, unique=True)
        for unique in self.catalog.uniques_for(schema.name):
            table.create_index(unique.columns, unique=True)
        self._tables[schema.name.lower()] = table
        self.prepared.invalidate_relation(schema.name)
        if self.durability is not None:
            self._log_ddl(statement)
            self.durability.register_table(table)

    def _create_view(self, statement: ast.CreateView) -> None:
        view = ViewDef(
            name=statement.name,
            query=statement.query,
            authorization=statement.authorization,
            column_names=statement.column_names,
        )
        self.catalog.create_view(view)
        self.prepared.invalidate_relation(statement.name)

    def grant(self, view_name: str, to_user: str, grantor: Optional[str] = None) -> None:
        """GRANT SELECT on an authorization view (PUBLIC = everyone)."""
        if not self.catalog.has_view(view_name):
            raise GrantError(f"no view named {view_name!r}")
        self.grants.grant(view_name, to_user, grantor)
        self.prepared.invalidate_user(to_user)
        self._durable_commit()

    def grant_public(self, view_name: str) -> None:
        self.grant(view_name, PUBLIC)

    def add_participation_constraint(self, constraint: TotalParticipation) -> None:
        """Declare a total-participation integrity constraint (used by U3)."""
        self.catalog.add_participation(constraint)
        if self.durability is not None:
            self.durability.log_participation(constraint)

    def set_truman_view(self, table_name: str, view_name: str) -> None:
        """Truman model: DBA maps a base table to its per-user view."""
        if not self.catalog.has_table(table_name):
            raise UnknownTableError(table_name)
        if not self.catalog.has_view(view_name):
            raise UnknownTableError(view_name)
        self.truman_policy[table_name.lower()] = view_name
        self.prepared.invalidate_relation(table_name)
        if self.durability is not None:
            self.durability.log_truman(table_name.lower(), view_name)

    # -- authorization views available to a user -----------------------------------

    def available_views(self, session: SessionContext) -> list[InstantiatedView]:
        """The user's instantiated authorization views (Section 4.1)."""
        result = []
        for view in self.catalog.views():
            if not view.authorization:
                continue
            if not self.grants.is_granted(view.name, session.user):
                continue
            result.append(AuthorizationView.from_def(view).instantiate(session))
        return result

    # -- query execution -------------------------------------------------------

    def execute_query(
        self,
        sql: Union[str, ast.QueryExpr],
        session: Optional[SessionContext] = None,
        mode: str = "open",
        access_params: Optional[Mapping[str, object]] = None,
        engine: Optional[str] = None,
        ctx=None,
        prepared: Optional[bool] = None,
    ) -> Result:
        """Run a query under the given access-control mode.

        ``prepared`` opts in to (or out of) the prepared-statement
        pipeline (:mod:`repro.prepared`) for this call; ``None`` defers
        to :attr:`prepared_enabled`.  Queries the pipeline cannot serve
        identically fall back to the standard path transparently.
        """
        use_prepared = self.prepared_enabled if prepared is None else prepared
        if use_prepared and not access_params:
            from repro.prepared import PREPARABLE_MODES, PreparedFallback
            from repro.prepared.pipeline import execute_prepared

            if mode in PREPARABLE_MODES:
                try:
                    return execute_prepared(
                        self, sql, session or SessionContext(), mode,
                        engine=engine, ctx=ctx,
                    )
                except PreparedFallback:
                    pass

        query = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(query, ast.QueryExpr):
            raise BindError("execute_query requires a SELECT statement")
        session = session or SessionContext()

        if mode == "open":
            return self._run(query, session, access_params, engine, ctx)
        if mode == "truman":
            from repro.truman.rewrite import truman_rewrite

            modified = truman_rewrite(self, query, session)
            return self._run(modified, session, access_params, engine, ctx)
        if mode == "motro":
            from repro.motro.model import motro_query

            return motro_query(self, query, session)
        if mode == "non-truman":
            decision = self.check_validity(query, session, ctx=ctx)
            if not decision.valid:
                raise QueryRejectedError(
                    f"query rejected by Non-Truman model: {decision.reason}",
                    decision=decision,
                )
            return self._run(query, session, access_params, engine, ctx)
        raise AccessControlError(f"unknown access-control mode {mode!r}")

    def check_validity(
        self,
        sql: Union[str, ast.QueryExpr],
        session: Optional[SessionContext] = None,
        ctx=None,
    ):
        """Run the Non-Truman validity test; returns a ValidityDecision.

        ``ctx`` (a :class:`repro.service.context.QueryContext`) makes the
        inference cooperative: the matcher's cover search observes the
        request's deadline/cancel token and aborts mid-inference.
        """
        from repro.nontruman.checker import ValidityChecker

        query = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(query, ast.QueryExpr):
            raise BindError("check_validity requires a SELECT statement")
        session = session or SessionContext()
        checker = ValidityChecker(self, **self.checker_options)
        return checker.check(query, session, ctx=ctx)

    def _run(
        self,
        query: ast.QueryExpr,
        session: SessionContext,
        access_params: Optional[Mapping[str, object]] = None,
        engine: Optional[str] = None,
        ctx=None,
    ) -> Result:
        plan = self.plan_query(query, session, access_params)
        return self.run_plan(plan, session, access_params, engine, ctx)

    def plan_query(
        self,
        query: ast.QueryExpr,
        session: SessionContext,
        access_params: Optional[Mapping[str, object]] = None,
    ) -> ops.Operator:
        """Bind and translate a query to a logical plan."""

        def view_ok(view: ViewDef) -> bool:
            if not view.authorization:
                return True
            return self.grants.is_granted(view.name, session.user)

        translator = Translator(
            self.catalog,
            param_values=session.param_values(),
            access_param_values=access_params,
            view_filter=view_ok,
        )
        from repro.algebra.rewrite import push_selections
        from repro.instrument import COUNTERS

        COUNTERS.bump("plan.build")
        return push_selections(translator.translate(query))

    def plan_template(
        self, query: ast.QueryExpr, session: SessionContext
    ) -> ops.Operator:
        """Plan a literal-stripped query *skeleton* (repro.prepared):
        like :meth:`plan_query` but ``$$_litN`` placeholders survive
        translation so literals can be bound into the plan later."""

        def view_ok(view: ViewDef) -> bool:
            if not view.authorization:
                return True
            return self.grants.is_granted(view.name, session.user)

        translator = Translator(
            self.catalog,
            param_values=session.param_values(),
            view_filter=view_ok,
            allow_access_params=True,
        )
        from repro.algebra.rewrite import push_selections
        from repro.instrument import COUNTERS

        COUNTERS.bump("plan.build")
        return push_selections(translator.translate(query))

    def run_plan(
        self,
        plan: ops.Operator,
        session: Optional[SessionContext] = None,
        access_params: Optional[Mapping[str, object]] = None,
        engine: Optional[str] = None,
        ctx=None,
        optimize: bool = True,
        compile_cache=None,
    ) -> Result:
        """Execute a logical plan.

        ``optimize=False`` skips the per-execution selection pushdown —
        the prepared pipeline passes pre-pushed plans (pushdown is
        structure-only, so it commutes with literal binding).
        ``compile_cache`` lets the vectorized engine reuse compiled
        kernels across executions of the same template.
        """
        session = session or SessionContext()

        engine = engine or self.default_engine
        if engine not in ENGINES:
            raise ExecutionError(
                f"unknown execution engine {engine!r} (expected one of {ENGINES})"
            )
        if optimize:
            from repro.algebra.rewrite import push_selections

            plan = push_selections(plan)
        executor = make_executor(
            engine,
            _QueryContext(self, session, access_params),
            ctx=ctx,
            compile_cache=compile_cache,
        )
        rows = executor.execute(plan)
        return Result(tuple(c.name for c in plan.columns), rows)

    # -- DML with integrity + update authorization --------------------------------

    def _eval_const(self, expr: ast.Expr, session: SessionContext) -> object:
        from repro.algebra import expr as exprs

        bound = exprs.substitute_params(expr, session.param_values())
        evaluator = Evaluator(RowResolver(()))
        return evaluator.evaluate(bound, ())

    def _insert(self, statement: ast.Insert, session: SessionContext, mode: str) -> int:
        self.validity_cache.invalidate_data()
        table = self.table(statement.table)
        schema = table.schema
        if statement.query is not None:
            source = self.execute_query(statement.query, session=session, mode=mode)
            value_rows = source.rows
        else:
            value_rows = [
                tuple(self._eval_const(v, session) for v in row)
                for row in statement.rows
            ]

        count = 0
        for values in value_rows:
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT has {len(values)} values for "
                        f"{len(statement.columns)} columns"
                    )
                full = [None] * len(schema.columns)
                for col_name, value in zip(statement.columns, values):
                    full[schema.column_index(col_name)] = value
                row = tuple(full)
            else:
                row = tuple(values)
            self._check_row_constraints(schema.name, row)
            if mode != "open":
                self.update_authorizer.check_insert(schema.name, row, session)
            row_id = table.insert(row)
            self._log_undo(("insert", schema.name, row_id))
            count += 1
        return count

    def _update(self, statement: ast.Update, session: SessionContext, mode: str) -> int:
        self.validity_cache.invalidate_data()
        table = self.table(statement.table)
        schema = table.schema
        binding = schema.name
        resolver = RowResolver(
            tuple(ops.OutCol(binding, c) for c in schema.column_names)
        )
        evaluator = Evaluator(resolver)
        from repro.algebra import expr as exprs

        def bind(expr: ast.Expr) -> ast.Expr:
            expr = exprs.substitute_params(expr, session.param_values())

            def visit(node):
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return ast.ColumnRef(binding, node.name)
                return None

            return exprs.transform(expr, visit)

        where = bind(statement.where) if statement.where is not None else None
        assignments = [
            (schema.column_index(col), bind(expr)) for col, expr in statement.assignments
        ]
        changed_columns = tuple(col for col, _ in statement.assignments)

        count = 0
        for row_id, row in list(table.rows_with_ids()):
            if where is not None and not evaluator.matches(where, row):
                continue
            new_row = list(row)
            for ordinal, expr in assignments:
                new_row[ordinal] = evaluator.evaluate(expr, row)
            new_tuple = tuple(new_row)
            self._check_row_constraints(schema.name, new_tuple, ignore_row_id=row_id)
            if mode != "open":
                self.update_authorizer.check_update(
                    schema.name, row, new_tuple, changed_columns, session
                )
            old = table.update_row(row_id, new_tuple)
            self._log_undo(("update", schema.name, row_id, old))
            count += 1
        return count

    def _delete(self, statement: ast.Delete, session: SessionContext, mode: str) -> int:
        self.validity_cache.invalidate_data()
        table = self.table(statement.table)
        schema = table.schema
        binding = schema.name
        resolver = RowResolver(
            tuple(ops.OutCol(binding, c) for c in schema.column_names)
        )
        evaluator = Evaluator(resolver)
        from repro.algebra import expr as exprs

        where = None
        if statement.where is not None:
            where = exprs.substitute_params(
                statement.where, session.param_values()
            )

            def visit(node):
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return ast.ColumnRef(binding, node.name)
                return None

            where = exprs.transform(where, visit)

        count = 0
        for row_id, row in list(table.rows_with_ids()):
            if where is not None and not evaluator.matches(where, row):
                continue
            self._check_no_referencing_rows(schema.name, row)
            if mode != "open":
                self.update_authorizer.check_delete(schema.name, row, session)
            deleted = table.delete_row(row_id)
            self._log_undo(("delete", schema.name, deleted))
            count += 1
        return count

    # -- transactions -----------------------------------------------------------------

    def _log_undo(self, entry: tuple) -> None:
        if self._txn_log is not None:
            self._txn_log.append(entry)

    @property
    def in_transaction(self) -> bool:
        return self._txn_log is not None

    def begin(self) -> None:
        """Start a transaction; DML until COMMIT/ROLLBACK is undoable."""
        if self._txn_log is not None:
            raise ExecutionError("a transaction is already active")
        self._txn_log = []

    def commit(self) -> None:
        if self._txn_log is None:
            raise ExecutionError("no active transaction")
        self._txn_log = None
        self._durable_commit()

    def rollback(self) -> None:
        """Undo every change made since BEGIN, in reverse order."""
        if self._txn_log is None:
            raise ExecutionError("no active transaction")
        log, self._txn_log = self._txn_log, None
        for entry in reversed(log):
            kind = entry[0]
            table = self.table(entry[1])
            if kind == "insert":
                table.delete_row(entry[2])
            elif kind == "update":
                table.update_row(entry[2], entry[3])
            elif kind == "delete":
                table.insert(entry[2])
        self.validity_cache.invalidate_data()

    def _transaction(self, action: str) -> None:
        if action == "begin":
            self.begin()
        elif action == "commit":
            self.commit()
        else:
            self.rollback()

    # -- constraint enforcement -----------------------------------------------------

    def _check_row_constraints(
        self, table_name: str, row: tuple, ignore_row_id: Optional[int] = None
    ) -> None:
        """CHECK predicates and foreign keys for one candidate row.

        NOT NULL and uniqueness are enforced by the storage layer.
        """
        schema = self.catalog.table(table_name)
        resolver = RowResolver(
            tuple(ops.OutCol(table_name, c) for c in schema.column_names)
        )
        evaluator = Evaluator(resolver)
        from repro.algebra import expr as exprs

        for check in self.catalog.checks_for(table_name):

            def visit(node):
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return ast.ColumnRef(table_name, node.name)
                return None

            predicate = exprs.transform(check.predicate, visit)
            if evaluator.evaluate(predicate, row) is False:
                raise IntegrityError(
                    f"CHECK constraint violated on {table_name}: {check.predicate}"
                )

        for fk in self.catalog.foreign_keys_for(table_name):
            key = tuple(row[schema.column_index(c)] for c in fk.columns)
            if any(v is None for v in key):
                continue
            ref_table = self.table(fk.ref_table)
            index = ref_table.find_index(fk.ref_columns)
            if index is not None:
                if index.lookup(key):
                    continue
            else:
                ref_schema = ref_table.schema
                ordinals = [ref_schema.column_index(c) for c in fk.ref_columns]
                if any(
                    tuple(r[o] for o in ordinals) == key for r in ref_table.rows()
                ):
                    continue
            raise IntegrityError(
                f"foreign key violation: {table_name}({', '.join(fk.columns)}) = "
                f"{key!r} has no match in {fk.ref_table}"
            )

    def _check_no_referencing_rows(self, table_name: str, row: tuple) -> None:
        """RESTRICT semantics: refuse to delete a referenced row."""
        schema = self.catalog.table(table_name)
        for fk in self.catalog.foreign_keys():
            if fk.ref_table.lower() != table_name.lower():
                continue
            key = tuple(row[schema.column_index(c)] for c in fk.ref_columns)
            referencing = self.table(fk.table)
            ref_schema = referencing.schema
            ordinals = [ref_schema.column_index(c) for c in fk.columns]
            for other in referencing.rows():
                if tuple(other[o] for o in ordinals) == key:
                    raise IntegrityError(
                        f"cannot delete from {table_name}: row referenced by {fk.table}"
                    )

    def analyze(self) -> None:
        """Refresh optimizer statistics (row and distinct counts)."""
        self.statistics.analyze()

    def make_optimizer(self, **kwargs):
        """A VolcanoOptimizer wired to this database's statistics."""
        from repro.optimizer import VolcanoOptimizer

        return VolcanoOptimizer(
            self.statistics.row_count,
            distinct_count=self.statistics.distinct_count,
            **kwargs,
        )

    def validate_participations(self) -> list[str]:
        """Verify every declared total-participation constraint holds.

        Returns a list of violation descriptions (empty = consistent).
        Used by tests and workload generators; these constraints are
        assertions consumed by the inference rules, not enforced on DML.
        """
        from repro.algebra import expr as exprs

        violations: list[str] = []
        for constraint in self.catalog.participations():
            core = self.table(constraint.core_table)
            remainder = self.table(constraint.remainder_table)
            core_schema = core.schema
            rem_schema = remainder.schema

            core_resolver = RowResolver(
                tuple(ops.OutCol(None, c) for c in core_schema.column_names)
            )
            rem_resolver = RowResolver(
                tuple(ops.OutCol(None, c) for c in rem_schema.column_names)
            )
            core_eval = Evaluator(core_resolver)
            rem_eval = Evaluator(rem_resolver)

            rem_rows = [
                r
                for r in remainder.rows()
                if constraint.remainder_pred is None
                or rem_eval.matches(constraint.remainder_pred, r)
            ]
            rem_ordinals = [
                rem_schema.column_index(rc) for _, rc in constraint.join_pairs
            ]
            rem_keys = {tuple(r[o] for o in rem_ordinals) for r in rem_rows}
            core_ordinals = [
                core_schema.column_index(cc) for cc, _ in constraint.join_pairs
            ]
            for row in core.rows():
                if constraint.core_pred is not None and not core_eval.matches(
                    constraint.core_pred, row
                ):
                    continue
                key = tuple(row[o] for o in core_ordinals)
                if key not in rem_keys:
                    violations.append(f"{constraint}: core row {row!r} unmatched")
        return violations
