"""The cluster coordinator: one brain, N shards, M replicas.

:class:`ClusterCoordinator` *is a* :class:`~repro.db.Database` whose
storage layer is hash-partitioned: ``_make_table`` places one fragment
of every relation on each :class:`~repro.cluster.storage_node.
StorageNode` behind a :class:`~repro.cluster.partition.
PartitionedTable` facade.  Everything above storage — the parser, the
Non-Truman validity checker, Truman rewriting, planning, the prepared-
statement pipeline — runs **once per query on the coordinator**,
exactly as on a single node; only execution touches shards:

* point scans prune to the one shard the partition key hashes to (both
  engines — see ``Executor._select_input`` and
  ``VectorizedExecutor._scan``);
* decomposable scalar aggregates scatter to every node and gather
  merged partials (:meth:`run_plan`);
* everything else reads the facade's merged row-id-ordered view, which
  is byte-identical to a single node's iteration order.

Replication: a :class:`~repro.cluster.shipper.ClusterWal` installed as
``durability`` turns every mutation and policy change into
epoch-stamped records shipped to :class:`~repro.cluster.replica.
ReadReplica` instances.  :meth:`route_read` offers a replica only when
its observed policy epoch has caught up with the coordinator's **and**
its data lag is within ``replica_max_lag`` — a freshly-appended revoke
makes every replica ineligible until it has applied that revoke.
"""

from __future__ import annotations

import random
import time
from typing import Mapping, Optional

from repro.errors import (
    ConnectionDropped,
    DurabilityError,
    ExecutionError,
    ReplicaUnavailable,
    TransientFault,
)
from repro.algebra import ops
from repro.authviews.session import SessionContext
from repro.db import Database, Result
from repro.engine import ENGINES, Evaluator, RowResolver
from repro.instrument import COUNTERS
from repro.service.clock import Clock
from repro.storage.table import Table
from repro.cluster.health import (
    HEALTHY,
    QUARANTINED,
    HealthMonitor,
    backoff_delays,
    content_digests,
)
from repro.cluster.partition import HashPartitioner, PartitionedTable
from repro.cluster.replica import ReadReplica
from repro.cluster.shipper import ClusterWal, WalShipper
from repro.cluster.storage_node import (
    StorageNode,
    decomposable_aggregate,
    exact_merge_aggregates,
    fragment_safe_subtree,
    merge_partials,
)

#: modes whose reads may be served by a caught-up replica
REPLICA_READ_MODES = ("open", "truman", "non-truman")


class ClusterCoordinator(Database):
    """Sharded, replicated Database with single-point enforcement."""

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 0,
        replica_max_lag: int = 0,
        ship_batch: int = 1,
        auto_ship_lag: Optional[int] = None,
        partition_keys: Optional[Mapping[str, tuple]] = None,
        data_dir: Optional[str] = None,
        durability_sync: str = "group",
        chaos=None,
        clock: Optional[Clock] = None,
        suspect_after: float = 5.0,
        quarantine_after: float = 15.0,
        failure_threshold: int = 3,
        health_tick_interval: float = 0.05,
        auto_catchup: bool = False,
        catchup_chunk: int = 64,
        catchup_retries: int = 5,
        catchup_backoff: float = 0.01,
        catchup_backoff_cap: float = 0.25,
        catchup_seed: int = 0,
    ):
        if shards < 1:
            raise ExecutionError(f"cluster needs at least 1 shard, got {shards}")
        self.nodes = [StorageNode(i) for i in range(int(shards))]
        #: optional per-table partition-key override (defaults to the
        #: primary key, else all columns)
        self.partition_keys = {
            name.lower(): tuple(cols)
            for name, cols in (partition_keys or {}).items()
        }
        self.replicas: list[ReadReplica] = []
        self.replica_max_lag = replica_max_lag
        self._route_cursor = 0
        #: failure detector over the replica set (injectable clock for
        #: deterministic tests; chaos fires cluster.* points)
        self.health = HealthMonitor(
            clock=clock,
            suspect_after=suspect_after,
            quarantine_after=quarantine_after,
            failure_threshold=failure_threshold,
        )
        self._clock = self.health.clock
        self._chaos = chaos
        self.health_tick_interval = health_tick_interval
        self._last_tick = self._clock.monotonic()
        #: when True, the failure-detector tick also attempts catch-up
        #: on quarantined (but reachable) replicas — self-healing with
        #: no operator in the loop
        self.auto_catchup = auto_catchup
        self.catchup_chunk = max(1, catchup_chunk)
        self.catchup_retries = catchup_retries
        self.catchup_backoff = catchup_backoff
        self.catchup_backoff_cap = catchup_backoff_cap
        self._catchup_rng = random.Random(catchup_seed)
        #: injectable sleep for deterministic backoff tests
        self._sleep = time.sleep
        super().__init__()
        #: auto_ship_lag bounds replica lag without explicit syncs: a
        #: commit ships as soon as any replica trails by that many
        #: records, even when the ship batch has not filled
        wal = ClusterWal(
            self, ship_batch=ship_batch, auto_ship_lag=auto_ship_lag,
            injector=chaos,
        )
        wal.install(self)
        wal.health = self.health
        #: recovery report when constructed over existing durable state
        self.recovery_report: Optional[dict] = None
        if data_dir is not None:
            self.recovery_report = wal.attach_data_dir(
                data_dir, sync=durability_sync
            )
        for _ in range(int(replicas)):
            self.add_replica()

    @classmethod
    def open(cls, data_dir: str, **kwargs) -> "ClusterCoordinator":
        """Restore a coordinator (and resurrect replicas) from disk.

        Shards are rebuilt by replaying the recovered DDL/rows through
        the normal partitioned-placement path; any ``replicas=N``
        requested come back through the same snapshot-bootstrap +
        tail-streaming pipeline a quarantined replica uses, so a
        restarted cluster and a never-crashed one converge on identical
        serving state.
        """
        return cls(data_dir=data_dir, **kwargs)

    # -- storage placement ------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    def _make_table(self, schema) -> PartitionedTable:
        pk = self.catalog.primary_key(schema.name)
        key = self.partition_keys.get(schema.name.lower())
        if key is None:
            key = (
                pk.columns
                if pk is not None
                else tuple(c.name for c in schema.columns)
            )
        partitioner = HashPartitioner(schema, key, len(self.nodes))
        shard_tables = [Table(schema) for _ in self.nodes]
        for node, shard_table in zip(self.nodes, shard_tables):
            node.add_table(schema.name, shard_table)
        return PartitionedTable(schema, shard_tables, partitioner)

    # -- durability is the replication log --------------------------------

    def _attach_durability(self, data_dir, sync="group", injector=None):
        raise DurabilityError(
            "a sharded coordinator attaches durable storage through "
            "ClusterCoordinator.open(data_dir) / save(data_dir); its "
            "durability slot carries the cluster replication log"
        )

    def save(self, data_dir, sync: str = "group") -> "ClusterCoordinator":
        """Attach durable storage: snapshot now, then WAL every append."""
        self.durability.attach_data_dir(data_dir, sync=sync)
        return self

    # -- replicas ---------------------------------------------------------

    @property
    def policy_epoch(self) -> int:
        return self.durability.policy_epoch

    def add_replica(self, name: Optional[str] = None) -> ReadReplica:
        """Attach a replica and stream it up to date.

        A fresh coordinator streams the full in-memory log in chunks;
        over durable/truncated history the replica bootstraps from a
        snapshot of the live state first — the same catch-up path a
        quarantined replica rejoins through.
        """
        replica = ReadReplica(name or f"r{len(self.replicas)}")
        shipper = WalShipper(
            self.durability.log,
            replica,
            ship_batch=self.durability.ship_batch,
            auto_ship_lag=self.durability.auto_ship_lag,
        )
        # a brand-new replica starts before everything, even records the
        # log no longer holds (catch-up then bootstraps it)
        shipper._cursor = 0
        self.durability.shippers.append(shipper)
        self.replicas.append(replica)
        self.health.register(replica.name)
        self._catch_up_one(shipper)
        return replica

    def sync_replicas(self) -> int:
        """Ship everything pending to every replica (manual hammer;
        raises on ship faults — see :meth:`catch_up` for the
        retry/bootstrap path)."""
        return self.durability.ship_all()

    def replica_lag(self) -> int:
        """Worst data lag (in log records) across the replicas."""
        if not self.durability.shippers:
            return 0
        return max(s.lag() for s in self.durability.shippers)

    def route_read(self) -> Optional[ReadReplica]:
        """A replica fit to serve a read right now, or None for primary.

        Fit means: the failure detector considers it ``HEALTHY`` (a
        quarantined or catching-up replica is never offered, whatever
        its lag claims), observed policy epoch ≥ the coordinator's (no
        policy change it has not applied — stamped at append time, so
        even an unshipped revoke disqualifies every replica
        immediately), and data lag within ``replica_max_lag``.
        Eligible replicas are rotated round-robin.
        """
        if not self.replicas:
            return None
        self.maybe_tick()
        epoch = self.policy_epoch
        eligible = [
            shipper.replica
            for shipper in self.durability.shippers
            if self.health.is_serving(shipper.replica.name)
            and shipper.replica.policy_epoch >= epoch
            and shipper.lag() <= self.replica_max_lag
        ]
        if not eligible:
            return None
        self._route_cursor += 1
        return eligible[self._route_cursor % len(eligible)]

    def verify_replica_serving(self, replica: ReadReplica) -> None:
        """Execution-time re-check of a routed replica (gateway hook).

        Routing and execution are separated by a queue hop; if the
        failure detector quarantined the replica — or a policy change
        landed — in between, the read must not run there.  Raises
        :class:`~repro.errors.ReplicaUnavailable`; the gateway falls
        back to the primary, so the caller still gets a policy-current
        answer.
        """
        state = self.health.state_of(replica.name)
        if state != HEALTHY:
            raise ReplicaUnavailable(
                f"replica {replica.name} is {state}; read falls back to "
                "the primary"
            )
        shipper = self._shipper_for(replica.name)
        if shipper is None:
            raise ReplicaUnavailable(f"replica {replica.name} is detached")
        if (
            replica.policy_epoch < self.policy_epoch
            or shipper.lag() > self.replica_max_lag
        ):
            raise ReplicaUnavailable(
                f"replica {replica.name} fell behind between routing and "
                "execution (epoch/lag gate)"
            )

    def _shipper_for(self, name: str) -> Optional[WalShipper]:
        for shipper in self.durability.shippers:
            if shipper.replica.name == name:
                return shipper
        return None

    # -- failure detection -------------------------------------------------

    def maybe_tick(self) -> None:
        """Rate-limited failure-detector pass (cheap on the read path)."""
        now = self._clock.monotonic()
        if now - self._last_tick < self.health_tick_interval:
            return
        self._last_tick = now
        self.tick()

    def tick(self) -> None:
        """One failure-detector pass: gather evidence, then escalate.

        An un-paused shipper counts as positive liveness evidence (an
        idle healthy cluster never drifts toward quarantine); a paused
        one — the partition/crash chaos hook — produces none, so its
        heartbeat ages into ``SUSPECT`` and then ``QUARANTINED``.  The
        ``cluster.heartbeat`` chaos point simulates lost probes.
        """
        for shipper in self.durability.shippers:
            name = shipper.replica.name
            if not self.health.may_ship(name):
                continue
            if self._chaos is not None:
                try:
                    self._chaos.fire("cluster.heartbeat")
                except Exception as exc:
                    self.health.record_failure(name, exc)
                    continue
            if not shipper.paused:
                self.health.heartbeat(name)
        self.health.tick()
        if self.auto_catchup:
            for shipper in self.durability.shippers:
                name = shipper.replica.name
                if self.health.state_of(name) != QUARANTINED:
                    continue
                if shipper.paused:
                    continue  # still unreachable; don't spin
                try:
                    self._catch_up_one(shipper)
                except ReplicaUnavailable:
                    pass  # stays quarantined; a later tick retries

    # -- catch-up streaming ------------------------------------------------

    def catch_up(
        self,
        name: Optional[str] = None,
        force_bootstrap: bool = False,
    ) -> list[dict]:
        """Stream lagging/quarantined replicas back behind the gate.

        With ``name`` the one replica is caught up unconditionally;
        without, every replica that is not currently serving (or is
        lagging) is. Returns one report per replica processed.
        """
        reports = []
        matched = False
        for shipper in list(self.durability.shippers):
            rname = shipper.replica.name
            if name is not None:
                if rname != name:
                    continue
                matched = True
            elif self.health.is_serving(rname) and shipper.lag() == 0:
                continue
            reports.append(
                self._catch_up_one(shipper, force_bootstrap=force_bootstrap)
            )
        if name is not None and not matched:
            raise ReplicaUnavailable(f"no replica named {name!r}")
        return reports

    def _catch_up_one(
        self, shipper: WalShipper, force_bootstrap: bool = False
    ) -> dict:
        """Bootstrap-if-needed, stream the WAL tail in bounded chunks
        with retry/backoff/jitter, verify digests, rejoin routing.

        The replica rejoins (``HEALTHY``) only once its lag is 0, its
        policy epoch matches the coordinator's, and the anti-entropy
        digests agree; any exhausted retry or unresolved divergence
        re-quarantines it and raises
        :class:`~repro.errors.ReplicaUnavailable`.
        """
        wal = self.durability
        replica = shipper.replica
        started = self._clock.monotonic()
        report = {
            "replica": replica.name,
            "bootstrapped": False,
            "chunks": 0,
            "records_streamed": 0,
            "retries": 0,
            "divergences": 0,
        }
        self.health.begin_catch_up(replica.name)
        if self._chaos is not None:
            # a hard-armed point (InjectedCrash, a BaseException) kills
            # the "process" mid-catch-up; a soft fault aborts this
            # attempt and re-quarantines
            try:
                self._chaos.fire("cluster.catchup")
            except Exception as exc:
                self.health.quarantine(replica.name, error=exc)
                raise ReplicaUnavailable(
                    f"catch-up for {replica.name} aborted by fault: {exc}"
                ) from exc
        if shipper.paused:
            self.health.quarantine(replica.name, error="shipper paused")
            raise ReplicaUnavailable(
                f"replica {replica.name} is unreachable (shipper paused); "
                "catch-up aborted"
            )
        if force_bootstrap or shipper._cursor < wal.log.base_lsn:
            self._bootstrap_replica(shipper)
            report["bootstrapped"] = True
        attempt = 0
        while True:
            with wal._lock:
                if shipper.lag() <= 0 and shipper.pending() <= 0:
                    break
            try:
                with wal._lock:
                    if self._chaos is not None:
                        self._chaos.fire("cluster.ship_stream")
                    shipped = shipper.ship(max_records=self.catchup_chunk)
                report["chunks"] += 1
                report["records_streamed"] += shipped
                attempt = 0  # progress resets the retry budget
            except (
                DurabilityError,
                OSError,
                TransientFault,
                ConnectionDropped,
            ) as exc:
                attempt += 1
                report["retries"] += 1
                if attempt > self.catchup_retries:
                    self.health.quarantine(replica.name, error=exc)
                    raise ReplicaUnavailable(
                        f"catch-up for {replica.name} gave up after "
                        f"{self.catchup_retries} retries: {exc}"
                    ) from exc
                if shipper._cursor < wal.log.base_lsn:
                    # the log moved past us mid-stream (checkpoint);
                    # fall back to a fresh bootstrap
                    self._bootstrap_replica(shipper)
                    report["bootstrapped"] = True
                    continue
                delay = backoff_delays(
                    1,
                    base=self.catchup_backoff * (2 ** (attempt - 1)),
                    cap=self.catchup_backoff_cap,
                    rng=self._catchup_rng,
                )[0]
                if delay > 0:
                    self._sleep(delay)
        self._verify_rejoin(shipper, report)
        self.health.mark_healthy(replica.name)
        report["duration_s"] = self._clock.monotonic() - started
        return report

    def _bootstrap_replica(self, shipper: WalShipper) -> None:
        """Rebuild the replica from a snapshot of the live primary."""
        from repro.durability.snapshot import capture_state

        wal = self.durability
        with wal._lock:
            if self._chaos is not None:
                self._chaos.fire("cluster.bootstrap")
            last_lsn = wal.log.last_lsn
            state = capture_state(self, last_lsn)
            epoch = wal.policy_epoch
        shipper.replica.bootstrap(state, last_lsn=last_lsn, policy_epoch=epoch)
        shipper._cursor = max(shipper._cursor, last_lsn)

    # -- anti-entropy ------------------------------------------------------

    def _digest_mismatch(self, replica: ReadReplica) -> Optional[str]:
        """Compare primary-vs-replica content digests; None when clean.

        The ``cluster.digest`` chaos point simulates digest corruption:
        a fault there reads as a mismatch, driving the same automatic
        re-bootstrap a real divergence would.
        """
        if self._chaos is not None:
            try:
                self._chaos.fire("cluster.digest")
            except Exception as exc:
                return f"digest fault: {exc}"
        primary = content_digests(self)
        secondary = content_digests(replica.database)
        diffs = {
            key
            for key in primary.keys() | secondary.keys()
            if primary.get(key) != secondary.get(key)
        }
        if replica.policy_epoch != self.policy_epoch:
            diffs.add("policy_epoch")
        return ", ".join(sorted(diffs)) if diffs else None

    def _verify_rejoin(self, shipper: WalShipper, report: dict) -> None:
        """Anti-entropy gate: digests must match before rejoining.

        A mismatch counts a divergence and triggers one automatic
        re-bootstrap + re-verify; a replica that *still* diverges keeps
        its unresolved divergence, stays quarantined, and raises.
        """
        wal = self.durability
        replica = shipper.replica
        with wal._lock, replica.read_lock():
            mismatch = self._digest_mismatch(replica)
        if mismatch is None:
            return
        self.health.record_divergence(replica.name)
        report["divergences"] += 1
        self._bootstrap_replica(shipper)
        report["bootstrapped"] = True
        with wal._lock, replica.read_lock():
            mismatch = self._digest_mismatch(replica)
        if mismatch is not None:
            self.health.quarantine(replica.name, error=mismatch)
            raise ReplicaUnavailable(
                f"replica {replica.name} still diverges after re-bootstrap "
                f"({mismatch}); quarantined"
            )

    def run_anti_entropy(self) -> dict[str, str]:
        """Digest-compare every serving replica against the primary.

        Clean replicas stay untouched; a divergent one is counted,
        quarantined, and immediately healed through a forced
        re-bootstrap catch-up.  Returns per-replica outcomes
        (``clean`` / ``lagging`` / ``rebootstrapped``).
        """
        outcomes: dict[str, str] = {}
        for shipper in list(self.durability.shippers):
            name = shipper.replica.name
            if not self.health.is_serving(name):
                outcomes[name] = self.health.state_of(name)
                continue
            if shipper.lag() > 0:
                outcomes[name] = "lagging"  # compare only at rest
                continue
            with self.durability._lock, shipper.replica.read_lock():
                mismatch = self._digest_mismatch(shipper.replica)
            if mismatch is None:
                outcomes[name] = "clean"
                continue
            self.health.record_divergence(name)
            self.health.quarantine(name, error=mismatch)
            self._catch_up_one(shipper, force_bootstrap=True)
            outcomes[name] = "rebootstrapped"
        return outcomes

    def cluster_health(self) -> dict:
        """Live topology/health view (``\\replicas``, ``health`` frame)."""
        snapshot = self.health.snapshot()
        replicas = []
        for shipper in self.durability.shippers:
            replica = shipper.replica
            info = snapshot.get(replica.name, {})
            replicas.append(
                {
                    "name": replica.name,
                    "state": info.get("state", HEALTHY),
                    "serving": self.health.is_serving(replica.name),
                    "lag": shipper.lag(),
                    "applied_lsn": replica.applied_lsn,
                    "policy_epoch": replica.policy_epoch,
                    "heartbeat_age_s": round(
                        info.get("heartbeat_age_s", 0.0), 3
                    ),
                    "divergences": info.get("divergences", 0),
                    "unresolved_divergences": info.get(
                        "unresolved_divergences", 0
                    ),
                    "catchups": info.get("catchups", 0),
                    "bootstraps": replica.bootstraps,
                    "last_error": info.get("last_error"),
                }
            )
        return {
            "policy_epoch": self.policy_epoch,
            "shards": self.n_shards,
            "replica_divergence": self.health.unresolved_divergences(),
            "replicas": replicas,
        }

    # -- scatter-gather execution -----------------------------------------

    def run_plan(
        self,
        plan: ops.Operator,
        session: Optional[SessionContext] = None,
        access_params: Optional[Mapping[str, object]] = None,
        engine: Optional[str] = None,
        ctx=None,
        optimize: bool = True,
        compile_cache=None,
    ) -> Result:
        session = session or SessionContext()
        engine = engine or self.default_engine
        if engine not in ENGINES:
            raise ExecutionError(
                f"unknown execution engine {engine!r} (expected one of {ENGINES})"
            )
        if optimize:
            from repro.algebra.rewrite import push_selections

            plan = push_selections(plan)
        scattered = self._scatter_aggregate(
            plan, session, access_params, engine, ctx, compile_cache
        )
        if scattered is not None:
            return scattered
        return super().run_plan(
            plan,
            session,
            access_params,
            engine,
            ctx,
            optimize=False,
            compile_cache=compile_cache,
        )

    def _scatter_aggregate(
        self, plan, session, access_params, engine, ctx, compile_cache
    ) -> Optional[Result]:
        """Per-shard partial aggregation with a coordinator merge.

        Handles plans of shape ``[Project/Alias]* → Aggregate(scalar,
        decomposable) → fragment-safe subtree over one partitioned
        relation``; returns None (→ merged-facade fallback) otherwise.
        """
        wrappers = []
        node = plan
        while isinstance(node, (ops.Project, ops.Alias)):
            wrappers.append(node)
            node = node.child
        if not isinstance(node, ops.Aggregate):
            return None
        if not decomposable_aggregate(node):
            return None
        if not fragment_safe_subtree(node.child):
            return None
        leaf = node.child
        while not isinstance(leaf, ops.Rel):
            leaf = leaf.child
        table = self._tables.get(leaf.name.lower())
        if not isinstance(table, PartitionedTable):
            return None
        if not exact_merge_aggregates(node, leaf, table.schema):
            return None

        per_node = [
            storage_node.partial_aggregate(
                self, node, session, access_params, engine, ctx, compile_cache
            )
            for storage_node in self.nodes
        ]
        COUNTERS.bump("cluster.scatter")
        row = tuple(
            merge_partials(call, [partials[i] for partials in per_node])
            for i, (call, _) in enumerate(node.aggregates)
        )

        # re-apply the wrapper chain (innermost first) on the merged row
        columns = node.columns
        for wrapper in reversed(wrappers):
            if isinstance(wrapper, ops.Alias):
                columns = wrapper.columns
                continue
            evaluator = Evaluator(RowResolver(columns))
            row = tuple(
                evaluator.evaluate(expr, row) for expr, _ in wrapper.exprs
            )
            columns = wrapper.columns
        return Result(tuple(c.name for c in plan.columns), [row])
