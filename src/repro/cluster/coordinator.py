"""The cluster coordinator: one brain, N shards, M replicas.

:class:`ClusterCoordinator` *is a* :class:`~repro.db.Database` whose
storage layer is hash-partitioned: ``_make_table`` places one fragment
of every relation on each :class:`~repro.cluster.storage_node.
StorageNode` behind a :class:`~repro.cluster.partition.
PartitionedTable` facade.  Everything above storage — the parser, the
Non-Truman validity checker, Truman rewriting, planning, the prepared-
statement pipeline — runs **once per query on the coordinator**,
exactly as on a single node; only execution touches shards:

* point scans prune to the one shard the partition key hashes to (both
  engines — see ``Executor._select_input`` and
  ``VectorizedExecutor._scan``);
* decomposable scalar aggregates scatter to every node and gather
  merged partials (:meth:`run_plan`);
* everything else reads the facade's merged row-id-ordered view, which
  is byte-identical to a single node's iteration order.

Replication: a :class:`~repro.cluster.shipper.ClusterWal` installed as
``durability`` turns every mutation and policy change into
epoch-stamped records shipped to :class:`~repro.cluster.replica.
ReadReplica` instances.  :meth:`route_read` offers a replica only when
its observed policy epoch has caught up with the coordinator's **and**
its data lag is within ``replica_max_lag`` — a freshly-appended revoke
makes every replica ineligible until it has applied that revoke.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import DurabilityError, ExecutionError
from repro.algebra import ops
from repro.authviews.session import SessionContext
from repro.db import Database, Result
from repro.engine import ENGINES, Evaluator, RowResolver
from repro.instrument import COUNTERS
from repro.storage.table import Table
from repro.cluster.partition import HashPartitioner, PartitionedTable
from repro.cluster.replica import ReadReplica
from repro.cluster.shipper import ClusterWal, WalShipper
from repro.cluster.storage_node import (
    StorageNode,
    decomposable_aggregate,
    exact_merge_aggregates,
    fragment_safe_subtree,
    merge_partials,
)

#: modes whose reads may be served by a caught-up replica
REPLICA_READ_MODES = ("open", "truman", "non-truman")


class ClusterCoordinator(Database):
    """Sharded, replicated Database with single-point enforcement."""

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 0,
        replica_max_lag: int = 0,
        ship_batch: int = 1,
        auto_ship_lag: Optional[int] = None,
        partition_keys: Optional[Mapping[str, tuple]] = None,
    ):
        if shards < 1:
            raise ExecutionError(f"cluster needs at least 1 shard, got {shards}")
        self.nodes = [StorageNode(i) for i in range(int(shards))]
        #: optional per-table partition-key override (defaults to the
        #: primary key, else all columns)
        self.partition_keys = {
            name.lower(): tuple(cols)
            for name, cols in (partition_keys or {}).items()
        }
        self.replicas: list[ReadReplica] = []
        self.replica_max_lag = replica_max_lag
        self._route_cursor = 0
        super().__init__()
        #: auto_ship_lag bounds replica lag without explicit syncs: a
        #: commit ships as soon as any replica trails by that many
        #: records, even when the ship batch has not filled
        ClusterWal(
            self, ship_batch=ship_batch, auto_ship_lag=auto_ship_lag
        ).install(self)
        for _ in range(int(replicas)):
            self.add_replica()

    # -- storage placement ------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.nodes)

    def _make_table(self, schema) -> PartitionedTable:
        pk = self.catalog.primary_key(schema.name)
        key = self.partition_keys.get(schema.name.lower())
        if key is None:
            key = (
                pk.columns
                if pk is not None
                else tuple(c.name for c in schema.columns)
            )
        partitioner = HashPartitioner(schema, key, len(self.nodes))
        shard_tables = [Table(schema) for _ in self.nodes]
        for node, shard_table in zip(self.nodes, shard_tables):
            node.add_table(schema.name, shard_table)
        return PartitionedTable(schema, shard_tables, partitioner)

    # -- durability is the replication log --------------------------------

    def _attach_durability(self, data_dir, sync="group", injector=None):
        raise DurabilityError(
            "a sharded coordinator cannot attach durable storage; its "
            "durability slot carries the cluster replication log "
            "(run a single-node Database for data_dir persistence)"
        )

    def save(self, data_dir, sync="group"):
        raise DurabilityError(
            "a sharded coordinator cannot save to a data_dir; its "
            "durability slot carries the cluster replication log"
        )

    # -- replicas ---------------------------------------------------------

    @property
    def policy_epoch(self) -> int:
        return self.durability.policy_epoch

    def add_replica(self, name: Optional[str] = None) -> ReadReplica:
        """Attach a replica and replay the full log into it."""
        replica = ReadReplica(name or f"r{len(self.replicas)}")
        shipper = WalShipper(
            self.durability.log,
            replica,
            ship_batch=self.durability.ship_batch,
            auto_ship_lag=self.durability.auto_ship_lag,
        )
        self.durability.shippers.append(shipper)
        self.replicas.append(replica)
        shipper.ship()
        return replica

    def sync_replicas(self) -> int:
        """Ship everything pending to every replica."""
        return self.durability.ship_all()

    def replica_lag(self) -> int:
        """Worst data lag (in log records) across the replicas."""
        if not self.durability.shippers:
            return 0
        return max(s.lag() for s in self.durability.shippers)

    def route_read(self) -> Optional[ReadReplica]:
        """A replica fit to serve a read right now, or None for primary.

        Fit means: observed policy epoch ≥ the coordinator's (no policy
        change it has not applied — stamped at append time, so even an
        unshipped revoke disqualifies every replica immediately) and
        data lag within ``replica_max_lag``.  Eligible replicas are
        rotated round-robin.
        """
        if not self.replicas:
            return None
        epoch = self.policy_epoch
        eligible = [
            shipper.replica
            for shipper in self.durability.shippers
            if shipper.replica.policy_epoch >= epoch
            and shipper.lag() <= self.replica_max_lag
        ]
        if not eligible:
            return None
        self._route_cursor += 1
        return eligible[self._route_cursor % len(eligible)]

    # -- scatter-gather execution -----------------------------------------

    def run_plan(
        self,
        plan: ops.Operator,
        session: Optional[SessionContext] = None,
        access_params: Optional[Mapping[str, object]] = None,
        engine: Optional[str] = None,
        ctx=None,
        optimize: bool = True,
        compile_cache=None,
    ) -> Result:
        session = session or SessionContext()
        engine = engine or self.default_engine
        if engine not in ENGINES:
            raise ExecutionError(
                f"unknown execution engine {engine!r} (expected one of {ENGINES})"
            )
        if optimize:
            from repro.algebra.rewrite import push_selections

            plan = push_selections(plan)
        scattered = self._scatter_aggregate(
            plan, session, access_params, engine, ctx, compile_cache
        )
        if scattered is not None:
            return scattered
        return super().run_plan(
            plan,
            session,
            access_params,
            engine,
            ctx,
            optimize=False,
            compile_cache=compile_cache,
        )

    def _scatter_aggregate(
        self, plan, session, access_params, engine, ctx, compile_cache
    ) -> Optional[Result]:
        """Per-shard partial aggregation with a coordinator merge.

        Handles plans of shape ``[Project/Alias]* → Aggregate(scalar,
        decomposable) → fragment-safe subtree over one partitioned
        relation``; returns None (→ merged-facade fallback) otherwise.
        """
        wrappers = []
        node = plan
        while isinstance(node, (ops.Project, ops.Alias)):
            wrappers.append(node)
            node = node.child
        if not isinstance(node, ops.Aggregate):
            return None
        if not decomposable_aggregate(node):
            return None
        if not fragment_safe_subtree(node.child):
            return None
        leaf = node.child
        while not isinstance(leaf, ops.Rel):
            leaf = leaf.child
        table = self._tables.get(leaf.name.lower())
        if not isinstance(table, PartitionedTable):
            return None
        if not exact_merge_aggregates(node, leaf, table.schema):
            return None

        per_node = [
            storage_node.partial_aggregate(
                self, node, session, access_params, engine, ctx, compile_cache
            )
            for storage_node in self.nodes
        ]
        COUNTERS.bump("cluster.scatter")
        row = tuple(
            merge_partials(call, [partials[i] for partials in per_node])
            for i, (call, _) in enumerate(node.aggregates)
        )

        # re-apply the wrapper chain (innermost first) on the merged row
        columns = node.columns
        for wrapper in reversed(wrappers):
            if isinstance(wrapper, ops.Alias):
                columns = wrapper.columns
                continue
            evaluator = Evaluator(RowResolver(columns))
            row = tuple(
                evaluator.evaluate(expr, row) for expr, _ in wrapper.exprs
            )
            columns = wrapper.columns
        return Result(tuple(c.name for c in plan.columns), [row])
