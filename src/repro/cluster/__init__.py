"""repro.cluster: sharded + replicated serving with one enforcement brain.

The coordinator (:class:`ClusterCoordinator`) owns parse/check/plan and
the policy state; N :class:`StorageNode` shards hold hash-partitioned
fragments behind a Table-shaped facade; WAL shipping feeds
:class:`ReadReplica` instances that serve reads once their observed
policy epoch catches up with the coordinator's.
"""

from repro.cluster.coordinator import REPLICA_READ_MODES, ClusterCoordinator
from repro.cluster.health import (
    CATCHING_UP,
    HEALTHY,
    QUARANTINED,
    REPLICA_STATES,
    SUSPECT,
    HealthMonitor,
    ReplicaHealth,
    backoff_delays,
    content_digests,
)
from repro.cluster.partition import (
    HashPartitioner,
    PartitionedIndex,
    PartitionedTable,
    ShardFragment,
)
from repro.cluster.replica import ReadReplica
from repro.cluster.shipper import ClusterWal, ReplicationLog, WalShipper
from repro.cluster.storage_node import (
    DECOMPOSABLE,
    StorageNode,
    decomposable_aggregate,
    exact_merge_aggregates,
    fragment_safe_subtree,
    merge_partials,
)

__all__ = [
    "CATCHING_UP",
    "ClusterCoordinator",
    "ClusterWal",
    "DECOMPOSABLE",
    "HEALTHY",
    "HashPartitioner",
    "HealthMonitor",
    "PartitionedIndex",
    "PartitionedTable",
    "QUARANTINED",
    "REPLICA_READ_MODES",
    "REPLICA_STATES",
    "ReadReplica",
    "ReplicaHealth",
    "ReplicationLog",
    "SUSPECT",
    "ShardFragment",
    "StorageNode",
    "WalShipper",
    "backoff_delays",
    "content_digests",
    "decomposable_aggregate",
    "exact_merge_aggregates",
    "fragment_safe_subtree",
    "merge_partials",
]
