"""Hash partitioning: routing rows to shards and the table facade.

A :class:`PartitionedTable` presents the exact :class:`~repro.storage.table.Table`
surface over N per-shard tables, so every layer above storage — DML,
constraint checks, both executors, the optimizer's statistics, the
prepared-statement binder — runs unchanged against a sharded cluster.

Invariants that make the cluster byte-identical to a single node:

* **Global row ids.**  The facade allocates row ids from one monotonic
  counter and *pins* them into the owning shard
  (``Table.insert(row, row_id=...)``).  A single-node table's iteration
  order is row-id-ascending (inserts append, updates keep their slot),
  so merging shard fragments by row id reproduces the single-node row
  order exactly.
* **Routing on coerced values.**  Rows are routed after the schema's
  type coercion, and :meth:`PartitionedTable.prune_for` coerces query
  literals through the same path, so a literal and the stored value it
  matches always hash to the same shard.
* **Deterministic hashing.**  The partitioner hashes ``repr()`` through
  CRC32 — Python's builtin ``hash()`` is per-process salted and would
  route the same key to different shards across runs.
* **Global uniqueness.**  A unique index whose columns cover the
  partition key is globally unique when each shard enforces it locally
  (equal keys land on one shard).  For any other unique index the
  facade pre-checks every shard before mutating, using the same error
  message the single-node path produces.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, Iterator, Mapping, Optional

from repro.errors import ExecutionError, IntegrityError, ReproError
from repro.catalog.schema import TableSchema
from repro.catalog.types import coerce_value
from repro.storage.index import HashIndex
from repro.storage.table import Table


class HashPartitioner:
    """Deterministic hash routing of rows to ``n_shards`` buckets."""

    def __init__(self, schema: TableSchema, key_columns: Iterable[str], n_shards: int):
        self.schema = schema
        self.key_columns = tuple(c.lower() for c in key_columns)
        if not self.key_columns:
            raise ExecutionError(
                f"{schema.name}: partition key needs at least one column"
            )
        self.ordinals = tuple(schema.column_index(c) for c in self.key_columns)
        self.n_shards = n_shards

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self.ordinals)

    def shard_of_key(self, key: tuple) -> int:
        digest = zlib.crc32(repr(key).encode("utf-8")) & 0xFFFFFFFF
        return digest % self.n_shards

    def shard_of(self, row: tuple) -> int:
        return self.shard_of_key(self.key_of(row))


class ShardFragment:
    """Read-only view of one shard's fragment, in global row-id order.

    What the executors need from a pruned scan: rows (ordered like the
    single-node table so answers stay byte-identical), the shard's hash
    indexes for probe pushdown, and point row access.
    """

    def __init__(self, table: Table):
        self._table = table
        self.schema = table.schema

    def rows(self) -> list[tuple]:
        return [row for _, row in sorted(self._table.rows_with_ids())]

    def rows_with_ids(self) -> list[tuple[int, tuple]]:
        return sorted(self._table.rows_with_ids())

    def get_row(self, row_id: int) -> tuple:
        return self._table.get_row(row_id)

    def find_index(self, columns: Iterable[str]) -> Optional[HashIndex]:
        return self._table.find_index(columns)

    def has_index(self, columns: Iterable[str], unique: bool) -> bool:
        return self._table.has_index(columns, unique)

    @property
    def row_count(self) -> int:
        return self._table.row_count

    def __len__(self) -> int:
        return len(self._table)


class PartitionedIndex:
    """One logical hash index fanned out across the shards.

    Lookups union the per-shard buckets (row ids are global, so the
    union is already in the table's id space); uniqueness questions ask
    every shard, which is what makes cross-shard unique enforcement
    possible for indexes that do not cover the partition key.
    """

    def __init__(self, shard_indexes: list[HashIndex]):
        self._shards = shard_indexes
        first = shard_indexes[0]
        self.table_name = first.table_name
        self.columns = first.columns
        self.column_names = first.column_names
        self.unique = first.unique

    def key_of(self, row: tuple) -> tuple:
        return self._shards[0].key_of(row)

    def lookup(self, key: tuple) -> frozenset[int]:
        out: set[int] = set()
        for index in self._shards:
            out.update(index.lookup(key))
        return frozenset(out)

    def would_violate(self, row: tuple, ignore_row_id: Optional[int] = None) -> bool:
        return any(
            index.would_violate(row, ignore_row_id=ignore_row_id)
            for index in self._shards
        )

    def __len__(self) -> int:
        return sum(len(index) for index in self._shards)


class PartitionedTable:
    """``Table``-shaped facade over hash-partitioned shard fragments."""

    def __init__(self, schema: TableSchema, shard_tables: list[Table],
                 partitioner: HashPartitioner):
        self.schema = schema
        self._shards = shard_tables
        self.partitioner = partitioner
        self._next_id = 0
        #: global row id -> owning shard ordinal
        self._rid_to_shard: dict[int, int] = {}
        #: replication hook (set by the cluster WAL); fired once per
        #: *logical* mutation, even when a partition-key update moves a
        #: row between shards
        self.on_mutate: Optional[Callable[..., None]] = None
        self._data_version = 0

    # -- shard access -----------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_table(self, shard: int) -> Table:
        return self._shards[shard]

    def fragment(self, shard: int) -> ShardFragment:
        return ShardFragment(self._shards[shard])

    def shard_of_row_id(self, row_id: int) -> Optional[int]:
        return self._rid_to_shard.get(row_id)

    def prune_for(self, equalities: Mapping[str, object]) -> Optional[ShardFragment]:
        """The only fragment that can satisfy ``col = literal``
        conjuncts covering the full partition key, or None when the
        conjuncts do not pin the key (the caller falls back to a full
        scan — pruning is an optimization, never a semantic change)."""
        key_values = []
        for column in self.partitioner.key_columns:
            if column not in equalities:
                return None
            dtype = self.schema.columns[self.schema.column_index(column)].dtype
            try:
                key_values.append(coerce_value(equalities[column], dtype))
            except (ReproError, ValueError, TypeError):
                return None
        shard = self.partitioner.shard_of_key(tuple(key_values))
        return self.fragment(shard)

    # -- index management -------------------------------------------------

    def create_index(self, columns: Iterable[str], unique: bool = False) -> PartitionedIndex:
        names = tuple(columns)
        if unique and not self._covers_partition_key(names):
            # per-shard builds cannot see cross-shard duplicates; check
            # globally first with the storage layer's error message
            ordinals = tuple(self.schema.column_index(c) for c in names)
            seen: set[tuple] = set()
            for shard in self._shards:
                for row in shard.rows():
                    key = tuple(row[i] for i in ordinals)
                    if any(v is None for v in key):
                        continue
                    if key in seen:
                        cols = ", ".join(names)
                        raise IntegrityError(
                            f"duplicate key {key!r} for unique index on "
                            f"{self.schema.name}({cols})"
                        )
                    seen.add(key)
        shard_indexes = [shard.create_index(names, unique=unique) for shard in self._shards]
        if self.on_mutate is not None:
            self.on_mutate("index", names, unique)
        return PartitionedIndex(shard_indexes)

    def find_index(self, columns: Iterable[str]) -> Optional[PartitionedIndex]:
        if self._shards[0].find_index(columns) is None:
            return None
        wanted = tuple(self.schema.column_index(c) for c in columns)
        shard_indexes = []
        for shard in self._shards:
            for index in shard._indexes:
                if index.columns == wanted:
                    shard_indexes.append(index)
                    break
        return PartitionedIndex(shard_indexes)

    def has_index(self, columns: Iterable[str], unique: bool) -> bool:
        return self._shards[0].has_index(columns, unique)

    def index_defs(self) -> list[tuple[tuple[str, ...], bool]]:
        return self._shards[0].index_defs()

    def _covers_partition_key(self, columns: tuple[str, ...]) -> bool:
        lowered = {c.lower() for c in columns}
        return set(self.partitioner.key_columns) <= lowered

    # -- row access -------------------------------------------------------

    def rows(self) -> Iterator[tuple]:
        merged: list[tuple[int, tuple]] = []
        for shard in self._shards:
            merged.extend(shard.rows_with_ids())
        merged.sort()
        return iter([row for _, row in merged])

    def rows_with_ids(self) -> Iterator[tuple[int, tuple]]:
        merged: list[tuple[int, tuple]] = []
        for shard in self._shards:
            merged.extend(shard.rows_with_ids())
        merged.sort()
        return iter(merged)

    def get_row(self, row_id: int) -> tuple:
        shard = self._rid_to_shard.get(row_id)
        if shard is None:
            raise ExecutionError(f"no row with id {row_id}")
        return self._shards[shard].get_row(row_id)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def row_count(self) -> int:
        return len(self)

    @property
    def next_row_id(self) -> int:
        return self._next_id

    def set_next_row_id(self, next_id: int) -> None:
        self._next_id = max(self._next_id, next_id)

    @property
    def data_version(self) -> int:
        """Monotonic per-relation mutation counter (one bump per
        logical insert/update/delete, shard moves included)."""
        return self._data_version

    # -- mutation ---------------------------------------------------------

    def _check_unique_everywhere(
        self, row: tuple, ignore_row_id: Optional[int] = None
    ) -> None:
        for position, (names, unique) in enumerate(self.index_defs()):
            if not unique:
                continue
            for shard in self._shards:
                index = shard._indexes[position]
                if index.would_violate(row, ignore_row_id=ignore_row_id):
                    raise IntegrityError(
                        f"unique violation on {self.schema.name}"
                        f"({', '.join(names)}): {index.key_of(row)!r}"
                    )

    def insert(self, values: tuple, row_id: Optional[int] = None) -> int:
        row = self._shards[0]._coerce(values)
        self._check_unique_everywhere(row)
        if row_id is None:
            rid = self._next_id
        else:
            if row_id in self._rid_to_shard:
                raise ExecutionError(
                    f"{self.schema.name}: row id {row_id} already exists"
                )
            rid = row_id
        shard = self.partitioner.shard_of(row)
        self._shards[shard].insert(row, row_id=rid)
        self._rid_to_shard[rid] = shard
        self._next_id = max(self._next_id, rid + 1)
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("insert", rid, row)
        return rid

    def delete_row(self, row_id: int) -> tuple:
        shard = self._rid_to_shard.get(row_id)
        if shard is None:
            raise ExecutionError(f"no row with id {row_id}")
        row = self._shards[shard].delete_row(row_id)
        del self._rid_to_shard[row_id]
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("delete", row_id, row)
        return row

    def update_row(self, row_id: int, values: tuple) -> tuple:
        shard = self._rid_to_shard.get(row_id)
        if shard is None:
            raise ExecutionError(f"no row with id {row_id}")
        new = self._shards[shard]._coerce(values)
        self._check_unique_everywhere(new, ignore_row_id=row_id)
        new_shard = self.partitioner.shard_of(new)
        if new_shard == shard:
            old = self._shards[shard].update_row(row_id, new)
        else:
            # the partition key changed: move the row, keeping its id
            old = self._shards[shard].delete_row(row_id)
            try:
                self._shards[new_shard].insert(new, row_id=row_id)
            except BaseException:
                self._shards[shard].insert(old, row_id=row_id)
                raise
            self._rid_to_shard[row_id] = new_shard
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("update", row_id, new, old)
        return old

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        doomed = [rid for rid, row in self.rows_with_ids() if predicate(row)]
        for rid in doomed:
            self.delete_row(rid)
        return len(doomed)

    def truncate(self) -> None:
        for rid in list(self._rid_to_shard):
            self.delete_row(rid)

    # -- statistics -------------------------------------------------------

    def distinct_count(self, column: str) -> int:
        ordinal = self.schema.column_index(column)
        values: set = set()
        for shard in self._shards:
            values.update(row[ordinal] for row in shard.rows())
        return len(values)
