"""Cluster WAL: epoch-stamped replication log + shipping to replicas.

:class:`ClusterWal` duck-types the surface of
:class:`repro.durability.manager.DurabilityManager` and is installed as
the coordinator's ``durability`` — so the gateway's write path (group
commit after the write lock, the commit circuit breaker, degraded
read-only failover, drain-time checkpoint) and ``\\stats`` plumbing
drive replication without knowing the cluster exists.

Every record carries two stamps:

* ``lsn`` — position in the replication log (idempotence: a replica
  re-applying an already-seen LSN is a no-op);
* ``epoch`` — the **policy epoch**, bumped *at append time* for every
  policy-bearing record (grant/revoke, DDL — view bodies change what a
  name means — Truman mappings, VPD predicates, participation
  constraints).  The coordinator routes reads only to replicas whose
  observed epoch has caught up to its own, so the instant a revoke is
  appended — before it even ships — every replica is ineligible until
  it has applied that revoke.  A revoke can therefore never be served
  stale: the race window is closed by construction, not by shipping
  speed.

Shipped records round-trip through the durable WAL's CRC framing
(:func:`repro.durability.wal.encode_record` /
:func:`~repro.durability.wal.decode_frames`): what a replica applies is
exactly what a follower reading a shipped segment file would decode.
Shipping is **chunked**: a ship call frames at most ``max_records``
records into one byte stream and applies whatever decodes intact, so a
truncated stream makes bounded progress and a retry (apply is
idempotent by LSN) finishes the job.

Two optional attachments extend the in-memory core:

* a :class:`~repro.cluster.health.HealthMonitor` (``health``) — commit
  keeps shipping to the other replicas when one fails, reporting the
  failure to the detector instead of failing the write;
* a durable ``data_dir`` (:meth:`ClusterWal.attach_data_dir`) — every
  record is also appended to a CRC-framed on-disk segment and
  checkpoints write real snapshots, which is what makes
  ``ClusterCoordinator.open`` possible.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import DurabilityError
from repro.durability import layout
from repro.durability.wal import WalWriter, decode_frames, encode_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.health import HealthMonitor
    from repro.cluster.replica import ReadReplica
    from repro.db import Database
    from repro.durability.faults import FaultInjector

#: record kinds that change what some user is allowed to see
POLICY_KINDS = frozenset(
    {"grant", "revoke", "ddl", "truman", "vpd", "participation",
     "rebac_namespace", "rebac_tuple"}
)


class ReplicationLog:
    """In-memory ordered log of epoch-stamped records.

    ``base_lsn`` is the LSN of the last record *not* held in memory: a
    fresh log has base 0 (everything since the beginning of time is in
    ``records``); a log re-opened over durable state, or truncated by a
    checkpoint, starts after the snapshot — a shipper whose cursor
    falls below the base cannot stream and must bootstrap its replica
    from a snapshot instead.
    """

    def __init__(self, base_lsn: int = 0):
        self.records: list[dict] = []
        self.base_lsn = base_lsn
        self.next_lsn = base_lsn + 1

    @property
    def last_lsn(self) -> int:
        return self.next_lsn - 1

    def append(self, payload: dict) -> int:
        record = dict(payload)
        lsn = self.next_lsn
        record["lsn"] = lsn
        self.records.append(record)
        self.next_lsn = lsn + 1
        return lsn

    def records_since(self, lsn: int) -> list[dict]:
        """Every in-memory record with an LSN greater than ``lsn``."""
        start = max(0, lsn - self.base_lsn)
        return self.records[start:]

    def truncate_to(self, lsn: int) -> int:
        """Drop records at or below ``lsn``; returns how many."""
        lsn = min(lsn, self.last_lsn)
        drop = lsn - self.base_lsn
        if drop <= 0:
            return 0
        del self.records[:drop]
        self.base_lsn = lsn
        return drop


class WalShipper:
    """Ships the replication log to one replica, tracking its cursor."""

    def __init__(self, log: ReplicationLog, replica: "ReadReplica",
                 ship_batch: int = 1,
                 auto_ship_lag: Optional[int] = None):
        self.log = log
        self.replica = replica
        #: ship eagerly once this many records are pending
        self.ship_batch = max(1, ship_batch)
        #: lag ceiling: a commit auto-ships whenever the replica's lag
        #: reaches this many records, even mid-batch (None = batch only)
        self.auto_ship_lag = auto_ship_lag
        #: chaos hooks: a paused shipper accumulates lag; failures raise;
        #: a truncated ship delivers half a chunk, then raises
        self.paused = False
        self.fail_next_ships = 0
        self.truncate_next_ships = 0
        #: LSN of the last record shipped to this replica
        self._cursor = log.base_lsn
        self.ships = 0
        self.records_shipped = 0
        self.auto_ships = 0

    def pending(self) -> int:
        return self.log.last_lsn - self._cursor

    def lag(self) -> int:
        """Records appended to the log but not yet applied here."""
        return self.log.last_lsn - self.replica.applied_lsn

    def maybe_ship(self) -> int:
        if self.paused:
            return 0
        if self.pending() < self.ship_batch:
            if (
                self.auto_ship_lag is None
                or self.lag() < self.auto_ship_lag
                or self.pending() == 0
            ):
                return 0
            # lag-bound breach: don't wait for the batch to fill
            self.auto_ships += 1
        return self.ship()

    def ship(self, max_records: Optional[int] = None) -> int:
        """Apply pending records to the replica in LSN order.

        ``max_records`` bounds the chunk (None = everything pending).
        The chunk is framed into one CRC byte stream and whatever
        decodes intact is applied — a truncated stream (chaos hook
        ``truncate_next_ships``) makes partial progress, advances the
        cursor past what landed, and raises; a retry resumes from the
        cursor and LSN-idempotent apply absorbs any overlap.
        """
        if self.paused:
            return 0
        if self.fail_next_ships > 0:
            self.fail_next_ships -= 1
            raise DurabilityError(
                f"injected ship failure to {self.replica.name}"
            )
        if self._cursor < self.log.base_lsn:
            raise DurabilityError(
                f"replication log was truncated past {self.replica.name}'s "
                f"cursor (needs records after LSN {self._cursor}, log now "
                f"starts after {self.log.base_lsn}); the replica must "
                "bootstrap from a snapshot"
            )
        batch = self.log.records_since(self._cursor)
        if max_records is not None:
            batch = batch[:max_records]
        if not batch:
            return 0
        # round-trip the whole chunk through the durable framing: the
        # replica sees exactly what a decoded shipped segment would
        data = b"".join(encode_record(record) for record in batch)
        truncated = False
        if self.truncate_next_ships > 0:
            self.truncate_next_ships -= 1
            data = data[: len(data) // 2]
            truncated = True
        frames, _, torn = decode_frames(data)
        if not truncated and (torn or len(frames) != len(batch)):
            raise DurabilityError(
                f"replication chunk after LSN {self._cursor} did not "
                "survive encoding"
            )
        shipped = 0
        for record in frames:
            self.replica.apply(record)
            self._cursor = record["lsn"]
            shipped += 1
        if shipped:
            self.ships += 1
            self.records_shipped += shipped
        if truncated:
            raise DurabilityError(
                f"ship stream to {self.replica.name} truncated mid-chunk "
                f"({shipped}/{len(batch)} records applied)"
            )
        return shipped


class ClusterWal:
    """DurabilityManager-shaped replication front for a coordinator.

    In-memory by default: records live in the :class:`ReplicationLog`
    and ``checkpoint`` is a truncation-free no-op.  With a ``data_dir``
    attached (:meth:`attach_data_dir`) every append also lands in a
    CRC-framed on-disk segment, ``commit`` group-syncs it, and
    ``checkpoint`` writes a real snapshot + rotates the segment —
    the same layout :class:`~repro.durability.manager.DurabilityManager`
    uses, so :func:`~repro.durability.recovery.recover` restores it.
    Either way it preserves the manager's *contract* with the database
    and gateway: logging hooks, ``commit`` as the post-write barrier
    (here: shipping), and ``wal_stats``.
    """

    def __init__(self, db: "Database", ship_batch: int = 1,
                 auto_ship_lag: Optional[int] = None,
                 injector: Optional["FaultInjector"] = None):
        self.db = db
        self.ship_batch = ship_batch
        self.auto_ship_lag = auto_ship_lag
        self.injector = injector
        self.log = ReplicationLog()
        self.shippers: list[WalShipper] = []
        #: optional failure detector: when attached, a ship failure at
        #: commit time is reported instead of failing the write, and
        #: quarantined replicas are skipped (catch-up owns their cursor)
        self.health: Optional["HealthMonitor"] = None
        self.policy_epoch = 0
        self.commits = 0
        self.checkpoints = 0
        self.closed = False
        #: test/chaos hook mirroring a failing durable commit: trips the
        #: gateway's breaker into degraded read-only mode
        self.fail_next_commits = 0
        #: durable backing (None until attach_data_dir)
        self.data_dir: Optional[str] = None
        self.writer: Optional[WalWriter] = None
        self.sync_policy = "group"
        self._recovering = False
        self._lock = threading.RLock()

    def install(self, db: "Database") -> None:
        db.durability = self
        for table in db._tables.values():
            self.register_table(table)
        db.grants.on_change = self._registry_change
        db.vpd_policies.on_change = self._vpd_change

    # -- durable backing ---------------------------------------------------

    def attach_data_dir(
        self,
        data_dir: str,
        sync: str = "group",
        injector: Optional["FaultInjector"] = None,
    ) -> Optional[dict]:
        """Back the replication log with an on-disk WAL + snapshots.

        With existing durable data the (empty) coordinator is recovered
        from it first — DDL and rows replayed through the normal hooks
        with re-logging suppressed, the policy epoch restored from the
        snapshot's cluster stamp and the replayed records' ``epoch``
        maxima — and the in-memory log restarts *empty at the durable
        tail* (``base_lsn = last_lsn``): replicas attached afterwards
        bootstrap from the live state instead of streaming history that
        is only on disk.  On a fresh directory the current state is
        snapshotted as the recovery baseline.  Returns the recovery
        report, or None for a fresh attach.
        """
        from repro.durability.recovery import recover
        from repro.durability.snapshot import capture_state, write_snapshot

        with self._lock:
            if self.writer is not None:
                raise DurabilityError(
                    f"cluster WAL already attached to {self.data_dir!r}"
                )
            if injector is not None:
                self.injector = injector
            os.makedirs(data_dir, exist_ok=True)
            report = None
            if layout.has_durable_data(data_dir):
                if list(self.db.catalog.tables()) or self.log.records:
                    raise DurabilityError(
                        "cannot open durable cluster state into a non-empty "
                        "coordinator"
                    )
                self._recovering = True
                try:
                    report = recover(self.db, data_dir)
                finally:
                    self._recovering = False
                last_lsn = report["last_lsn"]
                cluster_extra = report.get("cluster") or {}
                self.policy_epoch = max(
                    report.get("max_epoch", 0),
                    cluster_extra.get("policy_epoch", 0),
                )
                self.log = ReplicationLog(base_lsn=last_lsn)
            else:
                last_lsn = self.log.last_lsn
                state = capture_state(self.db, last_lsn)
                state["cluster"] = {"policy_epoch": self.policy_epoch}
                write_snapshot(
                    layout.snapshot_path(data_dir, last_lsn),
                    state,
                    self.injector,
                )
            self.data_dir = data_dir
            self.sync_policy = sync
            self.writer = WalWriter(
                layout.segment_path(data_dir, last_lsn),
                last_lsn + 1,
                sync_policy=sync,
                injector=self.injector,
            )
            return report

    # -- logging hooks (DurabilityManager surface) ------------------------

    def _append(self, payload: dict) -> int:
        with self._lock:
            if self.closed:
                raise DurabilityError("cluster WAL is closed")
            if self._recovering:
                # recovery replays DDL/DML through the normal execution
                # path, which fires these same hooks; the records are
                # already durable — appending them again would double-log
                # and double-bump the policy epoch
                return self.log.last_lsn
            if payload.get("kind") in POLICY_KINDS:
                self.policy_epoch += 1
            payload = dict(payload)
            payload["epoch"] = self.policy_epoch
            lsn = self.log.append(payload)
            if self.writer is not None:
                # the durable writer assigns the same LSN: both counters
                # only advance here, under this lock
                self.writer.append(dict(payload))
            return lsn

    def log_ddl(self, sql: str) -> int:
        return self._append({"kind": "ddl", "sql": sql})

    def log_truman(self, table_name: str, view_name: str) -> int:
        return self._append(
            {"kind": "truman", "table": table_name, "view": view_name}
        )

    def log_participation(self, constraint) -> int:
        from repro.durability.snapshot import _participation_state

        return self._append(
            {
                "kind": "participation",
                "constraint": _participation_state(constraint),
            }
        )

    def log_vpd(self, table: str, predicate: str, version: int) -> int:
        return self._append(
            {"kind": "vpd", "table": table, "predicate": predicate,
             "vv": version}
        )

    def log_rebac(self, payload: dict) -> int:
        """Append a ReBAC policy record (``rebac_namespace`` /
        ``rebac_tuple``) — policy-bearing, so the epoch bumps at append
        time like a grant/revoke."""
        return self._append(dict(payload))

    def register_table(self, table) -> None:
        """Install the mutation hook on a (partitioned) table facade."""
        name = table.schema.name.lower()

        def hook(event: str, *args) -> None:
            if event == "insert":
                rid, row = args
                self._append(
                    {"kind": "row", "op": "insert", "table": name,
                     "rid": rid, "row": list(row),
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "update":
                rid, row, _old = args
                self._append(
                    {"kind": "row", "op": "update", "table": name,
                     "rid": rid, "row": list(row),
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "delete":
                rid, _row = args
                self._append(
                    {"kind": "row", "op": "delete", "table": name,
                     "rid": rid,
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "index":
                columns, unique = args
                self._append(
                    {"kind": "index", "table": name,
                     "columns": list(columns), "unique": unique}
                )

        table.on_mutate = hook

    def _registry_change(self, event: str, info: dict) -> None:
        payload = {"kind": event}
        payload.update(info)
        self._append(payload)

    def _vpd_change(self, table: str, text: Optional[str], version: int) -> None:
        if text is None:
            raise DurabilityError(
                "callable VPD policies cannot be replicated to read "
                "replicas; attach the policy as a predicate string"
            )
        self.log_vpd(table, text, version)

    # -- commit / checkpoint (DurabilityManager surface) ------------------

    def commit(self) -> None:
        """The cluster's durability barrier: sync disk, ship records.

        Without a health monitor, a ship failure raises — that is how
        replication failure reaches the gateway's circuit breaker
        (degraded read-only after ``failure_threshold`` failed commits).
        With one attached, a failing replica is *reported and skipped*:
        the write succeeds, the other replicas ship, and the failure
        detector walks the flaky replica toward quarantine while the
        primary (and every healthy replica) keeps serving.
        """
        with self._lock:
            if self.closed:
                return
            if self.fail_next_commits > 0:
                self.fail_next_commits -= 1
                raise DurabilityError("injected cluster commit failure")
            self.commits += 1
            if self.writer is not None:
                self.writer.sync()
            health = self.health
            for shipper in self.shippers:
                name = shipper.replica.name
                if health is None:
                    shipper.maybe_ship()
                    continue
                if not health.may_ship(name):
                    continue
                try:
                    shipper.maybe_ship()
                except (DurabilityError, OSError) as exc:
                    health.record_failure(name, exc)
                    continue
                if not shipper.paused:
                    health.heartbeat(name)

    def ship_all(self) -> int:
        """Force every shipper fully up to date; returns records shipped.

        The manual hammer: ships to every replica regardless of health
        state and lets failures raise.  Prefer
        :meth:`~repro.cluster.coordinator.ClusterCoordinator.catch_up`,
        which bootstraps, retries with backoff, and re-verifies.
        """
        with self._lock:
            return sum(shipper.ship() for shipper in self.shippers)

    def checkpoint(self) -> int:
        """Snapshot + rotate when durable; log-head no-op otherwise.

        The durable path mirrors ``DurabilityManager.checkpoint``:
        fsync the tail, publish an atomic snapshot at the tail LSN,
        rotate to a fresh segment, and delete superseded files.  The
        in-memory log is truncated only up to the slowest shipper's
        cursor, so no attached replica is forced into a re-bootstrap by
        a checkpoint.
        """
        from repro.durability.snapshot import capture_state, write_snapshot

        with self._lock:
            self.checkpoints += 1
            if self.writer is None:
                return self.log.last_lsn
            self.writer.fsync_now()
            last_lsn = self.log.last_lsn
            if self.injector is not None:
                self.injector.fire("checkpoint.before_snapshot")
            state = capture_state(self.db, last_lsn)
            state["cluster"] = {"policy_epoch": self.policy_epoch}
            write_snapshot(
                layout.snapshot_path(self.data_dir, last_lsn),
                state,
                self.injector,
            )
            if self.injector is not None:
                self.injector.fire("checkpoint.after_snapshot")
            self.writer.close()
            self.writer = WalWriter(
                layout.segment_path(self.data_dir, last_lsn),
                last_lsn + 1,
                sync_policy=self.sync_policy,
                injector=self.injector,
            )
            for lsn, path in layout.list_snapshots(self.data_dir):
                if lsn < last_lsn:
                    os.remove(path)
            for base, path in layout.list_segments(self.data_dir):
                if base < last_lsn:
                    os.remove(path)
            if self.injector is not None:
                self.injector.fire("checkpoint.after_truncate")
            safe = min(
                (s._cursor for s in self.shippers), default=last_lsn
            )
            self.log.truncate_to(min(safe, last_lsn))
            return last_lsn

    def close(self, checkpoint: bool = True) -> None:
        with self._lock:
            if self.closed:
                return
            if checkpoint and self.writer is not None:
                self.checkpoint()
            if self.writer is not None:
                self.writer.close()
            self.closed = True

    # -- observability (DurabilityManager surface) ------------------------

    def wal_stats(self) -> dict[str, object]:
        with self._lock:
            stats: dict[str, object] = {
                "cluster_wal_records": len(self.log.records),
                "cluster_wal_last_lsn": self.log.last_lsn,
                "cluster_wal_commits": self.commits,
                "cluster_replicas": len(self.shippers),
                "policy_epoch": self.policy_epoch,
            }
            if self.writer is not None:
                stats["cluster_wal_durable"] = 1
                stats["cluster_wal_synced_lsn"] = self.writer.synced_lsn
                stats["cluster_wal_fsyncs"] = self.writer.fsync_count
                stats["cluster_checkpoints"] = self.checkpoints
            health_snapshot = (
                self.health.snapshot() if self.health is not None else {}
            )
            if self.health is not None:
                stats["replica_divergence"] = (
                    self.health.unresolved_divergences()
                )
            for shipper in self.shippers:
                name = shipper.replica.name
                prefix = f"replica_{name}"
                stats[f"{prefix}_lag"] = shipper.lag()
                stats[f"{prefix}_applied_lsn"] = shipper.replica.applied_lsn
                stats[f"{prefix}_policy_epoch"] = shipper.replica.policy_epoch
                stats[f"{prefix}_auto_ships"] = shipper.auto_ships
                info = health_snapshot.get(name)
                if info is not None:
                    stats[f"{prefix}_state"] = info["state"]
                    stats[f"{prefix}_heartbeat_age_s"] = round(
                        info["heartbeat_age_s"], 3
                    )
                    stats[f"{prefix}_divergences"] = info["divergences"]
                    stats[f"{prefix}_catchups"] = info["catchups"]
            return stats
