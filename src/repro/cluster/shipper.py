"""Cluster WAL: epoch-stamped replication log + shipping to replicas.

:class:`ClusterWal` duck-types the surface of
:class:`repro.durability.manager.DurabilityManager` and is installed as
the coordinator's ``durability`` — so the gateway's write path (group
commit after the write lock, the commit circuit breaker, degraded
read-only failover, drain-time checkpoint) and ``\\stats`` plumbing
drive replication without knowing the cluster exists.

Every record carries two stamps:

* ``lsn`` — position in the replication log (idempotence: a replica
  re-applying an already-seen LSN is a no-op);
* ``epoch`` — the **policy epoch**, bumped *at append time* for every
  policy-bearing record (grant/revoke, DDL — view bodies change what a
  name means — Truman mappings, VPD predicates, participation
  constraints).  The coordinator routes reads only to replicas whose
  observed epoch has caught up to its own, so the instant a revoke is
  appended — before it even ships — every replica is ineligible until
  it has applied that revoke.  A revoke can therefore never be served
  stale: the race window is closed by construction, not by shipping
  speed.

Shipped records round-trip through the durable WAL's CRC framing
(:func:`repro.durability.wal.encode_record` /
:func:`~repro.durability.wal.decode_frames`): what a replica applies is
exactly what a follower reading a shipped segment file would decode.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import DurabilityError
from repro.durability.wal import decode_frames, encode_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.replica import ReadReplica
    from repro.db import Database

#: record kinds that change what some user is allowed to see
POLICY_KINDS = frozenset(
    {"grant", "revoke", "ddl", "truman", "vpd", "participation",
     "rebac_namespace", "rebac_tuple"}
)


class ReplicationLog:
    """In-memory ordered log of epoch-stamped records."""

    def __init__(self):
        self.records: list[dict] = []
        self.next_lsn = 1

    @property
    def last_lsn(self) -> int:
        return self.next_lsn - 1

    def append(self, payload: dict) -> int:
        record = dict(payload)
        lsn = self.next_lsn
        record["lsn"] = lsn
        self.records.append(record)
        self.next_lsn = lsn + 1
        return lsn


class WalShipper:
    """Ships the replication log to one replica, tracking its cursor."""

    def __init__(self, log: ReplicationLog, replica: "ReadReplica",
                 ship_batch: int = 1,
                 auto_ship_lag: Optional[int] = None):
        self.log = log
        self.replica = replica
        #: ship eagerly once this many records are pending
        self.ship_batch = max(1, ship_batch)
        #: lag ceiling: a commit auto-ships whenever the replica's lag
        #: reaches this many records, even mid-batch (None = batch only)
        self.auto_ship_lag = auto_ship_lag
        #: chaos hooks: a paused shipper accumulates lag; failures raise
        self.paused = False
        self.fail_next_ships = 0
        self._cursor = 0
        self.ships = 0
        self.records_shipped = 0
        self.auto_ships = 0

    def pending(self) -> int:
        return len(self.log.records) - self._cursor

    def lag(self) -> int:
        """Records appended to the log but not yet applied here."""
        return self.log.last_lsn - self.replica.applied_lsn

    def maybe_ship(self) -> int:
        if self.paused:
            return 0
        if self.pending() < self.ship_batch:
            if (
                self.auto_ship_lag is None
                or self.lag() < self.auto_ship_lag
                or self.pending() == 0
            ):
                return 0
            # lag-bound breach: don't wait for the batch to fill
            self.auto_ships += 1
        return self.ship()

    def ship(self) -> int:
        """Apply every pending record to the replica, in LSN order."""
        if self.paused:
            return 0
        if self.fail_next_ships > 0:
            self.fail_next_ships -= 1
            raise DurabilityError(
                f"injected ship failure to {self.replica.name}"
            )
        shipped = 0
        while self._cursor < len(self.log.records):
            record = self.log.records[self._cursor]
            # round-trip through the durable framing: the replica sees
            # exactly what a decoded shipped segment would contain
            frames, _, torn = decode_frames(encode_record(record))
            if torn or len(frames) != 1:
                raise DurabilityError(
                    f"replication frame for LSN {record.get('lsn')} "
                    "did not survive encoding"
                )
            self.replica.apply(frames[0])
            self._cursor += 1
            shipped += 1
        if shipped:
            self.ships += 1
            self.records_shipped += shipped
        return shipped


class ClusterWal:
    """DurabilityManager-shaped replication front for a coordinator.

    Not durable: records live in memory and ``checkpoint`` is a
    truncation-free no-op (a sharded coordinator refuses ``data_dir``
    attachment — see :class:`repro.cluster.coordinator.
    ClusterCoordinator`).  What it preserves is the manager's *contract*
    with the database and gateway: logging hooks, ``commit`` as the
    post-write barrier (here: shipping), and ``wal_stats``.
    """

    def __init__(self, db: "Database", ship_batch: int = 1,
                 auto_ship_lag: Optional[int] = None):
        self.db = db
        self.ship_batch = ship_batch
        self.auto_ship_lag = auto_ship_lag
        self.log = ReplicationLog()
        self.shippers: list[WalShipper] = []
        self.policy_epoch = 0
        self.commits = 0
        self.checkpoints = 0
        self.closed = False
        #: test/chaos hook mirroring a failing durable commit: trips the
        #: gateway's breaker into degraded read-only mode
        self.fail_next_commits = 0
        self._lock = threading.RLock()

    def install(self, db: "Database") -> None:
        db.durability = self
        for table in db._tables.values():
            self.register_table(table)
        db.grants.on_change = self._registry_change
        db.vpd_policies.on_change = self._vpd_change

    # -- logging hooks (DurabilityManager surface) ------------------------

    def _append(self, payload: dict) -> int:
        with self._lock:
            if self.closed:
                raise DurabilityError("cluster WAL is closed")
            if payload.get("kind") in POLICY_KINDS:
                self.policy_epoch += 1
            payload = dict(payload)
            payload["epoch"] = self.policy_epoch
            return self.log.append(payload)

    def log_ddl(self, sql: str) -> int:
        return self._append({"kind": "ddl", "sql": sql})

    def log_truman(self, table_name: str, view_name: str) -> int:
        return self._append(
            {"kind": "truman", "table": table_name, "view": view_name}
        )

    def log_participation(self, constraint) -> int:
        from repro.durability.snapshot import _participation_state

        return self._append(
            {
                "kind": "participation",
                "constraint": _participation_state(constraint),
            }
        )

    def log_vpd(self, table: str, predicate: str, version: int) -> int:
        return self._append(
            {"kind": "vpd", "table": table, "predicate": predicate,
             "vv": version}
        )

    def log_rebac(self, payload: dict) -> int:
        """Append a ReBAC policy record (``rebac_namespace`` /
        ``rebac_tuple``) — policy-bearing, so the epoch bumps at append
        time like a grant/revoke."""
        return self._append(dict(payload))

    def register_table(self, table) -> None:
        """Install the mutation hook on a (partitioned) table facade."""
        name = table.schema.name.lower()

        def hook(event: str, *args) -> None:
            if event == "insert":
                rid, row = args
                self._append(
                    {"kind": "row", "op": "insert", "table": name,
                     "rid": rid, "row": list(row),
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "update":
                rid, row, _old = args
                self._append(
                    {"kind": "row", "op": "update", "table": name,
                     "rid": rid, "row": list(row),
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "delete":
                rid, _row = args
                self._append(
                    {"kind": "row", "op": "delete", "table": name,
                     "rid": rid,
                     "dv": self.db.validity_cache.data_version}
                )
            elif event == "index":
                columns, unique = args
                self._append(
                    {"kind": "index", "table": name,
                     "columns": list(columns), "unique": unique}
                )

        table.on_mutate = hook

    def _registry_change(self, event: str, info: dict) -> None:
        payload = {"kind": event}
        payload.update(info)
        self._append(payload)

    def _vpd_change(self, table: str, text: Optional[str], version: int) -> None:
        if text is None:
            raise DurabilityError(
                "callable VPD policies cannot be replicated to read "
                "replicas; attach the policy as a predicate string"
            )
        self.log_vpd(table, text, version)

    # -- commit / checkpoint (DurabilityManager surface) ------------------

    def commit(self) -> None:
        """The cluster's durability barrier: ship pending records.

        Raising here is how replication failure surfaces to the
        gateway's circuit breaker — after ``failure_threshold`` failed
        commits the gateway enters degraded read-only mode, which is the
        cluster's failover posture.
        """
        with self._lock:
            if self.closed:
                return
            if self.fail_next_commits > 0:
                self.fail_next_commits -= 1
                raise DurabilityError("injected cluster commit failure")
            self.commits += 1
            for shipper in self.shippers:
                shipper.maybe_ship()

    def ship_all(self) -> int:
        """Force every shipper fully up to date; returns records shipped."""
        with self._lock:
            return sum(shipper.ship() for shipper in self.shippers)

    def checkpoint(self) -> int:
        """No storage to truncate; reported LSN is the log head."""
        with self._lock:
            self.checkpoints += 1
            return self.log.last_lsn

    def close(self, checkpoint: bool = True) -> None:
        with self._lock:
            self.closed = True

    # -- observability (DurabilityManager surface) ------------------------

    def wal_stats(self) -> dict[str, object]:
        with self._lock:
            stats: dict[str, object] = {
                "cluster_wal_records": len(self.log.records),
                "cluster_wal_last_lsn": self.log.last_lsn,
                "cluster_wal_commits": self.commits,
                "cluster_replicas": len(self.shippers),
                "policy_epoch": self.policy_epoch,
            }
            for shipper in self.shippers:
                prefix = f"replica_{shipper.replica.name}"
                stats[f"{prefix}_lag"] = shipper.lag()
                stats[f"{prefix}_applied_lsn"] = shipper.replica.applied_lsn
                stats[f"{prefix}_policy_epoch"] = shipper.replica.policy_epoch
                stats[f"{prefix}_auto_ships"] = shipper.auto_ships
            return stats
