"""WAL-shipping read replicas.

A :class:`ReadReplica` is a complete, unsharded
:class:`~repro.db.Database` — catalog, grants, Truman mappings, VPD
policies, validity checker, prepared-statement cache — rebuilt entirely
from shipped WAL records.  It therefore *enforces* policy itself:
a routed Non-Truman read runs the full validity check against the
replica's own grants, a Truman read rewrites against the replica's own
policy views.  Routing (see :meth:`repro.cluster.coordinator.
ClusterCoordinator.route_read`) only decides *where* a read runs, never
what it is allowed to see.

Apply is **idempotent by LSN**: a record at or below ``applied_lsn`` is
skipped without touching storage, caches, or counters other than
``duplicates_skipped`` — re-shipping a batch after a partial failure
cannot double-apply a row or double-invalidate a cache.

Policy records additionally:

* restore the grant-registry version to the primary's stamped ``gv``
  (so cache stamps taken on the replica are comparable to primary
  stamps),
* eagerly drop the grantee's prepared templates (lookup-time stamp
  validation would catch them anyway; eager eviction keeps the window
  closed even for in-flight lookups),
* advance the replica's observed **policy epoch**, which is what makes
  it eligible for routing again after a policy change.
"""

from __future__ import annotations

import threading

from repro.db import Database
from repro.durability.recovery import apply_record
from repro.durability.snapshot import restore_state


class ReadReplica:
    """One replica: a full Database fed exclusively by WAL records."""

    def __init__(self, name: str):
        self.name = name
        self.database = Database()
        # replicas serve the hot read path; give them the §5.6 template
        # cache the primary's gateway would use
        self.database.prepared_enabled = True
        self.applied_lsn = 0
        self.policy_epoch = 0
        self.records_applied = 0
        self.duplicates_skipped = 0
        self.bootstraps = 0
        # applies and routed reads are mutually exclusive so a shipped
        # batch can never be observed half-applied
        self._lock = threading.RLock()

    def read_lock(self) -> threading.RLock:
        """Lock a routed read holds while executing on this replica."""
        return self._lock

    def bootstrap(self, state: dict, last_lsn: int, policy_epoch: int) -> None:
        """Replace the replica's database with a restored snapshot.

        Used by catch-up streaming when the replication log no longer
        reaches back to this replica's cursor (log truncated, durable
        restart) and by anti-entropy when digests diverge: the old —
        possibly wrong — database is discarded whole and rebuilt from
        the primary's captured state, then the WAL tail streams on top.
        Built off to the side and swapped in under the read lock, so a
        routed read never observes a half-restored replica.
        """
        db = Database()
        db.prepared_enabled = True
        restore_state(db, state)
        with self._lock:
            self.database = db
            self.applied_lsn = last_lsn
            self.policy_epoch = policy_epoch
            self.bootstraps += 1

    def apply(self, record: dict) -> bool:
        """Apply one epoch-stamped WAL record; False when already seen."""
        with self._lock:
            lsn = record.get("lsn", 0)
            if lsn <= self.applied_lsn:
                self.duplicates_skipped += 1
                return False
            db = self.database
            kind = record.get("kind")
            apply_record(db, record)
            if "dv" in record:
                # align the validity-cache data version with the
                # primary's stamp so decision caches can never validate
                # against a replica state the primary has moved past
                db.validity_cache.restore_data_version(record["dv"])
            if "gv" in record:
                db.grants.restore_version(record["gv"])
            if kind in ("grant", "revoke"):
                db.prepared.invalidate_user(record["grantee"])
            if "epoch" in record:
                self.policy_epoch = max(self.policy_epoch, record["epoch"])
            self.applied_lsn = lsn
            self.records_applied += 1
            return True

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "applied_lsn": self.applied_lsn,
                "policy_epoch": self.policy_epoch,
                "records_applied": self.records_applied,
                "duplicates_skipped": self.duplicates_skipped,
                "bootstraps": self.bootstraps,
            }
