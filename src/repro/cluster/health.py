"""Replica health: failure detection, lifecycle, anti-entropy digests.

PR 8's epoch gate makes a *healthy* replica safe: a read is routed only
when the replica's observed policy epoch has caught up with the
coordinator's.  This module makes the *unhealthy* states explicit.  Each
replica moves through a small lifecycle::

    HEALTHY ──(missed heartbeats / ship failures)──▶ SUSPECT
    SUSPECT ──(heartbeat again)──▶ HEALTHY
    SUSPECT ──(kept failing / silent too long)──▶ QUARANTINED
    QUARANTINED ──(catch-up streaming starts)──▶ CATCHING_UP
    CATCHING_UP ──(lag 0, epoch current, digests match)──▶ HEALTHY
    CATCHING_UP ──(retries exhausted / digests still diverge)──▶ QUARANTINED

Only ``HEALTHY`` replicas are routable (:meth:`HealthMonitor.
is_serving`), and only ``HEALTHY``/``SUSPECT`` replicas receive normal
commit-time shipping (:meth:`HealthMonitor.may_ship`) — a quarantined
replica is owned exclusively by the catch-up path, so commit shipping
and catch-up streaming never race on one cursor.

Liveness evidence is *positive*: a successful ship (or an un-paused
shipper at failure-detector tick time) counts as a heartbeat.  A replica
that stops producing evidence drifts ``SUSPECT`` after
``suspect_after`` seconds and ``QUARANTINED`` after ``quarantine_after``
seconds; ``failure_threshold`` consecutive ship failures quarantine it
immediately.  All timing reads the injectable
:class:`~repro.service.clock.Clock`, so the detector is deterministic
under a :class:`~repro.service.clock.ManualClock`.

Anti-entropy: :func:`content_digests` computes per-table
order-insensitive content digests (a 64-bit sum of per-row CRCs — the
primary's merged-shard iteration order and a replica's apply order hash
identically) plus one policy digest over grants, Truman mappings, VPD
predicates, and view names.  The coordinator compares
primary-vs-replica digests on every rejoin and in periodic
:meth:`~repro.cluster.coordinator.ClusterCoordinator.run_anti_entropy`
passes; a mismatch is a **divergence** — counted, surfaced as the
``replica_divergence`` metric, and healed by automatic re-bootstrap.
Unresolved divergences keep the replica quarantined forever rather than
ever serving a wrong answer.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import TYPE_CHECKING, Optional

from repro.service.clock import Clock, SYSTEM_CLOCK

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database

#: replica lifecycle states
HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
CATCHING_UP = "catching_up"

REPLICA_STATES = (HEALTHY, SUSPECT, QUARANTINED, CATCHING_UP)

_MASK64 = (1 << 64) - 1


class ReplicaHealth:
    """Mutable per-replica health record (owned by a HealthMonitor)."""

    __slots__ = (
        "name",
        "state",
        "last_heartbeat",
        "consecutive_failures",
        "failures",
        "suspects",
        "quarantines",
        "catchups",
        "divergences",
        "unresolved_divergences",
        "state_changes",
        "last_error",
    )

    def __init__(self, name: str, now: float):
        self.name = name
        self.state = HEALTHY
        self.last_heartbeat = now
        self.consecutive_failures = 0
        self.failures = 0
        self.suspects = 0
        self.quarantines = 0
        self.catchups = 0
        self.divergences = 0
        self.unresolved_divergences = 0
        self.state_changes = 0
        self.last_error: Optional[str] = None


class HealthMonitor:
    """Heartbeat/lag failure detector over a set of named replicas."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        suspect_after: float = 5.0,
        quarantine_after: float = 15.0,
        failure_threshold: int = 3,
    ):
        if not 0 < suspect_after <= quarantine_after:
            raise ValueError(
                "need 0 < suspect_after <= quarantine_after "
                f"(got {suspect_after} / {quarantine_after})"
            )
        self.clock = clock or SYSTEM_CLOCK
        self.suspect_after = suspect_after
        self.quarantine_after = quarantine_after
        self.failure_threshold = max(1, failure_threshold)
        self._replicas: dict[str, ReplicaHealth] = {}
        self._lock = threading.RLock()

    # -- registry ---------------------------------------------------------

    def register(self, name: str) -> ReplicaHealth:
        with self._lock:
            health = self._replicas.get(name)
            if health is None:
                health = ReplicaHealth(name, self.clock.monotonic())
                self._replicas[name] = health
            return health

    def _get(self, name: str) -> ReplicaHealth:
        with self._lock:
            return self.register(name)

    def state_of(self, name: str) -> str:
        return self._get(name).state

    # -- transitions ------------------------------------------------------

    def _set(self, health: ReplicaHealth, state: str) -> None:
        if health.state == state:
            return
        health.state = state
        health.state_changes += 1
        if state == SUSPECT:
            health.suspects += 1
        elif state == QUARANTINED:
            health.quarantines += 1

    def heartbeat(self, name: str) -> None:
        """Positive liveness evidence (a ship landed / shipper reachable).

        Recovers ``SUSPECT`` back to ``HEALTHY``; never promotes a
        quarantined or catching-up replica — only the catch-up gate
        (:meth:`mark_healthy`) may do that, after lag, epoch, and
        digests all check out.
        """
        with self._lock:
            health = self._get(name)
            health.last_heartbeat = self.clock.monotonic()
            if health.state in (HEALTHY, SUSPECT):
                health.consecutive_failures = 0
                self._set(health, HEALTHY)

    def record_failure(self, name: str, error: object = None) -> str:
        """A ship to (or probe of) the replica failed; escalate."""
        with self._lock:
            health = self._get(name)
            health.failures += 1
            health.consecutive_failures += 1
            if error is not None:
                health.last_error = str(error)
            if health.state in (HEALTHY, SUSPECT):
                if health.consecutive_failures >= self.failure_threshold:
                    self._set(health, QUARANTINED)
                else:
                    self._set(health, SUSPECT)
            return health.state

    def quarantine(self, name: str, error: object = None) -> None:
        with self._lock:
            health = self._get(name)
            if error is not None:
                health.last_error = str(error)
            self._set(health, QUARANTINED)

    def begin_catch_up(self, name: str) -> None:
        with self._lock:
            self._set(self._get(name), CATCHING_UP)

    def mark_healthy(self, name: str) -> None:
        """The catch-up gate cleared: lag 0, epoch current, digests ok."""
        with self._lock:
            health = self._get(name)
            health.last_heartbeat = self.clock.monotonic()
            health.consecutive_failures = 0
            health.unresolved_divergences = 0
            if health.state == CATCHING_UP:
                health.catchups += 1
            self._set(health, HEALTHY)

    def record_divergence(self, name: str) -> None:
        """Anti-entropy digests disagreed with the primary."""
        with self._lock:
            health = self._get(name)
            health.divergences += 1
            health.unresolved_divergences += 1

    def tick(self) -> None:
        """Escalate replicas whose liveness evidence went stale."""
        now = self.clock.monotonic()
        with self._lock:
            for health in self._replicas.values():
                if health.state not in (HEALTHY, SUSPECT):
                    continue
                age = now - health.last_heartbeat
                if age >= self.quarantine_after:
                    self._set(health, QUARANTINED)
                elif age >= self.suspect_after:
                    self._set(health, SUSPECT)

    # -- queries ----------------------------------------------------------

    def is_serving(self, name: str) -> bool:
        """May :meth:`route_read` offer this replica right now?"""
        return self._get(name).state == HEALTHY

    def may_ship(self, name: str) -> bool:
        """May commit-time shipping feed this replica?  False once
        quarantined: the catch-up path owns its cursor exclusively."""
        return self._get(name).state in (HEALTHY, SUSPECT)

    def unresolved_divergences(self) -> int:
        with self._lock:
            return sum(
                h.unresolved_divergences for h in self._replicas.values()
            )

    def snapshot(self) -> dict[str, dict]:
        """Per-replica health view (for stats / the ``health`` frame)."""
        now = self.clock.monotonic()
        with self._lock:
            return {
                name: {
                    "state": h.state,
                    "heartbeat_age_s": max(0.0, now - h.last_heartbeat),
                    "consecutive_failures": h.consecutive_failures,
                    "failures": h.failures,
                    "suspects": h.suspects,
                    "quarantines": h.quarantines,
                    "catchups": h.catchups,
                    "divergences": h.divergences,
                    "unresolved_divergences": h.unresolved_divergences,
                    "state_changes": h.state_changes,
                    "last_error": h.last_error,
                }
                for name, h in self._replicas.items()
            }


# -- anti-entropy digests -----------------------------------------------------


def content_digests(db: "Database") -> dict[str, int]:
    """Order-insensitive content digests: one per table, one for policy.

    A table digest is the 64-bit wrapping sum of ``crc32(repr((rid,
    row)))`` over its rows — insensitive to iteration order, so the
    coordinator's merged-shard view and a replica's apply-order storage
    hash identically iff they hold the same (rid, row) multiset.  The
    ``__policy__`` digest covers the grant registry, Truman mappings,
    VPD predicates, and view names (each canonically sorted), so a
    replica that silently lost a revoke can never digest clean.

    Table digests are memoized against the table's ``data_version``
    mutation counter: an unmutated table reuses its last digest instead
    of rehashing every row.  That makes the steady-state anti-entropy
    sweep (nothing changed since the last pass) near-free — the
    property that lets it run at a cadence full rebuilds never could —
    while any mutation through the storage API bumps the counter and
    forces a rehash.
    """
    digests: dict[str, int] = {}
    for schema in db.catalog.tables():
        table = db.table(schema.name)
        version = getattr(table, "data_version", None)
        cached = getattr(table, "_digest_cache", None)
        if version is not None and cached is not None and cached[0] == version:
            digests[schema.name.lower()] = cached[1]
            continue
        acc = 0
        for rid, row in table.rows_with_ids():
            frame = repr((rid, tuple(row))).encode("utf-8")
            acc = (acc + zlib.crc32(frame)) & _MASK64
        digests[schema.name.lower()] = acc
        if version is not None:
            table._digest_cache = (version, acc)
    policy_state = (
        sorted(
            (
                (r.view, r.grantee, r.grantor, bool(r.grant_option))
                for r in db.grants.grants()
            ),
            key=repr,
        ),
        sorted(db.truman_policy.items()),
        sorted((t, p) for t, p in db.vpd_policies.policy_texts()),
        sorted(view.name.lower() for view in db.catalog.views()),
    )
    digests["__policy__"] = zlib.crc32(repr(policy_state).encode("utf-8"))
    return digests


# -- shared backoff schedule --------------------------------------------------


def backoff_delays(
    attempts: int,
    base: float = 0.05,
    cap: float = 1.0,
    rng: Optional[random.Random] = None,
) -> list[float]:
    """Exponential backoff with equal jitter: attempt *i* waits a
    uniform draw from ``[d/2, d]`` where ``d = min(cap, base * 2**i)``.

    Shared by catch-up streaming (ship-fault retries) and the network
    client's bounded reconnect loop; pass a seeded ``rng`` for a
    reproducible schedule.
    """
    if attempts < 0:
        raise ValueError(f"attempts must be >= 0, got {attempts}")
    rng = rng if rng is not None else random.Random()
    delays = []
    for i in range(attempts):
        delay = min(cap, base * (2**i))
        delays.append(delay * (0.5 + 0.5 * rng.random()))
    return delays
