"""Storage nodes: per-shard table fragments and partial aggregation.

A :class:`StorageNode` owns one shard's :class:`~repro.storage.table.
Table` fragment of every partitioned relation.  The coordinator plans a
query once; for decomposable scalar aggregates it then *scatters* the
aggregate's input subtree to every node, each node folds its fragment
into per-aggregate accumulator states, and the coordinator *gathers*
the partials into the final answer (`merge_partials`).

Only aggregations whose merge is exact are decomposed:

* scalar (no GROUP BY — group output order is first-seen, which depends
  on the physical row interleaving and would differ across shards);
* non-DISTINCT ``count``/``sum``/``min``/``max``/``avg``;
* over a subtree of Select/Project/Alias/Rel operators only (joins and
  subqueries may need rows from other shards).

Everything else falls back to the coordinator's merged scan, which is
always available because :class:`~repro.cluster.partition.
PartitionedTable` presents the whole relation.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.sql import ast
from repro.algebra import ops
from repro.catalog.types import DataType
from repro.db import _QueryContext
from repro.engine import Evaluator, RowResolver, make_executor
from repro.engine.aggregates import Accumulator, MinMax, make_accumulator

#: aggregate functions with an exact distributed merge
DECOMPOSABLE = {"count", "sum", "min", "max", "avg"}

#: decomposable regardless of argument type (no accumulation involved,
#: or — for count — exact integer accumulation)
_ORDER_FREE = {"count", "min", "max"}

#: operators allowed under a scattered aggregate input subtree
_FRAGMENT_SAFE = (ops.Select, ops.Project, ops.Alias, ops.Rel)


def _is_star(call: ast.FuncCall) -> bool:
    return len(call.args) == 1 and isinstance(call.args[0], ast.Star)


def decomposable_aggregate(plan: ops.Aggregate) -> bool:
    """True when this Aggregate can run as per-shard partials."""
    if plan.group_exprs:
        return False
    if not plan.aggregates:
        return False
    for call, _ in plan.aggregates:
        if call.distinct:
            return False
        if call.name.lower() not in DECOMPOSABLE:
            return False
    return True


def exact_merge_aggregates(
    plan: ops.Aggregate, leaf: ops.Rel, schema
) -> bool:
    """True when every aggregate's distributed merge is *byte-exact*.

    ``count``/``min``/``max`` always are.  ``sum``/``avg`` accumulate by
    addition, and float addition is non-associative — folding shard-
    by-shard instead of in global row-id order can differ from the
    single-node answer in the last ulp.  They are therefore decomposed
    only when the argument is a bare INT column of the leaf relation
    (integer addition, and addition of integer-valued floats below
    2**53, is exact and order-independent).
    """
    for call, _ in plan.aggregates:
        if call.name.lower() in _ORDER_FREE or _is_star(call):
            continue
        arg = call.args[0]
        if not isinstance(arg, ast.ColumnRef):
            return False
        # a Project between the Aggregate and the Rel may rename or
        # compute, hiding the argument's type; require the bare
        # select-from shape so the schema lookup is authoritative
        node = plan.child
        while isinstance(node, (ops.Select, ops.Alias)):
            node = node.child
        if node is not leaf:
            return False
        try:
            col = schema.column(arg.name)
        except Exception:
            return False
        if col.dtype is not DataType.INT:
            return False
    return True


def fragment_safe_subtree(plan: ops.Operator) -> bool:
    """True when every operator under ``plan`` reads only one shard's
    fragment (single base relation, no joins/subqueries/views)."""
    if not isinstance(plan, _FRAGMENT_SAFE):
        return False
    return all(fragment_safe_subtree(child) for child in plan.children)


class _ShardScanContext(_QueryContext):
    """ExecContext resolving partitioned tables to one shard's fragment.

    Non-partitioned tables resolve normally, so a node plan may mix in
    coordinator-local relations (none do today — the safe-subtree check
    admits a single Rel — but the fallback keeps this context honest).
    """

    def __init__(self, db, session, access_params, shard: int):
        super().__init__(db, session, access_params)
        self.shard = shard

    def table_handle(self, name: str):
        table = self.db.table(name)
        fragment = getattr(table, "fragment", None)
        return fragment(self.shard) if fragment is not None else table

    def table_rows(self, name: str):
        return self.table_handle(name).rows()


class StorageNode:
    """One shard: holds table fragments and runs scattered plan pieces."""

    def __init__(self, ordinal: int):
        self.ordinal = ordinal
        #: relation name (lower) -> this shard's Table fragment
        self.tables: dict[str, object] = {}
        #: scattered subplans executed on this node
        self.fragments_executed = 0

    def add_table(self, name: str, table) -> None:
        self.tables[name.lower()] = table

    def execute_fragment(
        self,
        db,
        plan: ops.Operator,
        session,
        access_params: Optional[Mapping[str, object]] = None,
        engine: str = "row",
        ctx=None,
        compile_cache=None,
    ) -> list[tuple]:
        """Run ``plan`` against this node's fragments."""
        context = _ShardScanContext(db, session, access_params, self.ordinal)
        executor = make_executor(engine, context, ctx=ctx, compile_cache=compile_cache)
        self.fragments_executed += 1
        return executor.execute(plan)

    def partial_aggregate(
        self,
        db,
        plan: ops.Aggregate,
        session,
        access_params: Optional[Mapping[str, object]] = None,
        engine: str = "row",
        ctx=None,
        compile_cache=None,
    ) -> list[Accumulator]:
        """Fold this shard's rows into one accumulator per aggregate."""
        rows = self.execute_fragment(
            db, plan.child, session, access_params, engine, ctx, compile_cache
        )
        evaluator = Evaluator(RowResolver(plan.child.columns))
        accumulators = [
            make_accumulator(call.name, call.distinct, _is_star(call))
            for call, _ in plan.aggregates
        ]
        for row in rows:
            if ctx is not None:
                ctx.tick()
            for (call, _), acc in zip(plan.aggregates, accumulators):
                if _is_star(call):
                    acc.add(1)
                else:
                    acc.add(evaluator.evaluate(call.args[0], row))
        return accumulators


def merge_partials(
    call: ast.FuncCall, partials: list[Accumulator]
) -> object:
    """Combine per-shard accumulator states into the final value.

    The merges are exact: counts add, sums add with SQL's all-NULL →
    NULL rule (and integer sums stay integers), min/max re-compare the
    shard winners through the same accumulator (preserving the
    incomparable-type error), and avg divides the summed totals by the
    summed counts rather than averaging shard averages.
    """
    name = call.name.lower()
    if name == "count":
        return sum(p.count for p in partials)
    if name == "sum":
        total = None
        for p in partials:
            if p.total is None:
                continue
            total = p.total if total is None else total + p.total
        return total
    if name == "avg":
        count = sum(p.count for p in partials)
        if count == 0:
            return None
        return sum(p.total for p in partials) / count
    # min / max
    merged = MinMax(is_min=(name == "min"))
    for p in partials:
        if p.best is not None:
            merged.add(p.best)
    return merged.result()
