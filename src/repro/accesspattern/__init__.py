"""Access-pattern authorization views (paper Section 6)."""

from repro.accesspattern.inference import (
    access_pattern_views,
    describe_access_pattern,
)

__all__ = ["access_pattern_views", "describe_access_pattern"]
