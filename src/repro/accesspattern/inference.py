"""Access-pattern view inference (paper Section 6) — overview helpers.

The actual inference lives inside the block matcher
(:mod:`repro.nontruman.matching`), which implements both mechanisms the
paper describes:

* **parameter instantiation** — a ``$$`` parameter is treated as an
  opaque constant; a view conjunct ``col = $$p`` is satisfiable whenever
  the query pins ``col``, with ``$$p`` bound to that pinned value
  (``BlockMatcher._access_pattern_pin``);
* **dependent joins** — ``r ⋈_{r.B = s.A} s`` is computable by stepping
  through ``r`` and invoking the access-pattern view on ``s`` once per
  join value (``BlockMatcher._dependent_join_candidates`` plus the
  :class:`~repro.algebra.ops.DependentJoin` operator in the executor).

This module provides introspection utilities used by examples, tests,
and the E10 benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.authviews.views import AuthorizationView

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


def access_pattern_views(db: "Database") -> list[AuthorizationView]:
    """All stored authorization views that declare ``$$`` parameters."""
    result = []
    for view_def in db.catalog.views():
        if not view_def.authorization:
            continue
        wrapped = AuthorizationView.from_def(view_def)
        if wrapped.is_access_pattern:
            result.append(wrapped)
    return result


def describe_access_pattern(view: AuthorizationView) -> str:
    """Human-readable summary of a view's parameter signature."""
    params = ", ".join(f"${p}" for p in sorted(view.params))
    access = ", ".join(f"$${p}" for p in sorted(view.access_params))
    parts = [f"view {view.name}"]
    if params:
        parts.append(f"context parameters: {params}")
    if access:
        parts.append(f"access-pattern parameters (bind at access time): {access}")
    return "; ".join(parts)
