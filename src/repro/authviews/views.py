"""Parameterized and access-pattern authorization views.

An authorization view is a stored view definition whose query may
contain ``$param`` context parameters and ``$$param`` access-pattern
parameters.  For a given session, the *instantiated* authorization view
is the definition with every ``$param`` replaced by the session's value
(paper Section 2); validity of user queries is tested against the
instantiated views.  ``$$`` parameters remain symbolic during inference
(they are treated as opaque constants, Section 6) and are bound only
when the view is actually evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import ParameterError
from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra.translate import _map_query_exprs
from repro.authviews.session import SessionContext
from repro.catalog.catalog import ViewDef


def query_params(query: ast.QueryExpr) -> set[str]:
    """Names of all ``$param`` context parameters in a query."""
    names: set[str] = set()
    _map_query_exprs(query, lambda e: _collect(e, names, access=False))
    return names


def query_access_params(query: ast.QueryExpr) -> set[str]:
    """Names of all ``$$param`` access-pattern parameters in a query."""
    names: set[str] = set()
    _map_query_exprs(query, lambda e: _collect(e, names, access=True))
    return names


def _collect(expr: ast.Expr, into: set[str], access: bool) -> ast.Expr:
    if access:
        into.update(exprs.access_params_in(expr))
    else:
        into.update(exprs.params_in(expr))
    return expr


@dataclass(frozen=True)
class AuthorizationView:
    """A stored authorization view plus its parameter signature."""

    definition: ViewDef
    params: frozenset[str]
    access_params: frozenset[str]

    @classmethod
    def from_def(cls, definition: ViewDef) -> "AuthorizationView":
        return cls(
            definition=definition,
            params=frozenset(query_params(definition.query)),
            access_params=frozenset(query_access_params(definition.query)),
        )

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_access_pattern(self) -> bool:
        return bool(self.access_params)

    def instantiate(self, session: SessionContext) -> "InstantiatedView":
        """Replace context parameters with the session's values."""
        values = session.require(set(self.params))
        query = _map_query_exprs(
            self.definition.query,
            lambda e: exprs.substitute_params(e, values),
        )
        return InstantiatedView(
            view=self,
            query=query,
            param_values=dict(values),
        )


@dataclass(frozen=True)
class InstantiatedView:
    """An authorization view with context parameters bound.

    ``query`` still contains ``$$`` access-pattern parameters if the
    view declared any.
    """

    view: AuthorizationView
    query: ast.QueryExpr
    param_values: Mapping[str, object]

    @property
    def name(self) -> str:
        return self.view.name

    @property
    def definition(self) -> ViewDef:
        return self.view.definition

    @property
    def is_access_pattern(self) -> bool:
        return self.view.is_access_pattern

    def bind_access_params(
        self, values: Optional[Mapping[str, object]]
    ) -> ast.QueryExpr:
        """Bind ``$$`` parameters for actual evaluation of the view."""
        if not self.view.access_params:
            return self.query
        values = dict(values or {})
        missing = sorted(self.view.access_params - set(values))
        if missing:
            raise ParameterError(
                f"access-pattern view {self.name!r} requires value(s) for: "
                + ", ".join(f"$${n}" for n in missing)
            )
        return _map_query_exprs(
            self.query, lambda e: exprs.substitute_access_params(e, values)
        )


def instantiate_view(
    definition: ViewDef, session: SessionContext
) -> InstantiatedView:
    """Convenience: wrap and instantiate a stored view definition."""
    return AuthorizationView.from_def(definition).instantiate(session)
