"""Grant registry with delegation (paper Sections 4.1 and 6).

Authorization views are granted to users like ordinary privileges; the
*available authorization views* of a user are those granted to her
directly or to ``PUBLIC``.  Section 6: "Delegation can be done outside
of our inferencing system: we can use any delegation specification
technique to collect all available authorization views, whether
directly granted or delegated, and then run our inferencing techniques
on the resulting set."

This registry implements the standard SQL-style technique: grants carry
an optional **grant option**; a holder with the grant option may
delegate the view onward; revoking a grant cascades through the
delegation chains rooted at it.

The registry is safe for concurrent readers and writers: mutations and
reads take one re-entrant lock.  Every successful mutation bumps a
monotonic ``version`` counter, which the enforcement gateway's shared
validity cache uses to drop decisions that predate a policy change
(a query invalid before a ``\\grant`` may be valid after it, and vice
versa after a revoke).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import GrantError

PUBLIC = "public"
_DBA = "_dba"  # implicit grantor for administrator-issued grants


@dataclass(frozen=True)
class GrantRecord:
    view: str  # lower-cased view name
    grantee: str  # lower-cased principal
    grantor: str  # lower-cased principal (or _DBA)
    grant_option: bool = False


class GrantRegistry:
    """Tracks SELECT grants on authorization views, with delegation."""

    def __init__(self):
        self._records: list[GrantRecord] = []
        self._lock = threading.RLock()
        self._version = 0
        #: per-grantee mutation counters for *exact* prepared-template
        #: invalidation: a grant to user A must not evict user B's
        #: templates, so templates are stamped with (user, PUBLIC)
        #: counters rather than the global version
        self._user_versions: dict[str, int] = {}
        #: durability hook (repro.durability): called as
        #: ``on_change("grant"|"revoke", info_dict)`` after every
        #: successful state change, so registry mutations reach the WAL
        #: no matter which API performed them
        self.on_change: Optional[Callable[[str, dict], None]] = None

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every grant/revoke."""
        with self._lock:
            return self._version

    def _bump_user(self, grantee: str) -> None:
        key = grantee.lower()
        self._user_versions[key] = self._user_versions.get(key, 0) + 1

    def user_version(self, user: Optional[str]) -> tuple[int, int]:
        """Grant-change counters affecting ``user``: (direct, PUBLIC).

        Any grant or revoke whose grantee is ``user`` bumps the first
        component; any whose grantee is ``PUBLIC`` bumps the second.
        A cached artifact stamped with this pair is stale iff a policy
        change could have altered this user's available views."""
        key = PUBLIC if user is None else user.lower()
        with self._lock:
            return (
                self._user_versions.get(key, 0),
                self._user_versions.get(PUBLIC, 0),
            )

    def restore(self, records: Iterable[GrantRecord], version: int) -> None:
        """Replace the full state (snapshot load; no validation)."""
        with self._lock:
            affected = {r.grantee for r in self._records}
            self._records = list(records)
            affected.update(r.grantee for r in self._records)
            affected.add(PUBLIC)
            for grantee in affected:
                self._bump_user(grantee)
            self._version = version

    def restore_version(self, version: int) -> None:
        """Advance the version counter (WAL replay restores the policy
        epoch so cached decisions from before the crash can never be
        mistaken for current ones)."""
        with self._lock:
            self._version = max(self._version, version)

    # -- granting ---------------------------------------------------------

    def grant(
        self,
        view_name: str,
        grantee: str,
        grantor: Optional[str] = None,
        grant_option: bool = False,
    ) -> None:
        """Record a grant.  With ``grantor=None`` this is an
        administrator action; otherwise the grantor must hold the view
        WITH GRANT OPTION (delegation, §6)."""
        view = view_name.lower()
        who = grantee.lower()
        giver = (grantor or _DBA).lower()
        with self._lock:
            if giver != _DBA and not self.has_grant_option(view_name, giver):
                raise GrantError(
                    f"{grantor!r} cannot delegate {view_name!r}: no grant option"
                )
            record = GrantRecord(view, who, giver, grant_option)
            if record not in self._records:
                self._records.append(record)
                self._version += 1
                self._bump_user(who)
                if self.on_change is not None:
                    self.on_change(
                        "grant",
                        {
                            "view": view,
                            "grantee": who,
                            "grantor": giver,
                            "option": grant_option,
                            "gv": self._version,
                        },
                    )

    def delegate(
        self,
        view_name: str,
        from_user: str,
        to_user: str,
        grant_option: bool = False,
    ) -> None:
        """Delegation: ``from_user`` passes the view to ``to_user``."""
        self.grant(view_name, to_user, grantor=from_user, grant_option=grant_option)

    # -- revocation (cascading) ----------------------------------------------

    def revoke(self, view_name: str, grantee: str,
               grantor: Optional[str] = None) -> None:
        """Revoke ``grantee``'s grant(s) on the view; delegations made
        by the grantee that depended on them are revoked transitively."""
        view = view_name.lower()
        who = grantee.lower()
        giver = None if grantor is None else grantor.lower()
        with self._lock:
            doomed = [
                r
                for r in self._records
                if r.view == view
                and r.grantee == who
                and (giver is None or r.grantor == giver)
            ]
            if not doomed:
                raise GrantError(f"{grantee!r} holds no grant on {view_name!r}")
            for record in doomed:
                self._records.remove(record)
                self._bump_user(record.grantee)
            self._cascade(view)
            self._version += 1
            if self.on_change is not None:
                # the cascade is deterministic from the registry state,
                # so logging the originating revoke is enough to replay it
                self.on_change(
                    "revoke",
                    {
                        "view": view,
                        "grantee": who,
                        "grantor": giver,
                        "gv": self._version,
                    },
                )

    def _cascade(self, view: str) -> None:
        """Drop delegated grants whose grantor no longer has the option."""
        changed = True
        while changed:
            changed = False
            for record in list(self._records):
                if record.view != view or record.grantor == _DBA:
                    continue
                if not self.has_grant_option(view, record.grantor):
                    self._records.remove(record)
                    self._bump_user(record.grantee)
                    changed = True

    # -- queries -----------------------------------------------------------------

    def _grants_for(self, view: str) -> list[GrantRecord]:
        with self._lock:
            return [r for r in self._records if r.view == view]

    def is_granted(self, view_name: str, user: Optional[str]) -> bool:
        view = view_name.lower()
        for record in self._grants_for(view):
            if record.grantee == PUBLIC:
                return True
            if user is not None and record.grantee == user.lower():
                return True
        return False

    def has_grant_option(self, view_name: str, user: Optional[str]) -> bool:
        if user is None:
            return False
        view = view_name.lower()
        lowered = user.lower()
        return any(
            r.grant_option
            and (r.grantee == lowered or r.grantee == PUBLIC)
            for r in self._grants_for(view)
        )

    def views_for(self, user: Optional[str], all_views: Iterable[str]) -> list[str]:
        """Names from ``all_views`` available to ``user``."""
        return [name for name in all_views if self.is_granted(name, user)]

    def grantor_of(self, view_name: str, grantee: str) -> Optional[str]:
        """The grantor of the first grant held by ``grantee`` (None for
        administrator grants)."""
        view = view_name.lower()
        who = grantee.lower()
        for record in self._grants_for(view):
            if record.grantee == who:
                return None if record.grantor == _DBA else record.grantor
        return None

    def grants(self, view_name: Optional[str] = None) -> list[GrantRecord]:
        with self._lock:
            if view_name is None:
                return list(self._records)
            return self._grants_for(view_name.lower())
