"""Authorization views (paper Section 2): parameterized views, access-
pattern views, session contexts, and the grant registry."""

from repro.authviews.session import SessionContext
from repro.authviews.views import AuthorizationView, InstantiatedView, instantiate_view
from repro.authviews.registry import GrantRegistry

__all__ = [
    "SessionContext",
    "AuthorizationView",
    "InstantiatedView",
    "instantiate_view",
    "GrantRegistry",
]
