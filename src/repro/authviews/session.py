"""Secure application context (paper Section 3.1).

When a user connects, a :class:`SessionContext` carries the values of
the context parameters that parameterized authorization views refer to:
``$user_id``, ``$time``, ``$location``, and any application-defined
extras.  Instantiating the authorization views replaces each ``$param``
with the session's value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import ParameterError


@dataclass(frozen=True)
class SessionContext:
    """Parameter values for one database session/access."""

    user_id: Optional[object] = None
    time: Optional[object] = None
    location: Optional[object] = None
    extra: Mapping[str, object] = field(default_factory=dict)

    def param_values(self) -> dict[str, object]:
        """All context parameters as a ``name → value`` mapping."""
        values: dict[str, object] = dict(self.extra)
        if self.user_id is not None:
            values["user_id"] = self.user_id
        if self.time is not None:
            values["time"] = self.time
        if self.location is not None:
            values["location"] = self.location
        return values

    def require(self, names: set[str]) -> dict[str, object]:
        """Return values for ``names``, raising if any are missing."""
        values = self.param_values()
        missing = sorted(n for n in names if n not in values)
        if missing:
            raise ParameterError(
                "session context is missing parameter(s): "
                + ", ".join(f"${n}" for n in missing)
            )
        return {n: values[n] for n in names}

    @property
    def user(self) -> Optional[str]:
        return None if self.user_id is None else str(self.user_id)
