"""repro.service — the concurrent policy-enforcement gateway.

A thread-safe, multi-session front door over one
:class:`~repro.db.Database`: worker pool, bounded admission queue with
backpressure, per-request deadlines, per-user connection pooling, a
process-wide sharded validity-decision cache, and an observability
layer (structured audit log + metrics registry).

Quickstart::

    from repro.service import EnforcementGateway, QueryRequest

    gateway = EnforcementGateway(db, workers=4)
    response = gateway.execute(
        QueryRequest(user="11", sql="select * from MyGrades")
    )
    assert response.ok
    gateway.shutdown()
"""

from repro.service.audit import AuditLog, AuditRecord
from repro.service.breaker import CircuitBreaker
from repro.service.cache import SharedValidityCache
from repro.service.chaos import (
    ChaosInjector,
    FaultSpec,
    GATEWAY_FAULT_POINTS,
    NET_FAULT_POINTS,
)
from repro.service.clock import Clock, ManualClock, SYSTEM_CLOCK
from repro.service.context import QueryContext
from repro.service.gateway import EnforcementGateway, PendingQuery
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry, State
from repro.service.pool import ConnectionPool
from repro.service.request import QueryRequest, QueryResponse, RequestStatus, Timing

__all__ = [
    "AuditLog",
    "AuditRecord",
    "ChaosInjector",
    "CircuitBreaker",
    "Clock",
    "ConnectionPool",
    "Counter",
    "ManualClock",
    "SYSTEM_CLOCK",
    "EnforcementGateway",
    "FaultSpec",
    "GATEWAY_FAULT_POINTS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NET_FAULT_POINTS",
    "PendingQuery",
    "QueryContext",
    "QueryRequest",
    "QueryResponse",
    "RequestStatus",
    "SharedValidityCache",
    "State",
    "Timing",
]
