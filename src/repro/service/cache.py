"""Process-wide shared validity-decision cache for the gateway.

The per-database :class:`~repro.nontruman.cache.ValidityCache` was
designed for one session at a time; the gateway serves many concurrent
sessions, so contention on a single lock would serialize the hot path.
This cache shards entries by ``hash((user, skeleton))`` across N
independent LRU-bounded :class:`ValidityCache` instances, each with its
own lock — lookups for different users/queries proceed in parallel.

Invalidation has two independent axes:

* **data version** — bumped by the database on every INSERT / UPDATE /
  DELETE / ROLLBACK (``Database.validity_cache.invalidate_data``).
  Entries are stamped with the version observed *before* their check
  ran; CONDITIONAL and INVALID decisions stamped with an older version
  are treated as misses (the paper's Section 5.6 rule — only
  UNCONDITIONAL acceptances are state-independent).
* **policy epoch** — the pair (grant-registry version, catalog view
  version).  Any ``GRANT`` / ``REVOKE`` / ``CREATE VIEW`` / ``DROP
  VIEW`` changes what is answerable *at all*, including unconditional
  decisions, so an epoch change clears every shard.

Both versions are pulled from a ``version_source`` callable on every
access, so the cache never serves a decision that predates the state
it was derived from.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.sql import ast
from repro.nontruman.cache import ValidityCache, query_signature
from repro.nontruman.decision import Validity

#: () -> (data_version, policy_epoch)
VersionSource = Callable[[], tuple[int, object]]

_UNSET = object()  # policy epoch before the first synchronization


class SharedValidityCache:
    """Sharded, LRU-bounded, version-checked decision cache."""

    def __init__(
        self,
        shards: int = 8,
        capacity_per_shard: int = 512,
        version_source: Optional[VersionSource] = None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self._shards = [
            ValidityCache(max_entries=capacity_per_shard) for _ in range(shards)
        ]
        self._version_source = version_source
        self._policy_epoch: object = _UNSET
        self._epoch_lock = threading.Lock()
        self._invalidations = 0

    # ------------------------------------------------------------------

    def _shard(self, user: Optional[str], skeleton: ast.QueryExpr) -> ValidityCache:
        return self._shards[hash((user, skeleton)) % len(self._shards)]

    def current_versions(self) -> tuple[Optional[int], object]:
        """(data_version, policy_epoch) from the version source.

        Also synchronizes the policy epoch: if it moved since the last
        access, every shard is cleared before the lookup proceeds.
        """
        if self._version_source is None:
            return None, None
        data_version, policy_epoch = self._version_source()
        with self._epoch_lock:
            if policy_epoch != self._policy_epoch:
                if self._policy_epoch is not _UNSET:
                    for shard in self._shards:
                        shard.clear()
                    self._invalidations += 1
                self._policy_epoch = policy_epoch
        return data_version, policy_epoch

    # ------------------------------------------------------------------

    def lookup(
        self, user: Optional[str], query: ast.QueryExpr, user_value: object
    ) -> Optional[tuple[Validity, str]]:
        data_version, _ = self.current_versions()
        skeleton, literals = query_signature(query)
        return self._shard(user, skeleton).lookup_signed(
            user, skeleton, literals, user_value, data_version=data_version
        )

    def store(
        self,
        user: Optional[str],
        query: ast.QueryExpr,
        user_value: object,
        validity: Validity,
        reason: str,
        data_version: Optional[int] = None,
    ) -> None:
        """Store a decision.

        Pass the ``data_version`` observed before the check started so
        that a concurrent DML commit mid-check leaves the entry stale
        (and therefore unservable) instead of wrong.
        """
        if data_version is None:
            data_version, _ = self.current_versions()
        skeleton, literals = query_signature(query)
        self._shard(user, skeleton).store_signed(
            user,
            skeleton,
            literals,
            user_value,
            validity,
            reason,
            data_version=data_version,
        )

    def lookup_signed(
        self,
        user: Optional[str],
        skeleton: ast.QueryExpr,
        literals: tuple,
        user_value: object,
        data_version: Optional[int] = None,
    ) -> Optional[tuple[Validity, str]]:
        """Like :meth:`lookup`, for callers that already hold the
        literal-stripped signature (the prepared-statement path, which
        must not re-parse or re-sign on a hot hit).

        Shards by the same ``(user, skeleton)`` key as :meth:`lookup`,
        so prepared and legacy requests for the same query share one
        decision entry.
        """
        if data_version is None:
            data_version, _ = self.current_versions()
        return self._shard(user, skeleton).lookup_signed(
            user, skeleton, literals, user_value, data_version=data_version
        )

    def store_signed(
        self,
        user: Optional[str],
        skeleton: ast.QueryExpr,
        literals: tuple,
        user_value: object,
        validity: Validity,
        reason: str,
        data_version: Optional[int] = None,
    ) -> None:
        """Signature-level :meth:`store` (see :meth:`lookup_signed`)."""
        if data_version is None:
            data_version, _ = self.current_versions()
        self._shard(user, skeleton).store_signed(
            user,
            skeleton,
            literals,
            user_value,
            validity,
            reason,
            data_version=data_version,
        )

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # -- statistics -----------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    @property
    def size(self) -> int:
        return sum(s.size for s in self._shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def policy_invalidations(self) -> int:
        with self._epoch_lock:
            return self._invalidations

    def stats(self) -> dict[str, object]:
        return {
            "cache_shards": len(self._shards),
            "cache_entries": self.size,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "cache_evictions": self.evictions,
            "cache_policy_invalidations": self.policy_invalidations,
        }
