"""Injectable clocks for deadline and expiry logic.

Every component that asks "what time is it?" — gateway deadlines,
query-context budgets, audit timestamps, and ReBAC grant expiry —
takes a :class:`Clock` instead of calling :func:`time.time` /
:func:`time.monotonic` directly.  Production code uses the module
singleton :data:`SYSTEM_CLOCK`; tests inject a :class:`ManualClock`
and *advance* it, so "the grant expired" is a deterministic statement
about test state rather than a race against the wall clock.

Two time bases are exposed, mirroring the stdlib:

* :meth:`Clock.now` — wall-clock seconds since the epoch (audit
  timestamps, ``$time`` session values, grant ``expires_at`` bounds);
* :meth:`Clock.monotonic` — a monotonic float for measuring elapsed
  time (deadlines, latencies).

:class:`ManualClock` drives both from one counter so advancing it
moves deadlines and expiry in lockstep.
"""

from __future__ import annotations

import time


class Clock:
    """The real time source (thin wrapper over the stdlib)."""

    def now(self) -> float:
        """Wall-clock seconds since the epoch."""
        return time.time()

    def monotonic(self) -> float:
        """Monotonic seconds (for measuring elapsed time)."""
        return time.monotonic()


class ManualClock(Clock):
    """A clock that only moves when told to.

    ``advance(dt)`` moves both time bases forward by ``dt`` seconds;
    ``set_now(t)`` jumps the wall clock to an absolute value without
    disturbing the monotonic base's origin.
    """

    def __init__(self, now: float = 1_000_000.0, monotonic: float = 0.0):
        self._now = float(now)
        self._monotonic = float(monotonic)

    def now(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._monotonic

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance a clock backwards ({dt})")
        self._now += dt
        self._monotonic += dt

    def set_now(self, now: float) -> None:
        self._now = float(now)


#: the default clock used when none is injected
SYSTEM_CLOCK = Clock()
