"""Per-request cancellation and resource governance.

A :class:`QueryContext` is created by the gateway for every admitted
request and threaded through the phases whose cost is request- (and in
the Non-Truman case adversary-) controlled: the validity checker's
inference loops (:mod:`repro.nontruman.matching`, ``blocks``,
``checker``), the row executor (amortized per-N-rows checks), and the
vectorized executor (per-batch checks).

The contract is *cooperative*: long-running loops call :meth:`tick`
(cheap — integer arithmetic; the wall clock is consulted only every
``check_interval`` charged rows) or :meth:`check` (always consults the
clock).  When the deadline has passed, the cancel token is set, or a
budget is exhausted, the call raises a typed
:class:`~repro.errors.QueryAborted` subclass that unwinds the whole
request with no partial state — no cached decision, no partial result,
and a worker that is immediately free for the next request.

Code paths outside the gateway pass ``ctx=None`` and pay nothing.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import QueryCancelled, QueryTimeout, ResourceBudgetExceeded
from repro.service.clock import SYSTEM_CLOCK, Clock

#: rows charged between wall-clock checks; small enough that a scan of
#: a few thousand rows observes cancellation, large enough that the
#: per-row cost is a couple of integer ops
DEFAULT_CHECK_INTERVAL = 512

#: crude per-cell cost estimate for the memory budget (a small Python
#: object reference plus amortized tuple overhead)
BYTES_PER_CELL = 8


class QueryContext:
    """Deadline, cancel token, and row/memory budgets for one request."""

    __slots__ = (
        "clock",
        "deadline_s",
        "deadline_at",
        "row_budget",
        "memory_budget",
        "check_interval",
        "rows_charged",
        "bytes_charged",
        "checks_performed",
        "_pending_rows",
        "_cancelled",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        row_budget: Optional[int] = None,
        memory_budget: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        clock: Optional[Clock] = None,
    ):
        self.clock = clock or SYSTEM_CLOCK
        now = self.clock.monotonic()
        self.deadline_s = deadline
        self.deadline_at = None if deadline is None else now + deadline
        self.row_budget = row_budget
        self.memory_budget = memory_budget
        self.check_interval = max(1, check_interval)
        #: rows charged so far (scans + materialized operator outputs)
        self.rows_charged = 0
        #: estimated bytes of materialized state charged so far
        self.bytes_charged = 0
        #: full (clock-consulting) checks performed
        self.checks_performed = 0
        self._pending_rows = 0
        self._cancelled = threading.Event()

    # -- cancellation -----------------------------------------------------

    def cancel(self) -> None:
        """Set the cancel token; the next cooperative check raises."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    # -- time -------------------------------------------------------------

    @property
    def expired(self) -> bool:
        return (
            self.deadline_at is not None
            and self.clock.monotonic() > self.deadline_at
        )

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None = no deadline)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self.clock.monotonic())

    # -- cooperative checks ----------------------------------------------

    def check(self, phase: str = "") -> None:
        """Full check: raises if cancelled, expired, or over budget."""
        self.checks_performed += 1
        where = f" during {phase}" if phase else ""
        if self._cancelled.is_set():
            raise QueryCancelled(f"query cancelled{where}")
        if (
            self.deadline_at is not None
            and self.clock.monotonic() > self.deadline_at
        ):
            raise QueryTimeout(
                f"deadline of {self.deadline_s:.3f}s exceeded{where}"
            )

    def tick(self, rows: int = 1, cells: int = 0) -> None:
        """Charge ``rows`` (and optionally ``cells`` of materialized
        state) against the budgets; consult the wall clock and cancel
        token only once per ``check_interval`` charged rows.

        ``rows=0`` still counts as one unit of work, so pure search
        loops (the cover search in the matcher) stay interruptible.
        """
        if rows:
            self.rows_charged += rows
            if (
                self.row_budget is not None
                and self.rows_charged > self.row_budget
            ):
                raise ResourceBudgetExceeded(
                    f"row budget of {self.row_budget} rows exceeded "
                    f"({self.rows_charged} charged)"
                )
        if cells:
            self.bytes_charged += cells * BYTES_PER_CELL
            if (
                self.memory_budget is not None
                and self.bytes_charged > self.memory_budget
            ):
                raise ResourceBudgetExceeded(
                    f"memory budget of {self.memory_budget} bytes exceeded "
                    f"(~{self.bytes_charged} estimated)"
                )
        self._pending_rows += rows if rows else 1
        if self._pending_rows >= self.check_interval:
            self._pending_rows = 0
            self.check()

    # -- observability ----------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "rows_charged": self.rows_charged,
            "bytes_charged": self.bytes_charged,
            "checks_performed": self.checks_performed,
            "cancelled": self.cancelled,
        }
