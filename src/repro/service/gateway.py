"""The concurrent policy-enforcement gateway.

:class:`EnforcementGateway` is the service front door of the
reproduction: clients submit :class:`~repro.service.request.QueryRequest`
objects; a fixed worker pool takes them off a bounded admission queue,
checks them under the requested access-control model (Truman rewriting,
Non-Truman validity inference, Motro masking, or open), executes
accepted queries on pooled per-user connections, and answers with
structured :class:`~repro.service.request.QueryResponse` objects.

Architecturally this is the PDP/PEP split of Guarnieri et al. (*Strong
and Provably Secure Database Access Control*): the gateway is the
enforcement point, the validity checker / Truman rewriter the decision
point, and the decision is taken *before* any row is touched.

Robustness controls:

* **backpressure** — the admission queue is bounded; when it is full,
  :meth:`submit` raises :class:`~repro.errors.ServiceOverloaded`
  immediately instead of hanging the caller;
* **deadlines** — each request may carry a deadline (seconds from
  submission); expired requests get a structured ``TIMEOUT`` response
  at dequeue and at every phase boundary, so a slow queue cannot make
  a worker burn time on an answer nobody is waiting for;
* **graceful shutdown** — :meth:`shutdown` stops admission, optionally
  drains in-flight requests, and joins the workers; undrained requests
  are answered with ``CANCELLED``, never dropped silently.

Consistency: queries (and the probes the validity checker runs) share
a readers-writer lock; DML takes it exclusively.  The shared validity
cache stamps every stored decision with the data version observed
*while holding the read lock*, so a decision can never be derived from
one database state and served against another.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import (
    DurabilityError,
    QueryRejectedError,
    ReproError,
    ServiceOverloaded,
    ServiceShutdown,
    UpdateRejectedError,
)
from repro.sql import ast, parse_statement, render
from repro.nontruman.cache import query_signature
from repro.nontruman.decision import ValidityDecision
from repro.service.audit import AuditLog
from repro.service.cache import SharedValidityCache
from repro.service.metrics import MetricsRegistry
from repro.service.pool import ConnectionPool
from repro.service.request import QueryRequest, QueryResponse, RequestStatus, Timing

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


class _ReadWriteLock:
    """Many readers or one writer (no starvation handling needed at
    this scale: writers are rare DML, readers are the query hot path)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class PendingQuery:
    """Handle for a submitted request; resolves to a QueryResponse."""

    def __init__(self, request: QueryRequest):
        self.request = request
        self._done = threading.Event()
        self._response: Optional[QueryResponse] = None

    def _resolve(self, response: QueryResponse) -> None:
        self._response = response
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"no response within {timeout}s (request still in flight)"
            )
        assert self._response is not None
        return self._response


_SENTINEL = object()


class EnforcementGateway:
    """Thread-safe multi-session front door over one Database."""

    def __init__(
        self,
        db: "Database",
        workers: int = 4,
        queue_size: int = 64,
        cache_shards: int = 8,
        cache_capacity_per_shard: int = 512,
        audit_capacity: int = 2048,
        max_idle_per_user: int = 8,
        name: str = "gateway",
    ):
        self.db = db
        self.name = name
        self.pool = ConnectionPool(db, max_idle_per_key=max_idle_per_user)
        self.cache = SharedValidityCache(
            shards=cache_shards,
            capacity_per_shard=cache_capacity_per_shard,
            version_source=self._versions,
        )
        self.metrics = MetricsRegistry()
        self.audit = AuditLog(capacity=audit_capacity)
        self.queue_size = queue_size
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self._rwlock = _ReadWriteLock()
        self._accepting = True
        self._state_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- database version plumbing --------------------------------------

    def _versions(self) -> tuple[int, object]:
        """(data version, policy epoch) of the underlying database."""
        return (
            self.db.validity_cache.data_version,
            (self.db.grants.version, self.db.catalog.views_version),
        )

    # -- submission ------------------------------------------------------

    @property
    def accepting(self) -> bool:
        with self._state_lock:
            return self._accepting

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Enqueue a request; raises on shutdown or backpressure."""
        if not self.accepting:
            raise ServiceShutdown(f"{self.name} is not accepting requests")
        pending = PendingQuery(request)
        item = (pending, request, time.perf_counter())
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.metrics.counter("requests_overloaded").inc()
            self.audit.record(
                user=request.user,
                mode=request.mode,
                signature=request.sql,
                status="overloaded",
                error="admission queue full",
                tag=request.tag,
            )
            raise ServiceOverloaded(
                f"{self.name} admission queue full "
                f"({self.queue_size} requests pending); retry later"
            ) from None
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(self._queue.qsize())
        return pending

    def execute(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait for the response.

        Overload rejections come back as a structured ``ERROR``-free
        exception (:class:`ServiceOverloaded`) — the request was never
        admitted, so there is no response to wait for.
        """
        if timeout is None and request.deadline is not None:
            # workers resolve expired requests at phase boundaries; the
            # slack covers a phase that is already in progress
            timeout = request.deadline + 30.0
        return self.submit(request).result(timeout)

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[QueryResponse]:
        """Closed-loop convenience: submit all, gather all.

        Requests rejected by backpressure yield synthetic responses with
        the error message, so the output aligns 1:1 with the input.
        """
        pendings: list[object] = []
        for request in requests:
            try:
                pendings.append(self.submit(request))
            except (ServiceOverloaded, ServiceShutdown) as exc:
                pendings.append(
                    QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                    )
                )
        return [
            p.result() if isinstance(p, PendingQuery) else p for p in pendings
        ]

    # -- shutdown --------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission; drain or cancel queued work; join workers."""
        with self._state_lock:
            if not self._accepting and not any(
                w.is_alive() for w in self._workers
            ):
                return
            self._accepting = False
        if drain:
            self._queue.join()
        else:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    pending, request, _ = item
                    self.metrics.counter("requests_cancelled").inc()
                    pending._resolve(
                        QueryResponse(
                            request=request,
                            status=RequestStatus.CANCELLED,
                            error="gateway shut down before execution",
                        )
                    )
                self._queue.task_done()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join(timeout)
        if drain and self.db.durability is not None:
            # drained shutdown quiesces DML, so fold the WAL tail into a
            # checkpoint: restart replays nothing and starts from a
            # truncated log
            try:
                self.db.durability.checkpoint()
            except DurabilityError:
                pass  # already closed elsewhere

    def __enter__(self) -> "EnforcementGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # -- worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            pending, request, submitted_at = item
            self.metrics.gauge("queue_depth").set(self._queue.qsize())
            self.metrics.gauge("workers_busy").inc()
            try:
                response = self._process(request, submitted_at)
            except BaseException as exc:  # never let a worker die
                response = QueryResponse(
                    request=request,
                    status=RequestStatus.ERROR,
                    error=f"internal gateway error: {exc}",
                )
            finally:
                self.metrics.gauge("workers_busy").dec()
                self._queue.task_done()
            pending._resolve(response)

    # -- request processing ----------------------------------------------

    @staticmethod
    def _expired(request: QueryRequest, submitted_at: float) -> bool:
        return (
            request.deadline is not None
            and time.perf_counter() - submitted_at > request.deadline
        )

    def _process(
        self, request: QueryRequest, submitted_at: float
    ) -> QueryResponse:
        timing = Timing()
        start = time.perf_counter()
        timing.queue_s = start - submitted_at
        worker = threading.current_thread().name

        def finish(response: QueryResponse) -> QueryResponse:
            timing.total_s = time.perf_counter() - submitted_at
            response.timing = timing
            response.worker = worker
            self._account(response)
            return response

        if self._expired(request, submitted_at):
            return finish(
                QueryResponse(
                    request=request,
                    status=RequestStatus.TIMEOUT,
                    error=(
                        f"deadline of {request.deadline:.3f}s exceeded "
                        "while queued"
                    ),
                )
            )

        # -- parse -------------------------------------------------------
        parse_start = time.perf_counter()
        try:
            statement = parse_statement(request.sql)
        except ReproError as exc:
            timing.parse_s = time.perf_counter() - parse_start
            return finish(
                QueryResponse(
                    request=request, status=RequestStatus.ERROR, error=str(exc)
                )
            )
        timing.parse_s = time.perf_counter() - parse_start

        if not isinstance(statement, ast.QueryExpr):
            return finish(self._process_statement(request, statement, timing))
        return finish(
            self._process_query(request, statement, timing, submitted_at)
        )

    def _process_statement(
        self, request: QueryRequest, statement: ast.Statement, timing: Timing
    ) -> QueryResponse:
        """DML/DDL path: exclusive access, data/policy versions move.

        On a durable database the WAL append happens under the write
        lock (``sync=False``) but the fsync happens *after* releasing
        it: concurrent workers that appended while this one held the
        lock share one group-commit fsync instead of queueing for the
        lock around their own.
        """
        self.metrics.counter("dml_requests").inc()
        execute_start = time.perf_counter()
        self._rwlock.acquire_write()
        try:
            with self.pool.checkout(
                request.user, request.mode, request.params
            ) as conn:
                outcome = conn.execute(statement, sync=False)
        except (QueryRejectedError, UpdateRejectedError) as exc:
            return QueryResponse(
                request=request, status=RequestStatus.REJECTED, error=str(exc)
            )
        except ReproError as exc:
            return QueryResponse(
                request=request, status=RequestStatus.ERROR, error=str(exc)
            )
        finally:
            self._rwlock.release_write()
            timing.execute_s = time.perf_counter() - execute_start
            # durable group commit outside the write lock (also covers
            # rejected/errored statements that appended before failing)
            if self.db.durability is not None:
                self.db.durability.commit()
        return QueryResponse(
            request=request,
            status=RequestStatus.OK,
            rowcount=outcome if isinstance(outcome, int) else None,
        )

    def _process_query(
        self,
        request: QueryRequest,
        query: ast.QueryExpr,
        timing: Timing,
        submitted_at: float,
    ) -> QueryResponse:
        self._rwlock.acquire_read()
        try:
            with self.pool.checkout(
                request.user, request.mode, request.params
            ) as conn:
                session = conn.session
                decision: Optional[ValidityDecision] = None
                cache_hit = False

                check_start = time.perf_counter()
                if request.mode == "non-truman":
                    # the version observed under the read lock is the
                    # version the decision is derived from
                    data_version, _ = self.cache.current_versions()
                    cached = self.cache.lookup(
                        session.user, query, session.user_id
                    )
                    if cached is not None:
                        validity, reason = cached
                        decision = ValidityDecision(
                            validity=validity, reason=reason, from_cache=True
                        )
                        cache_hit = True
                    else:
                        try:
                            decision = self.db.check_validity(query, session)
                        except ReproError as exc:
                            timing.check_s = time.perf_counter() - check_start
                            return QueryResponse(
                                request=request,
                                status=RequestStatus.ERROR,
                                error=str(exc),
                            )
                        self.cache.store(
                            session.user,
                            query,
                            session.user_id,
                            decision.validity,
                            decision.reason,
                            data_version=data_version,
                        )
                    timing.check_s = time.perf_counter() - check_start
                    if not decision.valid:
                        return QueryResponse(
                            request=request,
                            status=RequestStatus.REJECTED,
                            decision=decision,
                            cache_hit=cache_hit,
                            error=(
                                "query rejected by Non-Truman model: "
                                f"{decision.reason}"
                            ),
                        )
                    to_execute, execute_mode = query, "open"
                elif request.mode == "truman":
                    from repro.truman.rewrite import truman_rewrite

                    try:
                        to_execute = truman_rewrite(self.db, query, session)
                    except ReproError as exc:
                        timing.check_s = time.perf_counter() - check_start
                        return QueryResponse(
                            request=request,
                            status=RequestStatus.ERROR,
                            error=str(exc),
                        )
                    timing.check_s = time.perf_counter() - check_start
                    execute_mode = "open"
                else:  # open / motro execute directly under that mode
                    to_execute, execute_mode = query, request.mode
                    timing.check_s = time.perf_counter() - check_start

                if self._expired(request, submitted_at):
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.TIMEOUT,
                        decision=decision,
                        cache_hit=cache_hit,
                        error=(
                            f"deadline of {request.deadline:.3f}s exceeded "
                            "before execution"
                        ),
                    )

                execute_start = time.perf_counter()
                try:
                    result = self.db.execute_query(
                        to_execute,
                        session=session,
                        mode=execute_mode,
                        engine=request.engine,
                    )
                except ReproError as exc:
                    timing.execute_s = time.perf_counter() - execute_start
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        decision=decision,
                        cache_hit=cache_hit,
                        error=str(exc),
                    )
                timing.execute_s = time.perf_counter() - execute_start
                return QueryResponse(
                    request=request,
                    status=RequestStatus.OK,
                    result=result,
                    decision=decision,
                    cache_hit=cache_hit,
                )
        finally:
            self._rwlock.release_read()

    # -- accounting ------------------------------------------------------

    _STATUS_COUNTERS = {
        RequestStatus.OK: "requests_ok",
        RequestStatus.REJECTED: "requests_rejected",
        RequestStatus.TIMEOUT: "requests_timeout",
        RequestStatus.ERROR: "requests_error",
        RequestStatus.CANCELLED: "requests_cancelled",
    }

    def _account(self, response: QueryResponse) -> None:
        request = response.request
        self.metrics.counter("requests_completed").inc()
        self.metrics.counter(self._STATUS_COUNTERS[response.status]).inc()
        if response.cache_hit:
            self.metrics.counter("decision_cache_hits").inc()
        timing = response.timing
        self.metrics.histogram("latency_ms").observe(timing.total_s * 1000)
        self.metrics.histogram("queue_ms").observe(timing.queue_s * 1000)
        if timing.check_s:
            self.metrics.histogram("check_ms").observe(timing.check_s * 1000)
        if timing.execute_s:
            self.metrics.histogram("execute_ms").observe(timing.execute_s * 1000)

        decision = response.decision
        self.audit.record(
            user=request.user,
            mode=request.mode,
            signature=self._signature(request.sql),
            status=response.status.value,
            decision="" if decision is None else decision.validity.value,
            rules=()
            if decision is None
            else tuple(step.rule for step in decision.trace),
            cache_hit=response.cache_hit,
            latency_ms=timing.total_s * 1000,
            error=response.error,
            tag=request.tag,
        )

    @staticmethod
    def _signature(sql: str) -> str:
        """Literal-stripped rendering of the request for the audit log."""
        try:
            statement = parse_statement(sql)
            if isinstance(statement, ast.QueryExpr):
                skeleton, _ = query_signature(statement)
                return render(skeleton)
        except ReproError:
            pass
        return sql

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, object]:
        """One merged snapshot: gateway, metrics, cache, pool."""
        merged: dict[str, object] = {
            "workers": len(self._workers),
            "queue_capacity": self.queue_size,
            "accepting": self.accepting,
        }
        merged.update(self.metrics.snapshot())
        merged.update(self.cache.stats())
        merged.update(self.pool.stats())
        if self.db.durability is not None:
            merged.update(self.db.durability.wal_stats())
        return merged

    def render_stats(self) -> str:
        """Aligned text report (the ``\\stats`` meta-command body)."""
        snap = self.stats()
        width = max(len(name) for name in snap)
        lines = [f"-- {self.name} --"]
        for name, value in snap.items():
            if isinstance(value, float):
                lines.append(f"  {name:<{width}}  {value:.4f}")
            else:
                lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)
