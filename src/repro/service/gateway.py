"""The concurrent policy-enforcement gateway.

:class:`EnforcementGateway` is the service front door of the
reproduction: clients submit :class:`~repro.service.request.QueryRequest`
objects; a fixed worker pool takes them off a bounded admission queue,
checks them under the requested access-control model (Truman rewriting,
Non-Truman validity inference, Motro masking, or open), executes
accepted queries on pooled per-user connections, and answers with
structured :class:`~repro.service.request.QueryResponse` objects.

Architecturally this is the PDP/PEP split of Guarnieri et al. (*Strong
and Provably Secure Database Access Control*): the gateway is the
enforcement point, the validity checker / Truman rewriter the decision
point, and the decision is taken *before* any row is touched.

Robustness controls:

* **backpressure** — the admission queue is bounded; when it is full,
  :meth:`submit` raises :class:`~repro.errors.ServiceOverloaded`
  immediately instead of hanging the caller;
* **cooperative cancellation & resource governance** — every admitted
  request gets a :class:`~repro.service.context.QueryContext` (deadline,
  cancel token, row/memory budgets) threaded through the validity
  checker's inference loops and both execution engines, so even the
  adversary-controlled Non-Truman check is killed *mid-inference* by
  its deadline, a scan is killed *mid-scan*, and
  :meth:`PendingQuery.cancel` interrupts in-flight work — not just
  queued work;
* **default deadline** — requests without an explicit deadline inherit
  the gateway's ``default_deadline``, so :meth:`execute` can never hang
  forever;
* **retries** — faults classified transient
  (:class:`~repro.errors.TransientFault`) are retried with jittered
  exponential backoff, bounded by the request's deadline;
* **degraded read-only mode** — a circuit breaker around the WAL
  commit path trips after consecutive durable-commit failures: writes
  are rejected up front with a typed
  :class:`~repro.errors.ServiceDegraded` error (no partial state)
  while SELECTs keep serving; a half-open probe recovers automatically;
* **graceful shutdown** — :meth:`shutdown` stops admission, optionally
  drains in-flight requests, and joins the workers; undrained requests
  are answered with ``CANCELLED``, never dropped silently.

Every request — answered, rejected, timed out, cancelled, degraded,
overloaded, or felled by an internal fault — is audited exactly once.

Consistency: queries (and the probes the validity checker runs) share
a readers-writer lock; DML takes it exclusively.  The shared validity
cache stamps every stored decision with the data version observed
*while holding the read lock*, so a decision can never be derived from
one database state and served against another.  An aborted check
(timeout/cancel) stores nothing.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import (
    DurabilityError,
    PendingTimeout,
    QueryAborted,
    QueryCancelled,
    QueryRejectedError,
    QueryTimeout,
    ReplicaUnavailable,
    ReproError,
    ResourceBudgetExceeded,
    ServiceDegraded,
    ServiceOverloaded,
    ServiceShutdown,
    TransientFault,
    UpdateRejectedError,
)
from repro.sql import ast, parse_statement, render
from repro.nontruman.cache import query_signature
from repro.nontruman.decision import ValidityDecision
from repro.prepared import (
    PREPARABLE_MODES,
    PreparedFallback,
    bind_skeleton,
    get_or_build_template,
    resolve_signature,
)
from repro.service.audit import AuditLog
from repro.service.breaker import CircuitBreaker
from repro.service.cache import SharedValidityCache
from repro.service.clock import SYSTEM_CLOCK, Clock
from repro.service.context import QueryContext
from repro.service.metrics import MetricsRegistry
from repro.service.pool import ConnectionPool
from repro.service.request import QueryRequest, QueryResponse, RequestStatus, Timing

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


class _ReadWriteLock:
    """Many readers or one writer (no starvation handling needed at
    this scale: writers are rare DML, readers are the query hot path)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class PendingQuery:
    """Handle for a submitted request; resolves to a QueryResponse."""

    def __init__(self, request: QueryRequest, ctx: Optional[QueryContext] = None):
        self.request = request
        #: the request's cancellation/governance context
        self.ctx = ctx if ctx is not None else QueryContext()
        self._done = threading.Event()
        self._response: Optional[QueryResponse] = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def _resolve(self, response: QueryResponse) -> None:
        self._response = response
        self._done.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(response)
            except Exception:  # a bad observer must not kill the worker
                pass

    def add_done_callback(self, fn) -> None:
        """Invoke ``fn(response)`` when the request reaches a terminal
        response; immediately if it already has one.

        The callback runs on the resolving thread (a gateway worker) —
        event-loop front ends should only post a wake-up from it
        (``loop.call_soon_threadsafe``), never do blocking work.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self._response)

    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self) -> bool:
        """Request cooperative cancellation of this query.

        Works both while queued (the worker answers ``CANCELLED`` at
        dequeue) and in flight (the next cooperative check inside the
        checker or executor raises
        :class:`~repro.errors.QueryCancelled`).  Returns False when the
        request already has a terminal response.
        """
        if self._done.is_set():
            return False
        self.ctx.cancel()
        return True

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        """Wait for the terminal response.

        On timeout raises :class:`~repro.errors.PendingTimeout`, which
        carries this handle (``exc.pending``) — the request is *still
        in flight*, and the caller can ``cancel()`` it and call
        :meth:`result` again to reap the terminal response instead of
        leaking the running work.
        """
        if not self._done.wait(timeout):
            raise PendingTimeout(
                f"no response within {timeout}s (request still in flight; "
                "cancel() the handle to reap it)",
                pending=self,
            )
        assert self._response is not None
        return self._response


_SENTINEL = object()


class EnforcementGateway:
    """Thread-safe multi-session front door over one Database."""

    def __init__(
        self,
        db: "Database",
        workers: int = 4,
        queue_size: int = 64,
        cache_shards: int = 8,
        cache_capacity_per_shard: int = 512,
        audit_capacity: int = 2048,
        max_idle_per_user: int = 8,
        name: str = "gateway",
        default_deadline: Optional[float] = 30.0,
        default_row_budget: Optional[int] = None,
        default_memory_budget: Optional[int] = None,
        retry_attempts: int = 2,
        retry_backoff: float = 0.05,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        chaos: Optional[object] = None,
        retry_seed: Optional[int] = None,
        prepared_statements: bool = True,
        clock: Optional[Clock] = None,
    ):
        self.db = db
        self.name = name
        #: injectable time source threaded into every QueryContext this
        #: gateway creates and into the audit log's timestamps
        self.clock = clock or SYSTEM_CLOCK
        #: serve repeated queries through the §5.6 template cache
        #: (explicit PREPARE'd requests *and* transparent server-side
        #: templating of plain SQL text)
        self.prepared_statements = prepared_statements
        self.pool = ConnectionPool(db, max_idle_per_key=max_idle_per_user)
        self.cache = SharedValidityCache(
            shards=cache_shards,
            capacity_per_shard=cache_capacity_per_shard,
            version_source=self._versions,
        )
        self.metrics = MetricsRegistry()
        self.audit = AuditLog(capacity=audit_capacity, clock=self.clock)
        self.queue_size = queue_size
        #: deadline applied to requests that carry none (None = unbounded)
        self.default_deadline = default_deadline
        self.default_row_budget = default_row_budget
        self.default_memory_budget = default_memory_budget
        self.retry_attempts = retry_attempts
        self.retry_backoff = retry_backoff
        #: extra wait in execute() past the deadline: covers queue slack
        #: plus the gap until the worker's next cooperative check
        self.result_grace = 30.0
        #: wait for a cancelled request to be reaped before giving up
        self.cancel_grace = 30.0
        #: optional ChaosInjector fired at serving-path fault points
        self.chaos = chaos
        self._rng = random.Random(retry_seed)
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            on_transition=self._breaker_transition,
        )
        self.metrics.state("breaker_state", initial="closed").set("closed")
        # pre-create the resilience instruments so operators see them in
        # \stats (and tests can assert on them) even before they fire
        for counter in (
            "requests_cancelled_inflight",
            "requests_degraded",
            "requests_retried",
            "retries_total",
            "requests_budget_exceeded",
            "worker_faults",
            "wal_commit_failures",
            "prepared_requests",
            "prepared_fallbacks",
            "replica_reads",
            "replica_fallbacks",
        ):
            self.metrics.counter(counter)
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self._rwlock = _ReadWriteLock()
        self._accepting = True
        self._state_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- database version plumbing --------------------------------------

    def _versions(self) -> tuple[int, object]:
        """(data version, policy epoch) of the underlying database."""
        return (
            self.db.validity_cache.data_version,
            (self.db.grants.version, self.db.catalog.views_version),
        )

    def _breaker_transition(self, old: str, new: str) -> None:
        self.metrics.state("breaker_state").set(new)
        self.metrics.counter("breaker_transitions").inc()

    def _fire_chaos(self, point: str) -> None:
        if self.chaos is not None:
            self.chaos.fire(point)

    # -- submission ------------------------------------------------------

    @property
    def accepting(self) -> bool:
        with self._state_lock:
            return self._accepting

    def _make_context(self, request: QueryRequest) -> QueryContext:
        deadline = (
            request.deadline
            if request.deadline is not None
            else self.default_deadline
        )
        row_budget = (
            request.row_budget
            if request.row_budget is not None
            else self.default_row_budget
        )
        memory_budget = (
            request.memory_budget
            if request.memory_budget is not None
            else self.default_memory_budget
        )
        return QueryContext(
            deadline=deadline,
            row_budget=row_budget,
            memory_budget=memory_budget,
            clock=self.clock,
        )

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Enqueue a request; raises on shutdown or backpressure."""
        if not self.accepting:
            raise ServiceShutdown(f"{self.name} is not accepting requests")
        pending = PendingQuery(request, self._make_context(request))
        item = (pending, request, time.perf_counter())
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.metrics.counter("requests_overloaded").inc()
            self.audit.record(
                user=request.user,
                mode=request.mode,
                signature=request.sql,
                status="overloaded",
                error="admission queue full",
                tag=request.tag,
            )
            raise ServiceOverloaded(
                f"{self.name} admission queue full "
                f"({self.queue_size} requests pending); retry later"
            ) from None
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(self._queue.qsize())
        return pending

    def execute(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait for the response.

        Overload rejections come back as a structured ``ERROR``-free
        exception (:class:`ServiceOverloaded`) — the request was never
        admitted, so there is no response to wait for.

        The wait is always bounded: with no explicit ``timeout`` it is
        derived from the request deadline (or the gateway's
        ``default_deadline``) plus :attr:`result_grace`.  If the wait
        still elapses, the in-flight request is cancelled cooperatively
        and its terminal (``CANCELLED``) response reaped, so no work is
        left running with no handle.
        """
        pending = self.submit(request)
        if timeout is None:
            deadline = pending.ctx.deadline_s
            timeout = None if deadline is None else deadline + self.result_grace
        try:
            return pending.result(timeout)
        except PendingTimeout:
            pending.cancel()
            return pending.result(self.cancel_grace)

    def execute_many(
        self, requests: Iterable[QueryRequest]
    ) -> list[QueryResponse]:
        """Closed-loop convenience: submit all, gather all.

        Requests rejected by backpressure yield synthetic responses with
        the error message, so the output aligns 1:1 with the input.
        """
        pendings: list[object] = []
        for request in requests:
            try:
                pendings.append(self.submit(request))
            except (ServiceOverloaded, ServiceShutdown) as exc:
                pendings.append(
                    QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                    )
                )
        return [
            p.result() if isinstance(p, PendingQuery) else p for p in pendings
        ]

    # -- shutdown --------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission; drain or cancel queued work; join workers."""
        with self._state_lock:
            if not self._accepting and not any(
                w.is_alive() for w in self._workers
            ):
                return
            self._accepting = False
        if drain:
            self._queue.join()
        else:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    pending, request, _ = item
                    self.metrics.counter("requests_cancelled").inc()
                    self.audit.record(
                        user=request.user,
                        mode=request.mode,
                        signature=request.sql,
                        status=RequestStatus.CANCELLED.value,
                        error="gateway shut down before execution",
                        tag=request.tag,
                    )
                    pending._resolve(
                        QueryResponse(
                            request=request,
                            status=RequestStatus.CANCELLED,
                            error="gateway shut down before execution",
                        )
                    )
                self._queue.task_done()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join(timeout)
        if drain and self.db.durability is not None:
            # drained shutdown quiesces DML, so fold the WAL tail into a
            # checkpoint: restart replays nothing and starts from a
            # truncated log
            try:
                self.db.durability.checkpoint()
            except (DurabilityError, OSError):
                pass  # already closed elsewhere, or durability degraded

    def __enter__(self) -> "EnforcementGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # -- worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            pending, request, submitted_at = item
            self.metrics.gauge("queue_depth").set(self._queue.qsize())
            self.metrics.gauge("workers_busy").inc()
            try:
                response = self._process(request, submitted_at, pending.ctx)
            except BaseException as exc:  # never let a worker die
                self.metrics.counter("worker_faults").inc()
                response = QueryResponse(
                    request=request,
                    status=RequestStatus.ERROR,
                    error=f"internal gateway error: {exc}",
                )
                # _process accounts in its finish(); a fault that
                # escaped it has not been audited yet — audit exactly
                # once here so no request ever goes missing
                if not getattr(response, "_accounted", False):
                    response.timing.total_s = time.perf_counter() - submitted_at
                    self._account(response)
            finally:
                self.metrics.gauge("workers_busy").dec()
                self._queue.task_done()
            pending._resolve(response)

    # -- request processing ----------------------------------------------

    def _process(
        self, request: QueryRequest, submitted_at: float, ctx: QueryContext
    ) -> QueryResponse:
        timing = Timing()
        start = time.perf_counter()
        timing.queue_s = start - submitted_at
        worker = threading.current_thread().name

        def finish(response: QueryResponse) -> QueryResponse:
            timing.total_s = time.perf_counter() - submitted_at
            response.timing = timing
            response.worker = worker
            self._account(response)
            return response

        self._fire_chaos("gateway.dequeue")

        if ctx.cancelled:
            return finish(
                QueryResponse(
                    request=request,
                    status=RequestStatus.CANCELLED,
                    error="cancelled while queued",
                )
            )
        if ctx.expired:
            return finish(
                QueryResponse(
                    request=request,
                    status=RequestStatus.TIMEOUT,
                    error=(
                        f"deadline of {ctx.deadline_s:.3f}s exceeded "
                        "while queued"
                    ),
                )
            )

        # -- resolve / parse ---------------------------------------------
        # Recover the literal-stripped signature without parsing when
        # possible: from the request itself (an explicit PREPARE), or
        # from the text tier (transparent templating of a repeated query
        # string).  A cold text still parses exactly once — the parsed
        # query is signed and remembered for next time.
        parse_start = time.perf_counter()
        resolved: Optional[tuple] = None
        statement: Optional[ast.Statement] = None
        preparable = (
            self.prepared_statements and request.mode in PREPARABLE_MODES
        )
        if request.skeleton is not None:
            literals = tuple(request.literals or ())
            if preparable:
                resolved = (request.skeleton, literals, request.sql)
            else:
                # PREPARE'd under a non-preparable mode: rebind the
                # literals and run it as a plain query
                statement = bind_skeleton(request.skeleton, literals)
        elif preparable:
            resolved = self.db.prepared.lookup_text(request.sql)
        if resolved is None and statement is None:
            try:
                statement = parse_statement(request.sql)
            except ReproError as exc:
                timing.parse_s = time.perf_counter() - parse_start
                return finish(
                    QueryResponse(
                        request=request, status=RequestStatus.ERROR, error=str(exc)
                    )
                )
            if preparable and isinstance(statement, ast.QueryExpr):
                try:
                    resolved = resolve_signature(self.db, statement)
                    self.db.prepared.remember_text(request.sql, *resolved)
                except PreparedFallback:
                    resolved = None
        timing.parse_s = time.perf_counter() - parse_start

        if statement is not None and not isinstance(statement, ast.QueryExpr):
            return finish(self._process_statement(request, statement, timing))
        return finish(
            self._process_query_with_retries(
                request, statement, timing, ctx, resolved
            )
        )

    # -- query path: retries + abort mapping ------------------------------

    def _process_query_with_retries(
        self,
        request: QueryRequest,
        query: Optional[ast.QueryExpr],
        timing: Timing,
        ctx: QueryContext,
        resolved: Optional[tuple] = None,
    ) -> QueryResponse:
        attempts = 0
        while True:
            try:
                response = self._process_query(
                    request, query, timing, ctx, resolved
                )
                break
            except TransientFault as exc:
                self.metrics.counter("retries_total").inc()
                if attempts >= self.retry_attempts or ctx.cancelled or ctx.expired:
                    response = QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=(
                            f"transient fault persisted after {attempts} "
                            f"retr{'y' if attempts == 1 else 'ies'}: {exc}"
                        ),
                    )
                    break
                attempts += 1
                # jittered exponential backoff, clamped to the deadline
                delay = (
                    self.retry_backoff
                    * (2 ** (attempts - 1))
                    * (0.5 + self._rng.random())
                )
                remaining = ctx.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
                if delay > 0:
                    time.sleep(delay)
            except QueryTimeout as exc:
                response = QueryResponse(
                    request=request, status=RequestStatus.TIMEOUT, error=str(exc)
                )
                break
            except QueryCancelled as exc:
                self.metrics.counter("requests_cancelled_inflight").inc()
                response = QueryResponse(
                    request=request,
                    status=RequestStatus.CANCELLED,
                    error=str(exc),
                )
                break
            except ResourceBudgetExceeded as exc:
                self.metrics.counter("requests_budget_exceeded").inc()
                response = QueryResponse(
                    request=request, status=RequestStatus.ERROR, error=str(exc)
                )
                break
        if attempts:
            self.metrics.counter("requests_retried").inc()
        response.retries = attempts
        return response

    # -- statement (DML/DDL) path -----------------------------------------

    def _process_statement(
        self, request: QueryRequest, statement: ast.Statement, timing: Timing
    ) -> QueryResponse:
        """DML/DDL path: exclusive access, data/policy versions move.

        On a durable database the WAL append happens under the write
        lock (``sync=False``) but the fsync happens *after* releasing
        it: concurrent workers that appended while this one held the
        lock share one group-commit fsync instead of queueing for the
        lock around their own.

        The durable commit is governed by the WAL circuit breaker: when
        it is open, the write is refused *before* any state changes
        (typed :class:`ServiceDegraded` error); in half-open state one
        probe write is admitted to test recovery.
        """
        self.metrics.counter("dml_requests").inc()
        durable = self.db.durability is not None
        if durable and not self._breaker.allow():
            return QueryResponse(
                request=request,
                status=RequestStatus.DEGRADED,
                error=str(
                    ServiceDegraded(
                        "gateway is in degraded read-only mode (WAL commit "
                        "circuit breaker open); writes are refused until "
                        "the half-open probe succeeds — reads keep serving"
                    )
                ),
            )
        execute_start = time.perf_counter()
        failure: Optional[QueryResponse] = None
        outcome: object = None
        breaker_resolved = False
        try:
            self._rwlock.acquire_write()
            try:
                with self.pool.checkout(
                    request.user, request.mode, request.params
                ) as conn:
                    outcome = conn.execute(statement, sync=False)
            except (QueryRejectedError, UpdateRejectedError) as exc:
                failure = QueryResponse(
                    request=request, status=RequestStatus.REJECTED, error=str(exc)
                )
            except ReproError as exc:
                failure = QueryResponse(
                    request=request, status=RequestStatus.ERROR, error=str(exc)
                )
            finally:
                self._rwlock.release_write()
                timing.execute_s = time.perf_counter() - execute_start
            # durable group commit outside the write lock (also covers
            # rejected/errored statements that appended before failing)
            if durable:
                try:
                    self._fire_chaos("gateway.before_commit")
                    self.db.durability.commit()
                    self._breaker.record_success()
                    breaker_resolved = True
                except (DurabilityError, OSError, TransientFault) as exc:
                    self._breaker.record_failure()
                    breaker_resolved = True
                    self.metrics.counter("wal_commit_failures").inc()
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.DEGRADED,
                        error=(
                            "durable commit failed; the change is volatile "
                            "and the gateway is entering degraded read-only "
                            f"mode: {exc}"
                        ),
                    )
            else:
                breaker_resolved = True
        finally:
            # an exception that escapes everything above (injected
            # crash, internal bug) must not leave a half-open probe
            # dangling — resolve it as a failure
            if durable and not breaker_resolved:
                self._breaker.record_failure()
        if failure is not None:
            return failure
        return QueryResponse(
            request=request,
            status=RequestStatus.OK,
            rowcount=outcome if isinstance(outcome, int) else None,
        )

    # -- query path -------------------------------------------------------

    def _process_query(
        self,
        request: QueryRequest,
        query: Optional[ast.QueryExpr],
        timing: Timing,
        ctx: QueryContext,
        resolved: Optional[tuple] = None,
    ) -> QueryResponse:
        """Serve one query request under the read lock.

        ``query`` is the parsed AST (None on a hot prepared hit that
        skipped the parser); ``resolved`` is the literal-stripped
        ``(skeleton, literals, signature_text)`` triple when the request
        is eligible for the prepared-template path.  Anything the
        template path cannot serve identically falls back to the fresh
        parse → check → plan route.
        """
        self._rwlock.acquire_read()
        try:
            with self.pool.checkout(
                request.user, request.mode, request.params
            ) as conn:
                session = conn.session
                replica = self._route_replica(request)
                if replica is not None:
                    if query is None and resolved is not None:
                        skeleton, literals, _ = resolved
                        query = bind_skeleton(skeleton, literals)
                    try:
                        response = self._process_query_replica(
                            request, query, replica, session, timing, ctx
                        )
                    except ReplicaUnavailable:
                        # the replica was quarantined (or fell behind the
                        # epoch/lag gate) between routing and execution;
                        # fall through to the primary path below — a
                        # correct answer, just not replica-served
                        self.metrics.counter("replica_fallbacks").inc()
                    else:
                        if resolved is not None:
                            response.signature = resolved[2]
                        return response
                if resolved is not None:
                    try:
                        response = self._process_prepared(
                            request, resolved, session, timing, ctx
                        )
                        response.signature = resolved[2]
                        self.metrics.counter("prepared_requests").inc()
                        return response
                    except PreparedFallback:
                        self.metrics.counter("prepared_fallbacks").inc()
                        if query is None:
                            skeleton, literals, _ = resolved
                            query = bind_skeleton(skeleton, literals)
                response = self._process_query_fresh(
                    request, query, session, timing, ctx
                )
                if resolved is not None and response.signature is None:
                    response.signature = resolved[2]
                return response
        finally:
            self._rwlock.release_read()

    def _route_replica(self, request: QueryRequest):
        """A caught-up read replica for this request, or None for primary.

        Only cluster databases (:class:`repro.cluster.ClusterCoordinator`)
        expose ``route_read``; everywhere else this is a no-op.  The
        routing gate — replica policy epoch caught up with the
        coordinator's, data lag within bounds — lives in the database,
        not here.
        """
        route = getattr(self.db, "route_read", None)
        if route is None:
            return None
        from repro.cluster.coordinator import REPLICA_READ_MODES

        if request.mode not in REPLICA_READ_MODES:
            return None
        return route()

    def _process_query_replica(
        self,
        request: QueryRequest,
        query: ast.QueryExpr,
        replica,
        session,
        timing: Timing,
        ctx: QueryContext,
    ) -> QueryResponse:
        """Serve one read on a replica's own Database.

        The replica enforces policy itself (its grants / Truman views /
        VPD predicates are rebuilt from shipped WAL records), so the
        outcome — rows, rejection message, audit decision — is the same
        as the primary's; only the serving node differs.  Applies and
        reads are mutually exclusive via the replica's lock, so a read
        can never observe a half-applied shipped batch.
        """
        decision: Optional[ValidityDecision] = None
        check_start = time.perf_counter()
        with replica.read_lock():
            # the queue hop between routing and this lock is a window the
            # failure detector may have used to quarantine the replica;
            # re-check under the lock (raises ReplicaUnavailable → the
            # caller falls back to the primary, never a stale answer).
            # The database handle is also read under the lock: catch-up
            # bootstrap swaps it wholesale.
            verify = getattr(self.db, "verify_replica_serving", None)
            if verify is not None:
                verify(replica)
            rdb = replica.database
            self.metrics.counter("replica_reads").inc()
            if request.mode == "non-truman":
                try:
                    decision = rdb.check_validity(query, session, ctx=ctx)
                except QueryAborted:
                    timing.check_s = time.perf_counter() - check_start
                    raise
                except ReproError as exc:
                    timing.check_s = time.perf_counter() - check_start
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                        replica=replica.name,
                    )
                timing.check_s = time.perf_counter() - check_start
                if not decision.valid:
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.REJECTED,
                        decision=decision,
                        error=(
                            "query rejected by Non-Truman model: "
                            f"{decision.reason}"
                        ),
                        replica=replica.name,
                    )
                to_execute, execute_mode = query, "open"
            elif request.mode == "truman":
                from repro.truman.rewrite import truman_rewrite

                try:
                    to_execute = truman_rewrite(rdb, query, session)
                except ReproError as exc:
                    timing.check_s = time.perf_counter() - check_start
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                        replica=replica.name,
                    )
                timing.check_s = time.perf_counter() - check_start
                execute_mode = "open"
            else:
                to_execute, execute_mode = query, request.mode
                timing.check_s = time.perf_counter() - check_start

            ctx.check("phase boundary before execution")
            self._fire_chaos("gateway.before_execute")
            execute_start = time.perf_counter()
            try:
                result = rdb.execute_query(
                    to_execute,
                    session=session,
                    mode=execute_mode,
                    engine=request.engine,
                    ctx=ctx,
                )
            except QueryAborted:
                timing.execute_s = time.perf_counter() - execute_start
                raise
            except ReproError as exc:
                timing.execute_s = time.perf_counter() - execute_start
                return QueryResponse(
                    request=request,
                    status=RequestStatus.ERROR,
                    decision=decision,
                    error=str(exc),
                    replica=replica.name,
                )
            timing.execute_s = time.perf_counter() - execute_start
        return QueryResponse(
            request=request,
            status=RequestStatus.OK,
            result=result,
            decision=decision,
            replica=replica.name,
        )

    def _process_prepared(
        self,
        request: QueryRequest,
        resolved: tuple,
        session,
        timing: Timing,
        ctx: QueryContext,
    ) -> QueryResponse:
        """The §5.6 template path: signature → template → bind → run.

        Raises :class:`PreparedFallback` (before any user-visible
        effect) when the query cannot be templated; the caller re-runs
        the fresh path, so behavior — including error messages — is
        preserved bit-for-bit.
        """
        skeleton, literals, signature_text = resolved
        check_start = time.perf_counter()
        template, hit = get_or_build_template(
            self.db, skeleton, literals, session, request.mode, signature_text
        )
        self._fire_chaos("gateway.before_check")
        if hit:
            self._fire_chaos("prepared.hit")
        decision: Optional[ValidityDecision] = None
        cache_hit = False
        if request.mode == "non-truman":
            # same shared cache (and the same signature keys) as the
            # fresh path, so prepared and plain requests for one query
            # share a single decision entry
            data_version, _ = self.cache.current_versions()
            cached = self.cache.lookup_signed(
                session.user,
                skeleton,
                literals,
                session.user_id,
                data_version=data_version,
            )
            if cached is not None:
                validity, reason = cached
                decision = ValidityDecision(
                    validity=validity, reason=reason, from_cache=True
                )
                cache_hit = True
            else:
                bound = bind_skeleton(skeleton, literals)
                try:
                    decision = self.db.check_validity(bound, session, ctx=ctx)
                except QueryAborted:
                    timing.check_s = time.perf_counter() - check_start
                    raise  # unwound with nothing cached
                except ReproError as exc:
                    timing.check_s = time.perf_counter() - check_start
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                        prepared=True,
                    )
                self.cache.store_signed(
                    session.user,
                    skeleton,
                    literals,
                    session.user_id,
                    decision.validity,
                    decision.reason,
                    data_version=data_version,
                )
            timing.check_s = time.perf_counter() - check_start
            if not decision.valid:
                return QueryResponse(
                    request=request,
                    status=RequestStatus.REJECTED,
                    decision=decision,
                    cache_hit=cache_hit,
                    prepared=True,
                    error=(
                        "query rejected by Non-Truman model: "
                        f"{decision.reason}"
                    ),
                )
        else:
            timing.check_s = time.perf_counter() - check_start

        # phase boundary: don't start executing an answer nobody is
        # waiting for
        ctx.check("phase boundary before execution")

        self._fire_chaos("gateway.before_execute")
        self._fire_chaos("prepared.bind")
        execute_start = time.perf_counter()
        plan = template.binder.bind(literals)
        try:
            result = self.db.run_plan(
                plan,
                session=session,
                engine=request.engine,
                ctx=ctx,
                optimize=False,
                compile_cache=template.compile_cache,
            )
        except QueryAborted:
            timing.execute_s = time.perf_counter() - execute_start
            raise
        except ReproError as exc:
            timing.execute_s = time.perf_counter() - execute_start
            return QueryResponse(
                request=request,
                status=RequestStatus.ERROR,
                decision=decision,
                cache_hit=cache_hit,
                prepared=True,
                error=str(exc),
            )
        timing.execute_s = time.perf_counter() - execute_start
        return QueryResponse(
            request=request,
            status=RequestStatus.OK,
            result=result,
            decision=decision,
            cache_hit=cache_hit,
            prepared=True,
        )

    def _process_query_fresh(
        self,
        request: QueryRequest,
        query: ast.QueryExpr,
        session,
        timing: Timing,
        ctx: QueryContext,
    ) -> QueryResponse:
        decision: Optional[ValidityDecision] = None
        cache_hit = False

        self._fire_chaos("gateway.before_check")
        check_start = time.perf_counter()
        if request.mode == "non-truman":
            # the version observed under the read lock is the
            # version the decision is derived from
            data_version, _ = self.cache.current_versions()
            cached = self.cache.lookup(
                session.user, query, session.user_id
            )
            if cached is not None:
                validity, reason = cached
                decision = ValidityDecision(
                    validity=validity, reason=reason, from_cache=True
                )
                cache_hit = True
            else:
                try:
                    decision = self.db.check_validity(
                        query, session, ctx=ctx
                    )
                except QueryAborted:
                    timing.check_s = time.perf_counter() - check_start
                    raise  # unwound with nothing cached
                except ReproError as exc:
                    timing.check_s = time.perf_counter() - check_start
                    return QueryResponse(
                        request=request,
                        status=RequestStatus.ERROR,
                        error=str(exc),
                    )
                self.cache.store(
                    session.user,
                    query,
                    session.user_id,
                    decision.validity,
                    decision.reason,
                    data_version=data_version,
                )
            timing.check_s = time.perf_counter() - check_start
            if not decision.valid:
                return QueryResponse(
                    request=request,
                    status=RequestStatus.REJECTED,
                    decision=decision,
                    cache_hit=cache_hit,
                    error=(
                        "query rejected by Non-Truman model: "
                        f"{decision.reason}"
                    ),
                )
            to_execute, execute_mode = query, "open"
        elif request.mode == "truman":
            from repro.truman.rewrite import truman_rewrite

            try:
                to_execute = truman_rewrite(self.db, query, session)
            except ReproError as exc:
                timing.check_s = time.perf_counter() - check_start
                return QueryResponse(
                    request=request,
                    status=RequestStatus.ERROR,
                    error=str(exc),
                )
            timing.check_s = time.perf_counter() - check_start
            execute_mode = "open"
        else:  # open / motro execute directly under that mode
            to_execute, execute_mode = query, request.mode
            timing.check_s = time.perf_counter() - check_start

        # phase boundary: don't start executing an answer
        # nobody is waiting for
        ctx.check("phase boundary before execution")

        self._fire_chaos("gateway.before_execute")
        execute_start = time.perf_counter()
        try:
            result = self.db.execute_query(
                to_execute,
                session=session,
                mode=execute_mode,
                engine=request.engine,
                ctx=ctx,
            )
        except QueryAborted:
            timing.execute_s = time.perf_counter() - execute_start
            raise
        except ReproError as exc:
            timing.execute_s = time.perf_counter() - execute_start
            return QueryResponse(
                request=request,
                status=RequestStatus.ERROR,
                decision=decision,
                cache_hit=cache_hit,
                error=str(exc),
            )
        timing.execute_s = time.perf_counter() - execute_start
        return QueryResponse(
            request=request,
            status=RequestStatus.OK,
            result=result,
            decision=decision,
            cache_hit=cache_hit,
        )

    # -- accounting ------------------------------------------------------

    _STATUS_COUNTERS = {
        RequestStatus.OK: "requests_ok",
        RequestStatus.REJECTED: "requests_rejected",
        RequestStatus.TIMEOUT: "requests_timeout",
        RequestStatus.ERROR: "requests_error",
        RequestStatus.CANCELLED: "requests_cancelled",
        RequestStatus.DEGRADED: "requests_degraded",
    }

    def _account(self, response: QueryResponse) -> None:
        request = response.request
        response._accounted = True
        self.metrics.counter("requests_completed").inc()
        self.metrics.counter(self._STATUS_COUNTERS[response.status]).inc()
        if response.cache_hit:
            self.metrics.counter("decision_cache_hits").inc()
        timing = response.timing
        self.metrics.histogram("latency_ms").observe(timing.total_s * 1000)
        self.metrics.histogram("queue_ms").observe(timing.queue_s * 1000)
        if timing.check_s:
            self.metrics.histogram("check_ms").observe(timing.check_s * 1000)
        if timing.execute_s:
            self.metrics.histogram("execute_ms").observe(timing.execute_s * 1000)

        decision = response.decision
        self.audit.record(
            user=request.user,
            mode=request.mode,
            # the prepared path stamps the signature it already holds;
            # re-deriving it here would re-parse on the zero-parse path
            signature=response.signature
            if response.signature is not None
            else self._signature(request.sql),
            status=response.status.value,
            decision="" if decision is None else decision.validity.value,
            rules=()
            if decision is None
            else tuple(step.rule for step in decision.trace),
            cache_hit=response.cache_hit,
            latency_ms=timing.total_s * 1000,
            error=response.error,
            tag=request.tag,
        )

    @staticmethod
    def _signature(sql: str) -> str:
        """Literal-stripped rendering of the request for the audit log."""
        try:
            statement = parse_statement(sql)
            if isinstance(statement, ast.QueryExpr):
                skeleton, _ = query_signature(statement)
                return render(skeleton)
        except ReproError:
            pass
        return sql

    # -- observability ---------------------------------------------------

    @property
    def breaker(self) -> CircuitBreaker:
        """The WAL-commit circuit breaker (for tests and operators)."""
        return self._breaker

    @property
    def degraded(self) -> bool:
        """True while the gateway refuses writes (breaker not closed)."""
        return self._breaker.state != "closed"

    def stats(self) -> dict[str, object]:
        """One merged snapshot: gateway, metrics, cache, pool, breaker."""
        merged: dict[str, object] = {
            "workers": len(self._workers),
            "queue_capacity": self.queue_size,
            "accepting": self.accepting,
            "default_deadline_s": self.default_deadline,
        }
        merged.update(self.metrics.snapshot())
        merged.update(self.cache.stats())
        merged.update(self.db.prepared.stats())
        merged.update(self.pool.stats())
        merged.update(self._breaker.stats())
        # policy / data version counters: what the enforcement caches
        # stamp their entries with, and what cluster epoch gating keys on
        merged["policy_grants_version"] = self.db.grants.version
        merged["policy_views_version"] = self.db.catalog.views_version
        merged["policy_vpd_version"] = self.db.vpd_policies.version
        merged["data_version"] = self.db.validity_cache.data_version
        epoch = getattr(self.db, "policy_epoch", None)
        if epoch is not None:
            merged["policy_epoch"] = epoch
        for name, table in sorted(self.db._tables.items()):
            version = getattr(table, "data_version", None)
            if version is not None:
                merged[f"data_version_{name}"] = version
        if self.db.durability is not None:
            merged.update(self.db.durability.wal_stats())
        return merged

    def render_stats(self) -> str:
        """Aligned text report (the ``\\stats`` meta-command body)."""
        snap = self.stats()
        width = max(len(name) for name in snap)
        lines = [f"-- {self.name} --"]
        for name, value in snap.items():
            if isinstance(value, float):
                lines.append(f"  {name:<{width}}  {value:.4f}")
            else:
                lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)
