"""Chaos injection for the serving path.

Builds on the durability layer's crash-point machinery
(:mod:`repro.durability.faults`): a :class:`ChaosInjector` *is* a
:class:`~repro.durability.faults.FaultInjector` (so it can be handed to
``Database.open(injector=...)`` and fire the WAL crash points), and
additionally supports **recoverable**, probabilistic faults at named
points the gateway fires while serving:

================================  =====================================
``gateway.dequeue``               a worker picked the request up
``gateway.before_check``          before the validity check / rewrite
``gateway.before_execute``        before query execution
``gateway.before_commit``         before the durable group commit
``prepared.hit``                  a prepared template was served from
                                  cache (after staleness validation)
``prepared.bind``                 before literals are bound into a
                                  prepared template's plan
``wal.before_fsync`` (via WAL)    inside the group-commit fsync path
``net.accept``                    a TCP connection was accepted
``net.after_hello``               a session finished authenticating
``net.before_send``               before a frame is written to a client
================================  =====================================

Fault kinds:

* ``"delay"`` — sleep ``delay_s`` (slow operator / slow disk);
* ``"transient"`` — raise :class:`~repro.errors.TransientFault`
  (flaky dependency; the gateway retries with jittered backoff);
* ``"io-error"`` — raise ``OSError`` (disk failure; on the commit path
  this feeds the gateway's WAL circuit breaker);
* ``"worker-crash"`` — raise ``RuntimeError`` (a bug in worker code;
  the worker loop must answer a typed error and survive);
* ``"disconnect"`` — raise :class:`~repro.errors.ConnectionDropped`
  (the peer vanished; the server must cancel that session's in-flight
  work and keep serving every other connection).

Each injected fault point carries a probability, an optional maximum
number of firings, and a seeded RNG, so chaos sweeps are reproducible.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.durability.faults import FaultInjector
from repro.errors import TransientFault

#: serving-path fault points the gateway fires (the WAL adds its own)
GATEWAY_FAULT_POINTS = (
    "gateway.dequeue",
    "gateway.before_check",
    "gateway.before_execute",
    "gateway.before_commit",
    "prepared.hit",
    "prepared.bind",
)

#: fault points the network front end (repro.net.server) fires
NET_FAULT_POINTS = (
    "net.accept",
    "net.after_hello",
    "net.before_send",
)

#: fault points the cluster's replication lifecycle fires
#: (``repro.cluster``): lost failure-detector probes, truncated
#: ship streams, faults at the start of a catch-up attempt, corrupted
#: anti-entropy digests (reads as a divergence → automatic
#: re-bootstrap), and a crash point inside snapshot bootstrap.  Hard
#: ``arm()`` crashes at ``cluster.catchup`` / ``cluster.bootstrap``
#: simulate the process dying mid-catch-up for the restart matrix.
CLUSTER_FAULT_POINTS = (
    "cluster.heartbeat",
    "cluster.ship_stream",
    "cluster.catchup",
    "cluster.bootstrap",
    "cluster.digest",
)

FAULT_KINDS = ("delay", "transient", "io-error", "worker-crash", "disconnect")


@dataclass
class FaultSpec:
    """One armed probabilistic fault."""

    kind: str
    probability: float = 1.0
    delay_s: float = 0.0
    #: remaining firings (None = unlimited)
    times: Optional[int] = None


class ChaosInjector(FaultInjector):
    """Probabilistic, recoverable fault injection; thread-safe.

    The inherited :class:`FaultInjector` countdown machinery still
    works for hard crash points (``arm``); :meth:`inject` arms the
    softer, probabilistic faults used by the serving-layer chaos
    harness.
    """

    def __init__(self, seed: int = 0):
        super().__init__()
        self._specs: dict[str, FaultSpec] = {}
        self._rng = random.Random(seed)
        self._chaos_lock = threading.Lock()
        #: (point, kind) of every fault actually injected, in order
        self.injected: list[tuple[str, str]] = []

    def inject(
        self,
        point: str,
        kind: str,
        probability: float = 1.0,
        delay_s: float = 0.0,
        times: Optional[int] = None,
    ) -> None:
        """Arm a probabilistic fault at ``point``."""
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})"
            )
        with self._chaos_lock:
            self._specs[point] = FaultSpec(
                kind=kind, probability=probability, delay_s=delay_s, times=times
            )

    def clear(self, point: Optional[str] = None) -> None:
        """Disarm one point (or all of them)."""
        with self._chaos_lock:
            if point is None:
                self._specs.clear()
            else:
                self._specs.pop(point, None)

    # -- firing -----------------------------------------------------------

    def fire(self, point: str) -> None:
        # hard crash points (InjectedCrash) first, exactly as before
        super().fire(point)
        with self._chaos_lock:
            spec = self._specs.get(point)
            if spec is None:
                return
            if spec.times is not None and spec.times <= 0:
                return
            if self._rng.random() >= spec.probability:
                return
            if spec.times is not None:
                spec.times -= 1
            kind, delay_s = spec.kind, spec.delay_s
            self.injected.append((point, kind))
        if kind == "delay":
            time.sleep(delay_s)
            return
        if delay_s:
            time.sleep(delay_s)
        if kind == "transient":
            raise TransientFault(f"chaos: transient fault injected at {point!r}")
        if kind == "io-error":
            raise OSError(f"chaos: injected IO error at {point!r}")
        if kind == "worker-crash":
            raise RuntimeError(f"chaos: injected worker crash at {point!r}")
        if kind == "disconnect":
            from repro.errors import ConnectionDropped

            raise ConnectionDropped(
                f"chaos: injected connection drop at {point!r}"
            )

    def stats(self) -> dict[str, int]:
        """Count of injected faults per ``point:kind``."""
        with self._chaos_lock:
            out: dict[str, int] = {}
            for point, kind in self.injected:
                key = f"{point}:{kind}"
                out[key] = out.get(key, 0) + 1
            return out
