"""Request/response envelope of the enforcement gateway.

A :class:`QueryRequest` names *who* wants to run *what* under *which*
access-control model, with an optional per-request deadline.  The
gateway answers with a :class:`QueryResponse` carrying the outcome
status, the result rows (for accepted queries), the validity decision
with its rule trace (Non-Truman mode), and a per-phase timing
breakdown (queue / parse / check / execute).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.db import Result
from repro.nontruman.decision import ValidityDecision


class RequestStatus(enum.Enum):
    """Terminal state of one gateway request."""

    #: the query was admitted, (rewritten or validated) and executed
    OK = "ok"
    #: the Non-Truman validity check rejected the query
    REJECTED = "rejected"
    #: the request missed its deadline (queued or between phases)
    TIMEOUT = "timeout"
    #: a library error (parse, bind, execution, integrity, ...) occurred
    ERROR = "error"
    #: the request was cancelled — by shutdown before execution, or by
    #: ``PendingQuery.cancel()`` interrupting in-flight work
    CANCELLED = "cancelled"
    #: a write was refused (or its durable commit failed) because the
    #: WAL circuit breaker is open: the gateway is read-only until the
    #: half-open probe recovers
    DEGRADED = "degraded"


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work submitted to the gateway."""

    user: Optional[str]
    sql: str
    #: extra session-context parameters ($time, $location, app-defined)
    params: Mapping[str, object] = field(default_factory=dict)
    #: access-control model: open | truman | non-truman | motro
    mode: str = "non-truman"
    #: seconds from submission after which the request times out
    deadline: Optional[float] = None
    #: opaque client tag, echoed in the response and the audit log
    tag: Optional[str] = None
    #: execution engine ("row" | "vectorized"); None = database default
    engine: Optional[str] = None
    #: max rows this request may scan/materialize (None = gateway default)
    row_budget: Optional[int] = None
    #: approximate max bytes of materialized state (None = gateway default)
    memory_budget: Optional[int] = None
    #: pre-signed prepared statement: the literal-stripped skeleton AST
    #: produced by ``PREPARE`` (the net server's ``prepare`` frame).
    #: When set, ``sql`` carries the rendered signature text (for the
    #: audit log) and ``literals`` the bound parameter values — the
    #: gateway skips parsing entirely.
    skeleton: Optional[object] = None
    #: literal values to bind into ``skeleton`` (position-matched to
    #: the ``$_litN`` placeholders)
    literals: Optional[tuple] = None


@dataclass
class Timing:
    """Per-phase wall-clock breakdown of one request (seconds)."""

    queue_s: float = 0.0
    parse_s: float = 0.0
    check_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "queue_s": self.queue_s,
            "parse_s": self.parse_s,
            "check_s": self.check_s,
            "execute_s": self.execute_s,
            "total_s": self.total_s,
        }


@dataclass
class QueryResponse:
    """Outcome of one gateway request."""

    request: QueryRequest
    status: RequestStatus
    #: result of an accepted query (None for DML/DDL and non-OK statuses)
    result: Optional[Result] = None
    #: affected-row count when the request was a DML statement
    rowcount: Optional[int] = None
    #: validity decision (Non-Truman mode), including the rule trace
    decision: Optional[ValidityDecision] = None
    error: Optional[str] = None
    timing: Timing = field(default_factory=Timing)
    #: True when the decision came from the gateway's shared cache
    cache_hit: bool = False
    worker: Optional[str] = None
    #: transient-fault retries performed before this outcome
    retries: int = 0
    #: True when the query ran through the prepared-template path
    #: (template hit or build) instead of the parse → check → plan path
    prepared: bool = False
    #: literal-stripped audit signature, when the serving path already
    #: knows it (prepared requests) — saves the audit re-parse
    signature: Optional[str] = None
    #: name of the read replica that served this request (cluster
    #: deployments only; None = primary)
    replica: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    @property
    def rows(self) -> list[tuple]:
        return [] if self.result is None else self.result.rows

    @property
    def columns(self) -> tuple[str, ...]:
        return () if self.result is None else self.result.columns

    def describe(self) -> str:
        parts = [f"status: {self.status.value}"]
        if self.error:
            parts.append(f"error: {self.error}")
        if self.decision is not None:
            parts.append(f"validity: {self.decision.validity.value}")
        if self.result is not None:
            parts.append(f"rows: {len(self.result.rows)}")
        if self.rowcount is not None:
            parts.append(f"rowcount: {self.rowcount}")
        parts.append(f"total: {self.timing.total_s * 1000:.2f} ms")
        return ", ".join(parts)
