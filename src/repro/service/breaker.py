"""Circuit breaker for the gateway's WAL commit path.

When durable commits start failing (disk error, injected chaos), the
gateway must not fail the process or let every write queue up behind a
broken fsync.  The breaker implements the classic three-state machine:

* **closed** — commits flow; ``failure_threshold`` consecutive failures
  trip the breaker;
* **open** — writes are rejected *up front* with a typed
  :class:`~repro.errors.ServiceDegraded` error (no statement executes,
  so no partial in-memory state), while reads — which never touch the
  WAL — keep serving.  After ``cooldown`` seconds the breaker moves to
  half-open;
* **half-open** — exactly one probe write is allowed through; success
  closes the breaker, failure re-opens it and restarts the cooldown.

Thread-safe; transitions are reported through ``on_transition`` so the
gateway can mirror the state into its metrics registry.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        on_transition: Optional[Callable[[str, str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: lifetime counters (read by gateway stats)
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, new_state: str) -> None:
        """Caller holds the lock."""
        old, self._state = self._state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state)

    def allow(self) -> bool:
        """May a governed call proceed right now?

        In half-open state only a single in-flight probe is admitted;
        the caller must resolve it via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._transition(HALF_OPEN)
                self._probe_inflight = True
                return True
            # half-open: one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self.recoveries += 1
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            if self._state == HALF_OPEN:
                self._opened_at = self._clock()
                self.trips += 1
                self._transition(OPEN)
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self.trips += 1
                self._transition(OPEN)

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "breaker_state": self._state,
                "breaker_consecutive_failures": self._failures,
                "breaker_trips": self.trips,
                "breaker_recoveries": self.recoveries,
            }
