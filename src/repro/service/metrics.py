"""Thread-safe metrics for the enforcement gateway.

A tiny in-process metrics registry in the Prometheus style: named
:class:`Counter`, :class:`Gauge`, and :class:`Histogram` instruments,
created on first use and shared by name.  The registry backs the
``\\stats`` CLI meta-command and the E13 service benchmark, which
report queue depth, accept/reject/timeout counts, cache hit rate, and
latency percentiles.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Optional


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, busy workers)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class State:
    """A named textual state (e.g. ``breaker_state`` = "closed" /
    "open" / "half-open") with a transition counter."""

    def __init__(self, name: str, initial: str = ""):
        self.name = name
        self._value = initial
        self._transitions = 0
        self._lock = threading.Lock()

    def set(self, value: str) -> None:
        with self._lock:
            if value != self._value:
                self._transitions += 1
            self._value = value

    @property
    def value(self) -> str:
        with self._lock:
            return self._value

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions


class Histogram:
    """Sampled distribution with percentile queries.

    Keeps a bounded reservoir of the most recent ``maxlen`` samples —
    enough for the latency percentiles the gateway reports without
    unbounded growth under sustained traffic.
    """

    def __init__(self, name: str, maxlen: int = 4096):
        self.name = name
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 < p <= 100) of the sample reservoir."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._states: dict[str, State] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, maxlen: int = 4096) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, maxlen=maxlen)
            return self._histograms[name]

    def state(self, name: str, initial: str = "") -> State:
        with self._lock:
            if name not in self._states:
                self._states[name] = State(name, initial)
            return self._states[name]

    def snapshot(self) -> dict[str, object]:
        """All instrument values as one flat dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            states = dict(self._states)
        out: dict[str, object] = {}
        for name, counter in sorted(counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(gauges.items()):
            out[name] = gauge.value
        for name, state in sorted(states.items()):
            out[name] = state.value
            out[f"{name}_transitions"] = state.transitions
        for name, histogram in sorted(histograms.items()):
            out[f"{name}_count"] = histogram.count
            out[f"{name}_mean"] = histogram.mean
            out[f"{name}_p50"] = histogram.percentile(50)
            out[f"{name}_p95"] = histogram.percentile(95)
            out[f"{name}_p99"] = histogram.percentile(99)
        return out

    def render(self, title: Optional[str] = None) -> str:
        """Aligned text rendering (for the ``\\stats`` meta-command)."""
        snap = self.snapshot()
        lines = [title] if title else []
        if not snap:
            lines.append("  (no metrics recorded)")
            return "\n".join(lines)
        width = max(len(name) for name in snap)
        for name, value in snap.items():
            if isinstance(value, float):
                lines.append(f"  {name:<{width}}  {value:.4f}")
            else:
                lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)
