"""Per-user connection pooling for the enforcement gateway.

Each gateway worker checks a :class:`~repro.db.Connection` out of the
pool, keyed on ``(user, mode)``: sessions are immutable
(:class:`~repro.authviews.session.SessionContext` is frozen), so a
connection for the same principal and model is freely reusable across
requests.  Requests that carry extra session parameters ($time,
$location, app-defined) get a dedicated connection instead — their
context is request-specific and must not leak into the pool.
"""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Connection, Database


class ConnectionPool:
    """Bounded idle pool of session-bound connections."""

    def __init__(self, db: "Database", max_idle_per_key: int = 8):
        self.db = db
        self.max_idle_per_key = max_idle_per_key
        self._idle: dict[tuple, list["Connection"]] = {}
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0

    @staticmethod
    def _key(user: Optional[str], mode: str) -> tuple:
        return (None if user is None else str(user), mode)

    def acquire(
        self,
        user: Optional[str],
        mode: str,
        params: Optional[Mapping[str, object]] = None,
    ) -> "Connection":
        """Check out a connection for ``(user, mode)``.

        With ``params`` the connection is freshly created and will not
        be pooled on release (parameterized contexts are one-shot).
        """
        if params:
            with self._lock:
                self.created += 1
            return self.db.connect(user_id=user, mode=mode, **dict(params))
        key = self._key(user, mode)
        with self._lock:
            bucket = self._idle.get(key)
            if bucket:
                self.reused += 1
                return bucket.pop()
            self.created += 1
        return self.db.connect(user_id=user, mode=mode)

    def release(self, conn: "Connection") -> None:
        """Return a connection to the idle pool (drops on overflow)."""
        if conn.session.extra or conn.session.time or conn.session.location:
            return  # one-shot parameterized session; do not pool
        key = self._key(conn.session.user, conn.mode)
        with self._lock:
            bucket = self._idle.setdefault(key, [])
            if len(bucket) < self.max_idle_per_key:
                bucket.append(conn)

    @contextlib.contextmanager
    def checkout(
        self,
        user: Optional[str],
        mode: str,
        params: Optional[Mapping[str, object]] = None,
    ) -> Iterator["Connection"]:
        conn = self.acquire(user, mode, params)
        try:
            yield conn
        finally:
            self.release(conn)

    def stats(self) -> dict[str, object]:
        with self._lock:
            idle = sum(len(b) for b in self._idle.values())
            keys = len(self._idle)
            return {
                "pool_connections_created": self.created,
                "pool_connections_reused": self.reused,
                "pool_idle_connections": idle,
                "pool_session_keys": keys,
            }
