"""Structured audit log for the enforcement gateway.

Every request the gateway finishes — accepted, rejected, timed out, or
errored — appends one :class:`AuditRecord`: who asked, the
literal-stripped query signature (so per-user constants don't explode
the log's cardinality), the validity decision with the inference rules
that fired, and the end-to-end latency.  This makes the "what queries
were asked against which views" disclosure analysis of the
related work (Chirkova & Yu) observable in practice.

The log is a bounded ring buffer; an optional ``sink`` callable
receives each record as it is appended (e.g. to tee into a file).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.service.clock import SYSTEM_CLOCK, Clock


@dataclass(frozen=True)
class AuditRecord:
    """One finished request."""

    seq: int
    timestamp: float  # clock.now() at completion
    user: Optional[str]
    mode: str
    #: literal-stripped SQL signature (falls back to raw SQL)
    signature: str
    status: str
    #: validity outcome ("unconditional" / "conditional" / "invalid"),
    #: empty for modes without a validity check
    decision: str
    #: inference rules that fired (e.g. ("U1", "U3a")), in trace order
    rules: tuple[str, ...]
    cache_hit: bool
    latency_ms: float
    error: Optional[str] = None
    tag: Optional[str] = None

    def as_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "user": self.user,
            "mode": self.mode,
            "signature": self.signature,
            "status": self.status,
            "decision": self.decision,
            "rules": list(self.rules),
            "cache_hit": self.cache_hit,
            "latency_ms": self.latency_ms,
            "error": self.error,
            "tag": self.tag,
        }


class AuditLog:
    """Bounded, thread-safe ring of audit records."""

    def __init__(
        self,
        capacity: int = 2048,
        sink: Optional[Callable[[AuditRecord], None]] = None,
        clock: Optional[Clock] = None,
    ):
        self._records: deque[AuditRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._sink = sink
        self._clock = clock or SYSTEM_CLOCK

    def record(
        self,
        user: Optional[str],
        mode: str,
        signature: str,
        status: str,
        decision: str = "",
        rules: tuple[str, ...] = (),
        cache_hit: bool = False,
        latency_ms: float = 0.0,
        error: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> AuditRecord:
        with self._lock:
            self._seq += 1
            entry = AuditRecord(
                seq=self._seq,
                timestamp=self._clock.now(),
                user=user,
                mode=mode,
                signature=signature,
                status=status,
                decision=decision,
                rules=rules,
                cache_hit=cache_hit,
                latency_ms=latency_ms,
                error=error,
                tag=tag,
            )
            self._records.append(entry)
        if self._sink is not None:
            self._sink(entry)
        return entry

    def tail(self, n: int = 20) -> list[AuditRecord]:
        with self._lock:
            return list(self._records)[-n:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def total_recorded(self) -> int:
        """Records ever appended (including ones the ring dropped)."""
        with self._lock:
            return self._seq
