"""Interactive shell for exploring fine-grained access control.

Run with ``python -m repro`` (optionally ``--workload university`` or
``--workload bank``, and ``--script file.sql`` to preload a schema).
``python -m repro serve`` starts the network front end instead
(:mod:`repro.net`), and ``python -m repro --connect HOST:PORT`` runs
the shell as a remote client of such a server.

Statements ending in ``;`` are executed as SQL under the current
session and access-control mode.  SELECT statements are served through
the concurrent enforcement gateway (:mod:`repro.service`), so the shell
doubles as a single-user client of the same code path the service
exposes — ``\\stats`` shows the gateway's live metrics.  Meta-commands:

=================  ====================================================
``\\user ID``       reconnect as a different user
``\\mode M``        open | truman | non-truman | motro
``\\views``         list authorization views available to this session
``\\check SQL``     run only the validity check; print the decision,
                   rule trace, and witness plan
``\\explain SQL``   show the logical plan for a query; in non-truman
                   mode, also the decision trace — and, when a ReBAC
                   policy is attached, the relationship-tuple chains
                   that justify (or fail to justify) the access
``\\time T``        set the session's $time parameter (``\\time off``
                   clears it); compiled ReBAC views compare grant
                   expiry against it
``\\grant V U``     grant view V to user U (or PUBLIC)
``\\tables``        list base tables
``\\stats``         gateway metrics: requests, cache, pool, latency
``\\replicas``      cluster replica health: state, lag, policy epoch,
                   heartbeat age, divergence counters (sharded
                   coordinators only)
``\\audit [N]``     last N audit-log records (default 10)
``\\save DIR``      attach durable storage: checkpoint this database
                   into DIR and WAL-log every later change
``\\open DIR``      switch to the durable database in DIR (recovers
                   from its latest snapshot + WAL tail)
``\\checkpoint``    snapshot all state and truncate the WAL
``\\wal-stats``     durability counters: records, fsyncs, LSNs
``\\reset``         discard the partially-entered statement buffer
``\\help``          this text
``\\quit``          exit
=================  ====================================================

``--data-dir DIR`` on the command line opens (or, combined with
``--workload``/``--script``, initializes) a durable database at DIR.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, TextIO

from repro.db import Connection, Database, MODES
from repro.errors import ReproError
from repro.sql import parse_statement, ast


BANNER = """repro — fine-grained access control by query rewriting (SIGMOD 2004)
Type SQL terminated by ';', or \\help for meta-commands."""


class Shell:
    """A line-oriented REPL over one Database."""

    def __init__(self, db: Database, out: TextIO = sys.stdout,
                 gateway_workers: int = 2,
                 query_timeout: Optional[float] = 30.0):
        self.db = db
        self.out = out
        self.mode = "non-truman"
        self.user: Optional[str] = None
        #: session $time parameter (None = unset); see \time
        self.time: Optional[float] = None
        self.conn: Connection = db.connect(user_id=None, mode=self.mode)
        self.gateway_workers = gateway_workers
        #: default per-query deadline (seconds); None disables it
        self.query_timeout = query_timeout
        self._gateway = None
        self._buffer: list[str] = []

    # ------------------------------------------------------------------

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def reconnect(self) -> None:
        self.conn = self.db.connect(
            user_id=self.user, mode=self.mode, time=self.time
        )

    def session_params(self) -> dict:
        """The session-context parameters gateway requests carry."""
        return {} if self.time is None else {"time": self.time}

    def gateway(self):
        """The shell's enforcement gateway, started on first use."""
        if self._gateway is None:
            from repro.service import EnforcementGateway

            self._gateway = EnforcementGateway(
                self.db, workers=self.gateway_workers, name="shell-gateway",
                default_deadline=self.query_timeout,
            )
        return self._gateway

    def close(self) -> None:
        if self._gateway is not None:
            self._gateway.shutdown(drain=True)
            self._gateway = None

    # ------------------------------------------------------------------

    def run(self, lines) -> None:
        self.write(BANNER)
        self._prompt()
        try:
            for raw in lines:
                line = raw.rstrip("\n")
                if not self._feed(line):
                    break
                self._prompt()
        finally:
            self.close()

    def _prompt(self) -> None:
        user = self.user or "<anonymous>"
        self.out.write(f"{user}@{self.mode}> ")
        self.out.flush()

    def _feed(self, line: str) -> bool:
        """Process one input line; False means quit."""
        stripped = line.strip()
        if not stripped and not self._buffer:
            return True
        if stripped.startswith("\\"):
            if self._buffer and stripped.split(None, 1)[0].lower() != "\\reset":
                self.write(
                    f"error: cannot run meta-command {stripped.split()[0]} "
                    f"with a statement in progress ({len(self._buffer)} "
                    "buffered line(s)); finish it with ';' or discard it "
                    "with \\reset"
                )
                return True
            return self._meta(stripped)
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self._execute_sql(statement.rstrip("; \t\n"))
        return True

    # -- meta commands ------------------------------------------------------

    def _meta(self, command: str) -> bool:
        parts = command.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if head in ("\\q", "\\quit", "\\exit"):
            self.write("bye")
            return False
        if head == "\\help":
            self.write(__doc__)
        elif head == "\\user":
            self.user = rest.strip() or None
            self.reconnect()
            self.write(f"connected as {self.user!r}")
        elif head == "\\mode":
            mode = rest.strip().lower()
            if mode not in MODES:
                self.write(
                    f"error: unknown mode {mode!r} "
                    f"(modes: {' | '.join(MODES)}); staying in {self.mode!r}"
                )
            else:
                self.mode = mode
                self.reconnect()
                self.write(f"access-control mode: {mode}")
        elif head == "\\views":
            self._list_views()
        elif head == "\\tables":
            for schema in self.db.catalog.tables():
                self.write(f"  {schema}")
        elif head == "\\grant":
            self._grant(rest)
        elif head == "\\check":
            self._check(rest)
        elif head == "\\explain":
            self._explain(rest)
        elif head == "\\time":
            self._set_time(rest)
        elif head == "\\stats":
            self.write(self.gateway().render_stats())
        elif head == "\\replicas":
            self._replicas()
        elif head == "\\audit":
            self._audit(rest)
        elif head == "\\save":
            self._save(rest)
        elif head == "\\open":
            self._open(rest)
        elif head == "\\checkpoint":
            self._checkpoint()
        elif head == "\\wal-stats":
            self._wal_stats()
        elif head == "\\reset":
            discarded = len(self._buffer)
            self._buffer = []
            self.write(f"input buffer cleared ({discarded} line(s) discarded)")
        else:
            self.write(f"unknown meta-command {head!r}; try \\help")
        return True

    def _list_views(self) -> None:
        available = {
            v.name for v in self.db.available_views(self.conn.session)
        }
        any_views = False
        for view in self.db.catalog.views():
            if not view.authorization:
                continue
            any_views = True
            mark = "*" if view.name in available else " "
            from repro.sql import render

            self.write(f" {mark} {view.name}: {render(view.query)}")
        if not any_views:
            self.write("  (no authorization views deployed)")
        self.write("  (* = available to this session)")

    def _grant(self, rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            self.write("usage: \\grant <view> <user|public>")
            return
        try:
            self.db.grant(parts[0], to_user=parts[1])
            self.write(f"granted {parts[0]} to {parts[1]}")
        except ReproError as exc:
            self.write(f"error: {exc}")

    def _check(self, sql: str) -> None:
        if not sql.strip():
            self.write("usage: \\check <select ...>")
            return
        try:
            decision = self.db.check_validity(
                sql.rstrip(";"), session=self.conn.session
            )
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self.write(decision.describe())
        if decision.witness is not None:
            self.write("witness plan:")
            self.write(decision.witness.pretty(1))

    def _explain(self, sql: str) -> None:
        if not sql.strip():
            self.write("usage: \\explain <select ...>")
            return
        try:
            statement = parse_statement(sql.rstrip(";"))
            if not isinstance(statement, ast.QueryExpr):
                self.write("\\explain expects a SELECT statement")
                return
            plan = self.db.plan_query(statement, self.conn.session)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self.write(plan.pretty())
        if self.mode != "non-truman":
            return
        # non-truman mode: trace the validity decision, and (with a
        # ReBAC policy attached) the tuple chains behind it
        from repro.rebac.trace import explain_query, render_report

        try:
            report = explain_query(self.db, statement, self.conn.session)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        self.write("decision:")
        for line in render_report(report):
            self.write(f"  {line}")

    def _set_time(self, rest: str) -> None:
        text = rest.strip()
        if not text:
            shown = "unset" if self.time is None else repr(self.time)
            self.write(f"session time: {shown}")
            return
        if text.lower() in ("off", "none"):
            self.time = None
            self.reconnect()
            self.write("session time cleared")
            return
        try:
            self.time = float(text)
        except ValueError:
            self.write("usage: \\time <seconds|off>")
            return
        self.reconnect()
        self.write(f"session time set to {self.time}")

    def _audit(self, rest: str) -> None:
        try:
            count = int(rest.strip()) if rest.strip() else 10
        except ValueError:
            self.write("usage: \\audit [N]")
            return
        records = self.gateway().audit.tail(count)
        if not records:
            self.write("  (audit log is empty)")
            return
        for record in records:
            rules = ",".join(record.rules) or "-"
            self.write(
                f"  #{record.seq} user={record.user!r} mode={record.mode} "
                f"status={record.status} decision={record.decision or '-'} "
                f"rules={rules} cache={'hit' if record.cache_hit else 'miss'} "
                f"{record.latency_ms:.2f}ms :: {record.signature}"
            )

    def _replicas(self) -> None:
        report = getattr(self.db, "cluster_health", None)
        if report is None:
            self.write("  (database is not a sharded cluster coordinator)")
            return
        render_health(self.write, report())

    # -- durability meta-commands --------------------------------------------

    def _save(self, rest: str) -> None:
        target = rest.strip()
        if not target:
            self.write("usage: \\save <directory>")
            return
        try:
            self.db.save(target)
            self.write(f"durable at {target!r} (snapshot written, WAL open)")
        except ReproError as exc:
            self.write(f"error: {exc}")

    def _open(self, rest: str) -> None:
        target = rest.strip()
        if not target:
            self.write("usage: \\open <directory>")
            return
        try:
            db = Database.open(target)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        # drain the gateway and flush the old database before switching
        self.close()
        self.db.close()
        self.db = db
        self.reconnect()
        info = db.durability.recovery_info
        if info:
            self.write(
                f"opened {target!r}: snapshot LSN {info['snapshot_lsn']}, "
                f"{info['wal_records_replayed']} WAL record(s) replayed"
                + (" (torn tail truncated)" if info["torn_truncated"] else "")
            )
        else:
            self.write(f"opened {target!r} (fresh durable database)")

    def _checkpoint(self) -> None:
        try:
            lsn = self.db.checkpoint()
            self.write(f"checkpoint complete at LSN {lsn}")
        except ReproError as exc:
            self.write(f"error: {exc}")

    def _wal_stats(self) -> None:
        if self.db.durability is None:
            self.write("  (database is in-memory; \\save or \\open first)")
            return
        stats = self.db.durability.wal_stats()
        width = max(len(name) for name in stats)
        for name, value in stats.items():
            self.write(f"  {name:<{width}}  {value}")

    # -- SQL execution -------------------------------------------------------

    def _execute_sql(self, sql: str) -> None:
        if not sql.strip():
            return
        try:
            statement = parse_statement(sql)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        if isinstance(statement, ast.QueryExpr):
            self._execute_query(sql)
            return
        try:
            outcome = self.conn.execute(statement)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return
        if isinstance(outcome, int):
            self.write(f"{outcome} row(s) affected")
        else:
            self.write("ok")

    def _execute_query(self, sql: str) -> None:
        """SELECTs go through the enforcement gateway (same path as the
        service's network clients would take)."""
        from repro.errors import ServiceError
        from repro.service import QueryRequest, RequestStatus

        try:
            response = self.gateway().execute(
                QueryRequest(
                    user=self.user, sql=sql, mode=self.mode,
                    params=self.session_params(),
                )
            )
        except ServiceError as exc:
            self.write(f"error: {exc}")
            return
        if response.status is RequestStatus.OK:
            self._print_result(response.result)
        else:
            self.write(f"error: {response.error}")

    def _print_result(self, result) -> None:
        print_result(self.write, result)


def print_result(write, result) -> None:
    """Render a result (library Result or wire ClientResult) to ``write``."""
    from repro.bench.reporting import format_table

    if result.columns:
        limited = result.rows[:50]
        write(format_table(list(result.columns), [list(r) for r in limited]))
        if len(result.rows) > len(limited):
            write(f"... ({len(result.rows)} rows total)")
        else:
            write(f"({len(result.rows)} row(s))")
    annotations = getattr(result, "annotations", None)
    if annotations:
        for note in annotations:
            write(f"  note: {note}")


def render_health(write, health: Optional[dict]) -> None:
    """Render a cluster-health report (``cluster_health()`` / the
    ``health`` wire frame) as the ``\\replicas`` table."""
    if not health:
        write("  (server is not a sharded cluster coordinator)")
        return
    write(
        f"cluster: {health.get('shards')} shard(s), policy epoch "
        f"{health.get('policy_epoch')}, unresolved divergences "
        f"{health.get('replica_divergence')}"
    )
    replicas = health.get("replicas") or []
    if not replicas:
        write("  (no read replicas attached)")
        return
    for rep in replicas:
        flags = []
        if rep.get("serving"):
            flags.append("serving")
        if rep.get("state") == "quarantined":
            flags.append("QUARANTINED")
        note = f" [{', '.join(flags)}]" if flags else ""
        write(
            f"  {rep.get('name')}: state={rep.get('state')} "
            f"lag={rep.get('lag')} epoch={rep.get('policy_epoch')} "
            f"heartbeat={rep.get('heartbeat_age_s')}s "
            f"divergences={rep.get('divergences')}"
            f"/{rep.get('unresolved_divergences')} unresolved "
            f"catchups={rep.get('catchups')} "
            f"bootstraps={rep.get('bootstraps')}{note}"
        )
        if rep.get("last_error"):
            write(f"      last error: {rep['last_error']}")


REMOTE_BANNER = """repro — remote shell over the wire protocol (repro.net)
Type SQL terminated by ';'.  Meta-commands: \\user ID, \\mode M,
\\explain SQL, \\stats, \\replicas, \\reset, \\help, \\quit."""


class RemoteShell:
    """The shell's remote mode: a thin REPL over one ReproClient.

    SQL goes over the framed protocol to a ``repro serve`` process and
    comes back as streamed row batches; typed errors (timeout,
    overload, access denied, degraded) print exactly like their
    in-process counterparts.  ``\\stats`` fetches the *server's*
    merged gateway/network snapshot.
    """

    def __init__(self, client, out: TextIO = sys.stdout):
        self.client = client
        self.out = out
        self.user = client.user
        self.mode = client.mode or "non-truman"
        self.time: Optional[float] = None
        self._buffer: list[str] = []

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def run(self, lines) -> None:
        info = self.client.server_info
        self.write(REMOTE_BANNER)
        self.write(
            f"connected to {info.get('server')!r} "
            f"(protocol {info.get('protocol')}, session {info.get('session')})"
        )
        self._prompt()
        try:
            for raw in lines:
                if not self._feed(raw.rstrip("\n")):
                    break
                self._prompt()
        finally:
            self.client.close()

    def _prompt(self) -> None:
        user = self.user or "<anonymous>"
        self.out.write(f"{user}@{self.mode}/remote> ")
        self.out.flush()

    def _feed(self, line: str) -> bool:
        stripped = line.strip()
        if not stripped and not self._buffer:
            return True
        if stripped.startswith("\\"):
            if self._buffer and stripped.split(None, 1)[0].lower() != "\\reset":
                self.write(
                    "error: finish the buffered statement with ';' or "
                    "discard it with \\reset"
                )
                return True
            return self._meta(stripped)
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self._execute_sql(statement.rstrip("; \t\n"))
        return True

    def _meta(self, command: str) -> bool:
        from repro.db import MODES
        from repro.errors import NetworkError, ReproError

        parts = command.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if head in ("\\q", "\\quit", "\\exit"):
            self.write("bye")
            return False
        if head == "\\help":
            self.write(REMOTE_BANNER)
        elif head == "\\user":
            self.user = rest.strip() or None
            self._rehello()
        elif head == "\\mode":
            mode = rest.strip().lower()
            if mode not in MODES:
                self.write(
                    f"error: unknown mode {mode!r} "
                    f"(modes: {' | '.join(MODES)}); staying in {self.mode!r}"
                )
            else:
                self.mode = mode
                self._rehello()
        elif head == "\\time":
            text = rest.strip()
            if not text:
                shown = "unset" if self.time is None else repr(self.time)
                self.write(f"session time: {shown}")
            elif text.lower() in ("off", "none"):
                self.time = None
                self._rehello()
            else:
                try:
                    self.time = float(text)
                except ValueError:
                    self.write("usage: \\time <seconds|off>")
                    return True
                self._rehello()
        elif head == "\\explain":
            if not rest.strip():
                self.write("usage: \\explain <select ...>")
                return True
            try:
                explained = self.client.explain(rest.rstrip("; \t"))
            except (NetworkError, ReproError) as exc:
                self.write(f"error: {exc}")
                return True
            for line in explained.get("rendered", ()):
                self.write(f"  {line}")
        elif head == "\\stats":
            try:
                stats = self.client.stats()
            except (NetworkError, ReproError) as exc:
                self.write(f"error: {exc}")
                return True
            width = max(len(name) for name in stats) if stats else 0
            self.write("-- remote gateway --")
            for name, value in stats.items():
                if isinstance(value, float):
                    self.write(f"  {name:<{width}}  {value:.4f}")
                else:
                    self.write(f"  {name:<{width}}  {value}")
        elif head == "\\replicas":
            try:
                health = self.client.health()
            except (NetworkError, ReproError) as exc:
                self.write(f"error: {exc}")
                return True
            render_health(self.write, health)
        elif head == "\\reset":
            discarded = len(self._buffer)
            self._buffer = []
            self.write(f"input buffer cleared ({discarded} line(s) discarded)")
        else:
            self.write(
                f"meta-command {head!r} is not available in remote mode; "
                "try \\help"
            )
        return True

    def _rehello(self) -> None:
        from repro.errors import NetworkError, ReproError

        params = {} if self.time is None else {"time": self.time}
        try:
            self.client.hello(user=self.user, mode=self.mode, params=params)
            self.write(f"connected as {self.user!r} in mode {self.mode!r}")
        except (NetworkError, ReproError) as exc:
            self.write(f"error: {exc}")

    def _execute_sql(self, sql: str) -> None:
        from repro.errors import NetworkError, ReproError

        if not sql.strip():
            return
        try:
            result = self.client.query(sql)
        except (NetworkError, ReproError) as exc:
            self.write(f"error: {exc}")
            return
        if result.rowcount is not None:
            self.write(f"{result.rowcount} row(s) affected")
            return
        if not result.columns:
            self.write("ok")
            return
        print_result(self.write, result)


def build_database(
    workload: Optional[str],
    script: Optional[str],
    data_dir: Optional[str] = None,
    shards: int = 0,
    replicas: int = 0,
) -> Database:
    if shards > 0:
        from repro.cluster import ClusterCoordinator

        if data_dir is not None:
            db = ClusterCoordinator.open(
                data_dir, shards=shards, replicas=replicas
            )
            if db.recovery_report:
                # existing durable cluster state wins over
                # --workload/--script; replicas were resurrected by
                # catch-up during open()
                return db
        else:
            db = ClusterCoordinator(shards=shards, replicas=replicas)
        if workload == "university":
            from repro.workloads.university import build_university

            build_university(db=db)
        elif workload == "collab":
            from repro.workloads.collab import build_collab

            build_collab(db=db)
        elif workload == "bank":
            raise ValueError(
                "the bank workload builds its own single-node database; "
                "use --workload university or --script with --shards"
            )
        elif script:
            with open(script) as handle:
                db.execute_script(handle.read())
        db.sync_replicas()
        return db
    if data_dir is not None:
        from repro.durability import has_durable_data

        if has_durable_data(data_dir):
            # existing durable state wins over --workload/--script
            return Database.open(data_dir)
        db = build_database(workload, script)
        db.save(data_dir)
        return db
    if workload == "university":
        from repro.workloads.university import build_university

        return build_university()
    if workload == "collab":
        from repro.workloads.collab import build_collab

        return build_collab()
    if workload == "bank":
        from repro.workloads.bank import build_bank, grant_teller

        db = build_bank()
        grant_teller(db, "teller")
        return db
    db = Database()
    if script:
        with open(script) as handle:
            db.execute_script(handle.read())
    return db


def serve_main(argv: Optional[list[str]] = None) -> int:
    """``repro serve``: run the asyncio network front end."""
    import asyncio

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve the enforcement gateway over the wire protocol",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=5433,
        help="TCP port to listen on (0 picks a free port)",
    )
    parser.add_argument(
        "--workload", choices=["university", "bank", "collab"],
        default=None,
        help="preload a generated demo workload",
    )
    parser.add_argument(
        "--script", default=None, help="SQL script to execute at startup"
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="durable data directory (opened if it holds state)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="gateway worker threads"
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded admission queue; beyond it requests are shed "
             "with a typed 'overloaded' error",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-query deadline in seconds (0 disables it)",
    )
    parser.add_argument(
        "--max-frame-size", type=int, default=None,
        help="maximum wire frame size in bytes (default 1 MiB); "
             "larger results are streamed as multiple row_batch frames",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="serve a sharded cluster coordinator with this many "
             "storage nodes (0 = single-node; combine with --data-dir "
             "for a durable cluster that recovers on restart)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="WAL-shipping read replicas for the cluster (requires "
             "--shards)",
    )
    args = parser.parse_args(argv)
    if args.replicas and not args.shards:
        parser.error("--replicas requires --shards")

    from repro.net.protocol import DEFAULT_MAX_FRAME
    from repro.net.server import ReproServer
    from repro.service import EnforcementGateway

    try:
        db = build_database(
            args.workload, args.script, args.data_dir,
            shards=args.shards, replicas=args.replicas,
        )
    except ValueError as exc:
        parser.error(str(exc))
    gateway = EnforcementGateway(
        db,
        workers=args.workers,
        queue_size=args.queue_size,
        default_deadline=args.timeout if args.timeout > 0 else None,
        name="repro-serve",
    )
    server = ReproServer(
        gateway,
        host=args.host,
        port=args.port,
        max_frame_size=args.max_frame_size or DEFAULT_MAX_FRAME,
    )

    async def amain() -> None:
        host, port = await server.start()
        topology = (
            f", shards={args.shards}, replicas={args.replicas}"
            if args.shards else ""
        )
        print(f"repro-serve listening on {host}:{port} "
              f"(workers={args.workers}, queue={args.queue_size}"
              f"{topology})")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        gateway.shutdown(drain=True)
        db.close()
    return 0


def connect_main(target: str, args) -> int:
    """``repro --connect HOST:PORT``: the shell as a network client."""
    from repro.errors import NetworkError
    from repro.net.client import ReproClient

    host, _, port_text = target.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --connect expects HOST:PORT, got {target!r}",
              file=sys.stderr)
        return 2
    try:
        client = ReproClient(
            host or "127.0.0.1", port, user=args.user, mode=args.mode,
            reconnect=True,
        )
    except (NetworkError, OSError) as exc:
        print(f"error: cannot connect to {target}: {exc}", file=sys.stderr)
        return 1
    shell = RemoteShell(client)
    try:
        shell.run(sys.stdin)
    except KeyboardInterrupt:
        shell.write("\nbye")
        client.close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="fine-grained access control shell"
    )
    parser.add_argument(
        "--workload", choices=["university", "bank", "collab"],
        default=None,
        help="preload a generated demo workload",
    )
    parser.add_argument(
        "--script", default=None, help="SQL script to execute at startup"
    )
    parser.add_argument(
        "--user", default=None, help="initial session user id"
    )
    parser.add_argument(
        "--mode", default="non-truman",
        choices=["open", "truman", "non-truman", "motro"],
        help="initial access-control mode",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="gateway worker threads serving the shell's queries",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-query deadline in seconds (0 disables it); "
             "a runaway validity check or scan is cancelled "
             "cooperatively when it elapses",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="durable data directory (opened if it holds state, "
             "initialized from --workload/--script otherwise)",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="run as a remote client of a 'repro serve' process "
             "instead of embedding a database",
    )
    args = parser.parse_args(argv)

    if args.connect:
        return connect_main(args.connect, args)

    db = build_database(args.workload, args.script, args.data_dir)
    shell = Shell(
        db,
        gateway_workers=args.workers,
        query_timeout=args.timeout if args.timeout > 0 else None,
    )
    shell.mode = args.mode
    shell.user = args.user
    shell.reconnect()
    try:
        shell.run(sys.stdin)
    except KeyboardInterrupt:
        shell.write("\nbye")
    finally:
        shell.db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
