"""Update authorization (paper Section 4.4)."""

from repro.updates.authorize import UpdateAuthorizer, UpdatePolicy

__all__ = ["UpdateAuthorizer", "UpdatePolicy"]
