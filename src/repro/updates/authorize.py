"""Authorization of updates (paper Section 4.4).

Update authorization is deliberately simpler than query validity:
each INSERT/UPDATE/DELETE is checked tuple-by-tuple against
parameterized predicates declared with::

    AUTHORIZE INSERT ON Registered WHERE Registered.student_id = $user_id
    AUTHORIZE UPDATE ON Students(address) WHERE old(Students.student_id) = $user_id

In an UPDATE predicate, ``old(T.c)`` refers to the pre-image of the
tuple and a bare column reference to the post-image.  A statement is
permitted when, for every affected tuple, **some** policy for that
(action, table) pair is satisfied; with no applicable policy the
default is deny (checks are skipped entirely in "open" mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import UpdateRejectedError
from repro.sql import ast
from repro.algebra import expr as exprs
from repro.authviews.session import SessionContext
from repro.engine.evaluator import Evaluator, RowResolver

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass(frozen=True)
class UpdatePolicy:
    """One AUTHORIZE policy."""

    action: str  # "insert" | "update" | "delete"
    table: str
    columns: tuple[str, ...]  # empty = all columns (update only)
    predicate: Optional[ast.Expr]  # None = unconditionally allowed

    def covers_columns(self, changed: tuple[str, ...]) -> bool:
        if not self.columns:
            return True
        allowed = {c.lower() for c in self.columns}
        return all(c.lower() in allowed for c in changed)

    def to_statement(self) -> ast.AuthorizeStmt:
        """The AUTHORIZE statement this policy came from (rendered into
        snapshots and replayed through the normal parse path)."""
        return ast.AuthorizeStmt(
            action=self.action,
            table=self.table,
            columns=self.columns,
            where=self.predicate,
        )


class UpdateAuthorizer:
    """Holds AUTHORIZE policies and checks DML statements against them."""

    def __init__(self, db: "Database"):
        self.db = db
        self._policies: list[UpdatePolicy] = []

    def add_policy(self, statement: ast.AuthorizeStmt) -> None:
        self._policies.append(
            UpdatePolicy(
                action=statement.action,
                table=statement.table,
                columns=statement.columns,
                predicate=statement.where,
            )
        )

    def policies(self) -> list[UpdatePolicy]:
        """Every declared policy, in declaration order (persistence)."""
        return list(self._policies)

    def policies_for(self, action: str, table: str) -> list[UpdatePolicy]:
        key = table.lower()
        return [
            p
            for p in self._policies
            if p.action == action and p.table.lower() == key
        ]

    # -- checks ----------------------------------------------------------

    def check_insert(self, table: str, row: tuple, session: SessionContext) -> None:
        policies = self.policies_for("insert", table)
        if not any(
            self._satisfied(p, table, new_row=row, old_row=None, session=session)
            for p in policies
        ):
            raise UpdateRejectedError(
                f"insert into {table} not authorized for user "
                f"{session.user!r}"
            )

    def check_update(
        self,
        table: str,
        old_row: tuple,
        new_row: tuple,
        changed_columns: tuple[str, ...],
        session: SessionContext,
    ) -> None:
        policies = [
            p
            for p in self.policies_for("update", table)
            if p.covers_columns(changed_columns)
        ]
        if not any(
            self._satisfied(p, table, new_row=new_row, old_row=old_row, session=session)
            for p in policies
        ):
            raise UpdateRejectedError(
                f"update of {table}({', '.join(changed_columns)}) not authorized "
                f"for user {session.user!r}"
            )

    def check_delete(self, table: str, row: tuple, session: SessionContext) -> None:
        policies = self.policies_for("delete", table)
        if not any(
            self._satisfied(p, table, new_row=row, old_row=row, session=session)
            for p in policies
        ):
            raise UpdateRejectedError(
                f"delete from {table} not authorized for user {session.user!r}"
            )

    # ------------------------------------------------------------------

    def _satisfied(
        self,
        policy: UpdatePolicy,
        table: str,
        new_row: tuple,
        old_row: Optional[tuple],
        session: SessionContext,
    ) -> bool:
        if policy.predicate is None:
            return True
        schema = self.db.catalog.table(table)

        predicate = exprs.substitute_params(
            policy.predicate, session.param_values()
        )

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.OldColumnRef):
                if old_row is None:
                    # old() is meaningless for INSERT: treat as NULL.
                    return ast.Literal(None)
                return ast.Literal(old_row[schema.column_index(node.name)])
            if isinstance(node, ast.ColumnRef):
                return ast.Literal(new_row[schema.column_index(node.name)])
            return None

        grounded = exprs.transform(predicate, visit)
        evaluator = Evaluator(RowResolver(()))
        return evaluator.evaluate(grounded, ()) is True
