"""Pipeline stage counters (prepared-statement instrumentation).

The prepared-statement cache (:mod:`repro.prepared`) claims that a hot
template hit performs **zero** parse / validity-check / plan work.  That
claim is enforced by tests, not by inspection: the expensive stages each
bump a named global counter here, and the tests assert the counter
deltas are exactly zero across a cache hit.

Counters are process-global and thread-safe.  They are instrumentation
only — nothing in the engine reads them back.

Stages
======

``sql.parse``        a statement was parsed from text
``validity.check``   the Non-Truman checker ran (cached or fresh entry)
``plan.build``       a query was translated to algebra
``plan.push``        the selection-pushdown optimizer ran over a plan
``engine.compile``   a scalar expression was compiled to a vector kernel
``prepared.bind``    a template was bound with fresh literals
"""

from __future__ import annotations

import threading
from typing import Dict


class StageCounters:
    """Named, thread-safe monotonic counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        with self._lock:
            out = {}
            for name, value in self._counts.items():
                diff = value - snapshot.get(name, 0)
                if diff:
                    out[name] = diff
            return out


#: the process-global counter set
COUNTERS = StageCounters()
