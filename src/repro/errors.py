"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
subsystems: SQL front end, catalog, execution engine, and the two access
control models.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer encounters an unrecognized character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class CatalogError(ReproError):
    """Base class for catalog errors (unknown tables, duplicate names, ...)."""


class UnknownTableError(CatalogError):
    def __init__(self, name: str):
        super().__init__(f"unknown table or view: {name!r}")
        self.name = name


class UnknownColumnError(CatalogError):
    def __init__(self, name: str, context: str = ""):
        suffix = f" in {context}" if context else ""
        super().__init__(f"unknown column: {name!r}{suffix}")
        self.name = name


class AmbiguousColumnError(CatalogError):
    def __init__(self, name: str, candidates: list[str]):
        super().__init__(
            f"ambiguous column {name!r}; candidates: {', '.join(sorted(candidates))}"
        )
        self.name = name
        self.candidates = candidates


class DuplicateNameError(CatalogError):
    def __init__(self, name: str):
        super().__init__(f"name already exists: {name!r}")
        self.name = name


class BindError(ReproError):
    """Raised when an AST cannot be bound/translated against the catalog."""


class ExecutionError(ReproError):
    """Raised for runtime failures during query execution."""


class TypeError_(ExecutionError):
    """Raised for type mismatches during evaluation (named to avoid builtins)."""


class IntegrityError(ExecutionError):
    """Raised when a DML statement would violate a declared constraint."""


class ParameterError(ReproError):
    """Raised when view parameters are missing or of the wrong kind."""


class AccessControlError(ReproError):
    """Base class for access-control failures."""


class QueryRejectedError(AccessControlError):
    """Raised by the Non-Truman model when a query cannot be proven valid.

    Carries the :class:`~repro.nontruman.decision.ValidityDecision` so
    callers can inspect why the query was rejected.
    """

    def __init__(self, message: str, decision=None):
        super().__init__(message)
        self.decision = decision


class UpdateRejectedError(AccessControlError):
    """Raised when an insert/update/delete fails its authorization predicate."""


class GrantError(AccessControlError):
    """Raised for malformed or unauthorized GRANT operations."""


class RebacError(AccessControlError):
    """Raised for malformed relationship tuples or namespace configs
    (``repro.rebac``): unknown object types or relations, subjects that
    parse as neither ``user:id`` nor ``object#relation``, or writes
    against a database with no ReBAC manager attached."""


class RebacCycleError(RebacError):
    """Raised when a relationship-tuple write would create a cycle in
    the group graph (userset membership / hierarchy edges).

    The message is *deterministic*: the offending cycle is reported
    rotated to its lexicographically smallest node, so the same cyclic
    tuple set produces the same error no matter the insertion order.
    """


class UnsupportedFeatureError(ReproError):
    """Raised when a statement uses SQL the engine deliberately omits.

    The paper (Section 5) assumes queries without nested subqueries; the
    validity checker raises this error for constructs outside the
    supported fragment rather than silently mis-answering.
    """


class QueryAborted(ReproError):
    """Base class for cooperative aborts of in-flight work.

    Raised from :meth:`repro.service.context.QueryContext.tick` /
    ``check`` calls placed inside the validity checker's inference
    loops and both executors' row/batch loops.  The abort unwinds the
    whole request cleanly: no decision is cached, no partial result is
    returned, and the worker that served the request stays alive.
    """


class QueryTimeout(QueryAborted):
    """The request's deadline elapsed while work was in flight."""


class QueryCancelled(QueryAborted):
    """The request was cancelled (``PendingQuery.cancel``) mid-flight."""


class ResourceBudgetExceeded(QueryAborted):
    """The request exceeded its row or memory budget."""


class ServiceError(ReproError):
    """Base class for enforcement-gateway (``repro.service``) failures."""


class TransientFault(ServiceError):
    """A fault classified as transient (flaky dependency, injected
    chaos): the gateway may retry the request with jittered backoff
    instead of failing it outright."""


class ServiceDegraded(ServiceError):
    """The gateway is in degraded read-only mode: the circuit breaker
    around the WAL commit path is open, so writes are rejected up front
    (no partial state) while SELECTs keep serving.  The breaker
    half-open probe recovers automatically once commits succeed again."""


class PendingTimeout(ServiceError, TimeoutError):
    """``PendingQuery.result(timeout)`` elapsed with the request still
    in flight.  Carries the :attr:`pending` handle so the caller can
    ``pending.cancel()`` the running work and later reap the terminal
    response instead of leaking it."""

    def __init__(self, message: str, pending=None):
        super().__init__(message)
        self.pending = pending


class ReplicaUnavailable(ServiceError):
    """A routed read replica cannot (or can no longer) serve.

    Raised between routing and execution when the failure detector has
    quarantined the replica, when it fell behind the policy-epoch/lag
    gate after being picked, or when catch-up streaming gave up on it.
    The gateway treats this as a *routing* miss, never a query failure:
    the read falls back to the primary, so the caller sees a correct,
    policy-current answer — just not a replica-served one.
    """


class ServiceOverloaded(ServiceError):
    """Raised when the gateway's admission queue is full (backpressure).

    Callers should back off and retry; the request was never enqueued,
    so nothing was executed on its behalf.
    """


class ServiceShutdown(ServiceError):
    """Raised when a request is submitted to a gateway that is shutting
    down (or already stopped) and no longer accepts new work."""


class NetworkError(ReproError):
    """Base class for wire-protocol / connection failures (``repro.net``)."""


class ProtocolError(NetworkError):
    """A malformed, unexpected, or out-of-order protocol message.

    Covers frames that are not valid JSON objects, messages of unknown
    type, queries sent before the ``hello`` handshake, and responses
    the client cannot correlate with an outstanding request.
    """


class FrameTooLarge(ProtocolError):
    """An encoded frame exceeds the negotiated maximum frame size.

    The server never produces such frames — large results are chunked
    into multiple ``row_batch`` frames — so on the receive path this
    always indicates a misbehaving or misconfigured peer, and the
    connection is closed rather than buffering an unbounded payload.
    """


class ConnectionDropped(NetworkError, ConnectionError):
    """The peer vanished mid-conversation (EOF or reset).

    On the server this triggers cancellation-on-disconnect: every
    request still in flight for the dropped session has its
    :class:`~repro.service.context.QueryContext` cancelled, so no work
    keeps running for an answer nobody can receive.
    """


class ConnectionLostError(ConnectionDropped):
    """An *established* client connection died mid-operation.

    Distinguished from :class:`ConnectionDropped` (which also covers
    refused connects and protocol-level closes) so clients can offer
    transparent single-reconnect retry for idempotent reads — a SELECT
    or a stats fetch can safely be re-sent on a fresh connection, a
    write cannot.
    """


class ReconnectExhausted(ConnectionLostError):
    """The client's bounded reconnect budget ran out.

    ``ReproClient(reconnect=True)`` retries idempotent reads across
    reconnect attempts with exponential backoff + jitter; when every
    attempt fails this is raised instead of the last low-level error.
    Subclasses :class:`ConnectionLostError` so callers that handled the
    single-reconnect era's give-up error keep working unchanged.
    """

    def __init__(self, message: str, attempts: int = 0, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class DurabilityError(ReproError):
    """Raised by the durable-storage layer (``repro.durability``).

    Covers unrecoverable on-disk corruption (a torn record *before* the
    WAL tail, a snapshot whose CRC fails with no older snapshot to fall
    back to), misuse (checkpointing an in-memory database, mutating a
    closed database), and attaching durable state to a non-empty
    database.
    """
