"""repro — a reproduction of "Extending Query Rewriting Techniques for
Fine-Grained Access Control" (Rizvi, Mendelzon, Sudarshan, Roy; SIGMOD
2004).

The package implements, from scratch:

* an in-memory relational engine (SQL parser, catalog with integrity
  constraints, multiset executor) as the substrate;
* **authorization views** — parameterized (``$user_id``) and
  access-pattern (``$$1``) views with a grant registry (Section 2);
* the **Truman model** — transparent query modification, including an
  Oracle-VPD-style predicate policy engine (Section 3);
* the **Non-Truman model** — validity inference with the paper's rule
  system U1/U2, U3a/U3b/U3c, C1/C2, C3a/C3b, producing executable
  witness rewritings (Sections 4-5);
* a **Volcano-style optimizer** with AND-OR DAG unification and
  validity marking (Section 5.6);
* **update authorization** (Section 4.4) and **access-pattern
  inference** with dependent joins (Section 6).

Quickstart::

    from repro import Database

    db = Database()
    db.execute_script(...)          # CREATE TABLE / INSERT / views
    db.grant("MyGrades", to_user="11")
    conn = db.connect(user_id="11", mode="non-truman")
    conn.query("select avg(grade) from Grades where student_id = '11'")
"""

from repro.db import Connection, Database, Result
from repro.authviews.session import SessionContext
from repro.authviews.views import AuthorizationView, InstantiatedView
from repro.catalog.constraints import TotalParticipation
from repro.nontruman.checker import ValidityChecker
from repro.nontruman.decision import Validity, ValidityDecision
from repro.durability import DurabilityManager, FaultInjector, InjectedCrash
from repro.errors import (
    AccessControlError,
    DurabilityError,
    IntegrityError,
    ParseError,
    QueryRejectedError,
    ReproError,
    ServiceOverloaded,
    ServiceShutdown,
    UpdateRejectedError,
)
from repro.service import (
    EnforcementGateway,
    QueryRequest,
    QueryResponse,
    RequestStatus,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Connection",
    "Result",
    "SessionContext",
    "AuthorizationView",
    "InstantiatedView",
    "TotalParticipation",
    "ValidityChecker",
    "Validity",
    "ValidityDecision",
    "EnforcementGateway",
    "QueryRequest",
    "QueryResponse",
    "RequestStatus",
    "DurabilityManager",
    "FaultInjector",
    "InjectedCrash",
    "ReproError",
    "DurabilityError",
    "ParseError",
    "IntegrityError",
    "AccessControlError",
    "QueryRejectedError",
    "ServiceOverloaded",
    "ServiceShutdown",
    "UpdateRejectedError",
    "__version__",
]
