"""repro.net — the asyncio wire protocol, thin clients, and load harness.

Turns the in-process enforcement gateway into a networked service: an
asyncio TCP server speaking a small length-prefixed JSON protocol
(:mod:`repro.net.protocol`), a session layer mapping connections onto
gateway users with deadline propagation and cancellation-on-disconnect
(:mod:`repro.net.server`), blocking and async client libraries
(:mod:`repro.net.client`), and an open-loop load generator for honest
p99-vs-offered-load measurement (:mod:`repro.net.loadgen`).

Quickstart::

    from repro.service import EnforcementGateway
    from repro.net import NetworkService, ReproClient

    gateway = EnforcementGateway(db, workers=4)
    with NetworkService(gateway) as service:
        host, port = service.address
        with ReproClient(host, port, user="11") as client:
            result = client.query("select * from Grades where student_id = '11'")
            print(result.rows)
"""

from repro.net.client import (
    AsyncPreparedStatement,
    AsyncReproClient,
    ClientResult,
    PreparedStatement,
    ReproClient,
)
from repro.net.loadgen import (
    LoadQuery,
    LoadReport,
    run_open_loop,
    run_open_loop_async,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    error_for_code,
    iter_result_frames,
)
from repro.net.server import NetworkService, ReproServer

__all__ = [
    "AsyncPreparedStatement",
    "AsyncReproClient",
    "ClientResult",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "LoadQuery",
    "LoadReport",
    "NetworkService",
    "PROTOCOL_VERSION",
    "PreparedStatement",
    "ReproClient",
    "ReproServer",
    "decode_payload",
    "encode_frame",
    "error_for_code",
    "iter_result_frames",
    "run_open_loop",
    "run_open_loop_async",
]
