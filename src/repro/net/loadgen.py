"""Open-loop (arrival-rate-driven) load generation over the wire.

Closed-loop load tests — N workers each waiting for a response before
sending the next request — *cannot* see queueing collapse: when the
server slows down, a closed loop slows its own offered load down with
it, flattering the p99.  The open-loop harness instead fires requests
on a fixed arrival schedule derived only from the offered rate (and,
optionally, Poisson jitter), whether or not earlier requests have come
back.  Past the saturation point the difference is stark: offered load
keeps arriving, the admission queue fills, and the gateway must either
shed excess arrivals with a typed
:class:`~repro.errors.ServiceOverloaded` (what benchmark E17 gates on)
or let latency grow without bound.

The generator multiplexes arrivals over a small pool of
:class:`~repro.net.client.AsyncReproClient` connections (per-query
pipelining keeps connection count decoupled from concurrency), tracks
every arrival to a terminal outcome, and reports throughput, latency
percentiles of *admitted* requests, and shed/error counts.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import (
    ConnectionDropped,
    QueryCancelled,
    QueryRejectedError,
    QueryTimeout,
    ReproError,
    ServiceOverloaded,
)
from repro.net.client import AsyncReproClient


@dataclass(frozen=True)
class LoadQuery:
    """One query template in the workload mix.

    ``expect`` names the outcome an honest server must produce:
    ``"ok"`` (valid query → rows) or ``"rejected"`` (invalid under the
    policy → typed access-denied, never rows).  Anything else observed
    for that arrival — other than overload shedding or a deadline
    timeout — counts as a *violation* in the report.
    """

    sql: str
    expect: str = "ok"
    mode: Optional[str] = None


@dataclass
class LoadReport:
    """Everything one open-loop run observed, with derived figures."""

    offered_rate: float
    duration_s: float
    arrivals: int = 0
    ok: int = 0
    #: arrivals shed by admission control (ServiceOverloaded)
    shed: int = 0
    rejected: int = 0
    timeouts: int = 0
    cancelled: int = 0
    errors: int = 0
    #: policy violations: an expect="rejected" query that returned rows,
    #: or an expect="ok" query rejected by the policy
    violations: int = 0
    #: arrivals with no terminal outcome inside the grace window (hangs)
    unresolved: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def terminal(self) -> int:
        return (
            self.ok
            + self.shed
            + self.rejected
            + self.timeouts
            + self.cancelled
            + self.errors
        )

    @property
    def achieved_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s else 0.0

    def percentile(self, p: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50_ms(self) -> float:
        return self.percentile(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99)

    def as_dict(self) -> dict[str, object]:
        return {
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "arrivals": self.arrivals,
            "ok": self.ok,
            "shed": self.shed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "violations": self.violations,
            "unresolved": self.unresolved,
            "achieved_rps": round(self.achieved_rps, 1),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
        }


async def run_open_loop_async(
    host: str,
    port: int,
    *,
    rate: float,
    duration_s: float,
    queries: Sequence[LoadQuery],
    user: Optional[str] = None,
    mode: str = "non-truman",
    params: Optional[dict] = None,
    connections: int = 8,
    deadline: Optional[float] = 5.0,
    poisson: bool = False,
    seed: int = 0,
    grace_s: float = 30.0,
) -> LoadReport:
    """Drive one offered-load level and account for every arrival.

    Arrival times are precomputed from ``rate`` (uniform spacing, or
    exponential gaps when ``poisson``); each arrival is dispatched at
    its scheduled instant regardless of outstanding work — if the
    schedule slips (the loop itself saturates), the arrival fires as
    soon as possible afterwards, which only *under*-states the stress.
    """
    if not queries:
        raise ValueError("queries must not be empty")
    rng = random.Random(seed)
    gaps = []
    t = 0.0
    while True:
        gap = rng.expovariate(rate) if poisson else 1.0 / rate
        if t + gap > duration_s:
            break
        t += gap
        gaps.append(t)
    report = LoadReport(offered_rate=rate, duration_s=duration_s)
    clients = [
        await AsyncReproClient.connect(
            host, port, user=user, mode=mode, params=params
        )
        for _ in range(connections)
    ]
    tasks: list[asyncio.Task] = []

    async def one_arrival(client: AsyncReproClient, spec: LoadQuery) -> None:
        start = time.perf_counter()
        try:
            await client.query(spec.sql, mode=spec.mode, deadline=deadline)
        except ServiceOverloaded:
            report.shed += 1
            return
        except QueryTimeout:
            report.timeouts += 1
            return
        except QueryCancelled:
            report.cancelled += 1
            return
        except QueryRejectedError:
            report.rejected += 1
            if spec.expect != "rejected":
                report.violations += 1
            return
        except (ConnectionDropped, ReproError):
            report.errors += 1
            return
        report.ok += 1
        report.latencies_ms.append((time.perf_counter() - start) * 1000.0)
        if spec.expect == "rejected":
            # an invalid query came back with an answer: policy breach
            report.violations += 1

    try:
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        for index, at in enumerate(gaps):
            delay = epoch + at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            spec = queries[index % len(queries)]
            client = clients[index % len(clients)]
            report.arrivals += 1
            tasks.append(asyncio.ensure_future(one_arrival(client, spec)))
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace_s)
            report.unresolved = len(pending)
            for task in pending:
                task.cancel()
    finally:
        for client in clients:
            try:
                await client.close()
            except (ConnectionDropped, OSError):
                pass
    return report


def run_open_loop(host: str, port: int, **kwargs) -> LoadReport:
    """Synchronous wrapper; runs the sweep on a private event loop."""
    return asyncio.run(run_open_loop_async(host, port, **kwargs))
