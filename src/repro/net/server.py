"""Asyncio TCP front end over the enforcement gateway.

:class:`ReproServer` turns the in-process
:class:`~repro.service.gateway.EnforcementGateway` into a networked
service: each TCP connection is one client *session* (authenticated by
the ``hello`` handshake, mapped to a gateway user), each ``query``
frame becomes one :class:`~repro.service.request.QueryRequest`, and
every outcome — rows, rejection, timeout, overload — travels back as
typed frames (:mod:`repro.net.protocol`).

Design points:

* **one event loop, many sessions** — the asyncio loop only parses
  frames and submits work; the gateway's worker pool does the actual
  checking/execution on its own threads.  Completion is bridged back
  with :meth:`PendingQuery.add_done_callback` +
  ``loop.call_soon_threadsafe`` — no thread, poller, or executor slot
  is held per in-flight request, so thousands of concurrent sessions
  cost one socket and a little state each;
* **deadline propagation** — a ``deadline`` on the query frame flows
  into the request's :class:`~repro.service.context.QueryContext`, so
  the wire deadline is the same cooperative deadline that kills
  runaway scans and inference loops in-process;
* **cancellation on disconnect** — when a connection drops (EOF,
  reset, or an injected ``net.*`` chaos fault), every request still in
  flight for that session is cancelled through its context: no work
  keeps running for an answer nobody can receive, and the gateway
  audits the cancelled request exactly once like any other;
* **backpressure, not collapse** — admission control stays in the
  gateway: when its bounded queue is full, ``submit`` raises
  :class:`~repro.errors.ServiceOverloaded` and the server answers an
  ``overloaded`` error frame immediately.  An open-loop load sweep
  past saturation therefore sheds excess arrivals with a typed error
  while admitted requests keep bounded latency (benchmark E17);
* **bounded frames** — results are streamed as multiple ``row_batch``
  frames, each guaranteed to encode within ``max_frame_size``
  (:func:`~repro.net.protocol.iter_result_frames`); incoming frames
  beyond the limit close the connection before buffering the payload.

Per-query pipelining is supported: a client may have any number of
queries outstanding on one connection; responses carry the client's
request id and may interleave between queries (frames of one response
never interleave with each other — writes are serialized per
connection).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Optional

from repro.db import MODES
from repro.errors import (
    ConnectionDropped,
    FrameTooLarge,
    ProtocolError,
    ReproError,
    ServiceOverloaded,
    ServiceShutdown,
)
from repro.prepared import PreparedFallback, resolve_signature
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    DEFAULT_ROWS_PER_FRAME,
    HEADER,
    PROTOCOL_VERSION,
    code_for_status,
    decision_to_wire,
    decode_payload,
    encode_frame,
    iter_result_frames,
    sanitize_stats,
)
from repro.service.gateway import EnforcementGateway, PendingQuery
from repro.service.request import QueryRequest, QueryResponse, RequestStatus

#: network instruments, pre-created so ``\stats`` shows them at zero
NET_COUNTERS = (
    "sessions_authenticated",
    "frames_sent",
    "frames_received",
    "disconnect_cancels",
    "net_queries",
    "net_prepares",
    "net_executes",
    "net_explains",
    "net_rows_streamed",
    "net_protocol_errors",
)


class _Session:
    """Per-connection state: identity, in-flight requests, write lock."""

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter):
        self.id = next(self._ids)
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.authenticated = False
        self.user: Optional[str] = None
        self.mode: str = "non-truman"
        self.params: dict = {}
        #: request id → PendingQuery, while in flight
        self.inflight: dict[int, PendingQuery] = {}
        #: statement handle → (skeleton, n_params, signature_text)
        self.prepared: dict[int, tuple] = {}
        self._stmt_ids = itertools.count(1)
        self.closing = False

    def register_prepared(
        self, skeleton, n_params: int, signature_text: str
    ) -> int:
        handle = next(self._stmt_ids)
        self.prepared[handle] = (skeleton, n_params, signature_text)
        return handle

    def cancel_inflight(self) -> int:
        """Cancel every request still in flight; returns how many."""
        cancelled = 0
        for pending in list(self.inflight.values()):
            if pending.cancel():
                cancelled += 1
        return cancelled


class ReproServer:
    """Asyncio TCP server speaking the framed protocol over one gateway."""

    def __init__(
        self,
        gateway: EnforcementGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_size: int = DEFAULT_MAX_FRAME,
        rows_per_frame: int = DEFAULT_ROWS_PER_FRAME,
        chaos=None,
        name: str = "repro-net",
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_frame_size = max_frame_size
        self.rows_per_frame = rows_per_frame
        self.chaos = chaos
        self.name = name
        #: network metrics live in the gateway registry so ``\stats``
        #: and ``gateway.stats()`` report wire and worker state together
        self.metrics = gateway.metrics
        self.metrics.gauge("connections_open")
        for counter in NET_COUNTERS:
            self.metrics.counter(counter)
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: set[_Session] = set()
        self._tasks: set[asyncio.Task] = set()
        self.address: Optional[tuple[str, int]] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the (host, port) bound."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop every session, and reap delivery tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions):
            session.closing = True
            session.cancel_inflight()
            session.writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- chaos ------------------------------------------------------------

    def _fire_chaos(self, point: str) -> None:
        if self.chaos is not None:
            self.chaos.fire(point)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(writer)
        self._sessions.add(session)
        self.metrics.gauge("connections_open").inc()
        try:
            self._fire_chaos("net.accept")
            await self._read_loop(session, reader)
        except FrameTooLarge as exc:
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(session, None, "protocol", str(exc))
        except ProtocolError as exc:
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(session, None, "protocol", str(exc))
        except (
            asyncio.IncompleteReadError,
            ConnectionDropped,
            ConnectionError,
            OSError,
        ):
            pass  # peer vanished; cleanup below cancels its work
        finally:
            session.closing = True
            dropped = session.cancel_inflight()
            if dropped:
                self.metrics.counter("disconnect_cancels").inc(dropped)
            self._sessions.discard(session)
            self.metrics.gauge("connections_open").dec()
            writer.close()

    async def _read_loop(
        self, session: _Session, reader: asyncio.StreamReader
    ) -> None:
        while True:
            header = await reader.readexactly(HEADER.size)
            (length,) = HEADER.unpack(header)
            if length > self.max_frame_size:
                raise FrameTooLarge(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_size}-byte limit"
                )
            payload = await reader.readexactly(length)
            self.metrics.counter("frames_received").inc()
            message = decode_payload(payload)
            if not await self._dispatch(session, message):
                return

    async def _dispatch(self, session: _Session, message: dict) -> bool:
        """Handle one message; False ends the connection cleanly."""
        kind = message.get("type")
        if kind == "hello":
            await self._handle_hello(session, message)
            return True
        if kind == "goodbye":
            await self._send(session, {"type": "goodbye"})
            return False
        if kind == "cancel":
            pending = session.inflight.get(message.get("id"))
            if pending is not None:
                pending.cancel()
            return True
        if kind == "stats":
            await self._send(
                session,
                {
                    "type": "stats",
                    "id": message.get("id"),
                    "stats": sanitize_stats(self.gateway.stats()),
                },
            )
            return True
        if kind == "health":
            await self._send(
                session,
                {
                    "type": "health",
                    "id": message.get("id"),
                    "health": self._cluster_health(),
                },
            )
            return True
        if kind == "query":
            await self._handle_query(session, message)
            return True
        if kind == "explain":
            await self._handle_explain(session, message)
            return True
        if kind == "prepare":
            await self._handle_prepare(session, message)
            return True
        if kind == "execute":
            await self._handle_execute(session, message)
            return True
        self.metrics.counter("net_protocol_errors").inc()
        await self._try_send_error(
            session,
            message.get("id"),
            "protocol",
            f"unknown message type {kind!r}",
        )
        return True

    async def _handle_hello(self, session: _Session, message: dict) -> None:
        mode = message.get("mode", "non-truman")
        if mode not in MODES:
            await self._try_send_error(
                session,
                None,
                "protocol",
                f"unknown access-control mode {mode!r} "
                f"(modes: {' | '.join(MODES)})",
            )
            return
        user = message.get("user")
        session.user = None if user is None else str(user)
        session.mode = mode
        params = message.get("params") or {}
        if not isinstance(params, dict):
            await self._try_send_error(
                session, None, "protocol", "hello params must be an object"
            )
            return
        session.params = params
        first_auth = not session.authenticated
        session.authenticated = True
        if first_auth:
            self.metrics.counter("sessions_authenticated").inc()
        self._fire_chaos("net.after_hello")
        welcome = {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "server": self.name,
            "session": session.id,
            "user": session.user,
            "mode": session.mode,
        }
        # cluster deployments advertise their topology so clients and
        # operators can see what is serving them — *live* health, not
        # just a replica count: quarantined replicas are flagged
        db = self.gateway.db
        shards = getattr(db, "n_shards", None)
        if shards is not None:
            welcome["shards"] = shards
            welcome["replicas"] = len(getattr(db, "replicas", ()))
            health = self._cluster_health()
            if health is not None:
                welcome["topology"] = [
                    {
                        "name": replica["name"],
                        "state": replica["state"],
                        "serving": replica["serving"],
                        "quarantined": replica["state"] == "quarantined",
                        "lag": replica["lag"],
                        "policy_epoch": replica["policy_epoch"],
                    }
                    for replica in health["replicas"]
                ]
        await self._send(session, welcome)

    def _cluster_health(self) -> Optional[dict]:
        """The database's live health report (None off-cluster)."""
        report = getattr(self.gateway.db, "cluster_health", None)
        if report is None:
            return None
        return report()

    async def _handle_query(self, session: _Session, message: dict) -> None:
        request_id = message.get("id")
        if not isinstance(request_id, int):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, None, "protocol", "query frame needs an integer id"
            )
            return
        if not session.authenticated:
            await self._try_send_error(
                session,
                request_id,
                "auth",
                "session is not authenticated; send a hello frame first",
            )
            return
        sql = message.get("sql")
        if not isinstance(sql, str):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, request_id, "protocol", "query frame needs a sql string"
            )
            return
        mode = message.get("mode") or session.mode
        if mode not in MODES:
            await self._try_send_error(
                session,
                request_id,
                "protocol",
                f"unknown access-control mode {mode!r}",
            )
            return
        request = QueryRequest(
            user=session.user,
            sql=sql,
            params=session.params,
            mode=mode,
            deadline=message.get("deadline"),
            tag=message.get("tag"),
            engine=message.get("engine"),
            row_budget=message.get("row_budget"),
            memory_budget=message.get("memory_budget"),
        )
        await self._submit_request(session, request_id, request)

    async def _handle_explain(self, session: _Session, message: dict) -> None:
        """``explain``: validity check + decision trace, no execution."""
        request_id = message.get("id")
        if not isinstance(request_id, int):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, None, "protocol", "explain frame needs an integer id"
            )
            return
        if not session.authenticated:
            await self._try_send_error(
                session,
                request_id,
                "auth",
                "session is not authenticated; send a hello frame first",
            )
            return
        sql = message.get("sql")
        if not isinstance(sql, str):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, request_id, "protocol",
                "explain frame needs a sql string",
            )
            return
        mode = message.get("mode") or session.mode
        if mode not in MODES:
            await self._try_send_error(
                session,
                request_id,
                "protocol",
                f"unknown access-control mode {mode!r}",
            )
            return
        from repro.rebac.trace import explain_query, render_report

        db = self.gateway.db
        loop = asyncio.get_running_loop()

        def _trace():
            conn = db.connect(user_id=session.user, mode=mode,
                              **dict(session.params))
            return explain_query(db, sql, conn.session)

        try:
            # the validity check may run probe queries; keep it off the
            # event loop like the gateway keeps query work off it
            report = await loop.run_in_executor(None, _trace)
        except ReproError as exc:
            await self._try_send_error(session, request_id, "error", str(exc))
            return
        self.metrics.counter("net_explains").inc()
        await self._send(
            session,
            {
                "type": "explain",
                "id": request_id,
                "report": report.as_dict(),
                "rendered": render_report(report),
            },
        )

    async def _handle_prepare(self, session: _Session, message: dict) -> None:
        """``prepare``: parse + literal-strip once, answer a handle."""
        request_id = message.get("id")
        if not isinstance(request_id, int):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, None, "protocol", "prepare frame needs an integer id"
            )
            return
        if not session.authenticated:
            await self._try_send_error(
                session,
                request_id,
                "auth",
                "session is not authenticated; send a hello frame first",
            )
            return
        sql = message.get("sql")
        if not isinstance(sql, str):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, request_id, "protocol", "prepare frame needs a sql string"
            )
            return
        try:
            skeleton, literals, signature_text = resolve_signature(
                self.gateway.db, sql
            )
        except PreparedFallback as exc:
            await self._try_send_error(
                session, request_id, "error", f"cannot prepare: {exc}"
            )
            return
        except ReproError as exc:
            await self._try_send_error(session, request_id, "error", str(exc))
            return
        handle = session.register_prepared(
            skeleton, len(literals), signature_text
        )
        self.metrics.counter("net_prepares").inc()
        await self._send(
            session,
            {
                "type": "prepared",
                "id": request_id,
                "statement": handle,
                "params": len(literals),
                "signature": signature_text,
            },
        )

    async def _handle_execute(self, session: _Session, message: dict) -> None:
        """``execute``: bind positional args to a prepared handle."""
        request_id = message.get("id")
        if not isinstance(request_id, int):
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session, None, "protocol", "execute frame needs an integer id"
            )
            return
        entry = session.prepared.get(message.get("statement"))
        if entry is None:
            await self._try_send_error(
                session,
                request_id,
                "error",
                f"unknown prepared statement {message.get('statement')!r}",
            )
            return
        skeleton, n_params, signature_text = entry
        args = message.get("args") or []
        if not isinstance(args, list) or len(args) != n_params:
            got = len(args) if isinstance(args, list) else f"{args!r}"
            await self._try_send_error(
                session,
                request_id,
                "error",
                f"prepared statement takes {n_params} argument(s), got {got}",
            )
            return
        literals = tuple(args)
        try:
            hash(literals)
        except TypeError:
            self.metrics.counter("net_protocol_errors").inc()
            await self._try_send_error(
                session,
                request_id,
                "protocol",
                "execute args must be scalar literals",
            )
            return
        mode = message.get("mode") or session.mode
        if mode not in MODES:
            await self._try_send_error(
                session,
                request_id,
                "protocol",
                f"unknown access-control mode {mode!r}",
            )
            return
        request = QueryRequest(
            user=session.user,
            sql=signature_text,
            params=session.params,
            mode=mode,
            deadline=message.get("deadline"),
            tag=message.get("tag"),
            engine=message.get("engine"),
            row_budget=message.get("row_budget"),
            memory_budget=message.get("memory_budget"),
            skeleton=skeleton,
            literals=literals,
        )
        self.metrics.counter("net_executes").inc()
        await self._submit_request(session, request_id, request)

    async def _submit_request(
        self, session: _Session, request_id: int, request: QueryRequest
    ) -> None:
        try:
            pending = self.gateway.submit(request)
        except ServiceOverloaded as exc:
            await self._try_send_error(
                session, request_id, "overloaded", str(exc)
            )
            return
        except ServiceShutdown as exc:
            await self._try_send_error(session, request_id, "shutdown", str(exc))
            return
        self.metrics.counter("net_queries").inc()
        session.inflight[request_id] = pending
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _resolved(response: QueryResponse) -> None:
            loop.call_soon_threadsafe(_complete, response)

        def _complete(response: QueryResponse) -> None:
            if not future.done():
                future.set_result(response)

        pending.add_done_callback(_resolved)
        task = asyncio.ensure_future(
            self._deliver(session, request_id, future)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _deliver(
        self, session: _Session, request_id: int, future: asyncio.Future
    ) -> None:
        """Wait for the gateway's terminal response and stream it out."""
        response: QueryResponse = await future
        session.inflight.pop(request_id, None)
        if session.closing:
            return  # nobody to answer; the request was cancelled on drop
        try:
            await self._send_response(session, request_id, response)
        except (ConnectionDropped, ConnectionError, OSError):
            # the client vanished between resolve and write; the read
            # loop's cleanup handles cancellation of anything else
            pass

    async def _send_response(
        self, session: _Session, request_id: int, response: QueryResponse
    ) -> None:
        if response.status is RequestStatus.OK:
            columns: list[str] = []
            frames = 0
            if response.result is not None:
                columns = list(response.result.columns)
                for frame in iter_result_frames(
                    request_id,
                    response.result.rows,
                    max_frame_size=self.max_frame_size,
                    rows_per_frame=self.rows_per_frame,
                ):
                    await self._send(session, frame)
                    frames += 1
                    self.metrics.counter("net_rows_streamed").inc(
                        len(frame["rows"])
                    )
            await self._send(
                session,
                {
                    "type": "result",
                    "id": request_id,
                    "status": "ok",
                    "columns": columns,
                    "row_frames": frames,
                    "rowcount": response.rowcount,
                    "cache_hit": response.cache_hit,
                    "retries": response.retries,
                    "timing": response.timing.as_dict(),
                    "decision": decision_to_wire(response.decision),
                },
            )
            return
        await self._send(
            session,
            {
                "type": "error",
                "id": request_id,
                "code": code_for_status(response.status.value),
                "message": response.error or response.status.value,
                "retries": response.retries,
                "timing": response.timing.as_dict(),
                "decision": decision_to_wire(response.decision),
            },
        )

    # -- frame writing -----------------------------------------------------

    async def _send(self, session: _Session, message: dict) -> None:
        data = encode_frame(message, self.max_frame_size)
        async with session.write_lock:
            try:
                self._fire_chaos("net.before_send")
            except ConnectionDropped:
                # simulate the peer vanishing mid-write: tear the
                # connection down; the read loop unwinds and cancels
                session.closing = True
                session.writer.close()
                raise
            session.writer.write(data)
            await session.writer.drain()
            self.metrics.counter("frames_sent").inc()

    async def _try_send_error(
        self,
        session: _Session,
        request_id: Optional[int],
        code: str,
        message: str,
    ) -> None:
        try:
            await self._send(
                session,
                {
                    "type": "error",
                    "id": request_id,
                    "code": code,
                    "message": message,
                },
            )
        except (ConnectionDropped, ConnectionError, OSError):
            pass


class NetworkService:
    """Thread wrapper: run a :class:`ReproServer` on a background event
    loop so synchronous code (tests, the CLI shell, benchmarks) can
    start/stop a live server without owning an asyncio loop."""

    def __init__(self, gateway: EnforcementGateway, **server_kwargs):
        self.gateway = gateway
        self.server = ReproServer(gateway, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[tuple[str, int]] = None

    def start(self) -> tuple[str, int]:
        """Start serving on a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run, name=f"{self.server.name}-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.address = await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "NetworkService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
