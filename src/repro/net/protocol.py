"""Wire protocol of the network front end.

Framing
-------
Every protocol message is one *frame*: a 4-byte big-endian unsigned
length prefix followed by that many bytes of UTF-8 JSON encoding a
single object.  Both sides enforce a maximum frame size — an incoming
length beyond the limit is a :class:`~repro.errors.FrameTooLarge`
protocol violation and closes the connection *before* any payload is
buffered, so a hostile peer cannot make the server allocate an
unbounded buffer.

Large results never need large frames: the server chunks result rows
into as many ``row_batch`` frames as needed
(:func:`iter_result_frames`), each guaranteed to encode within the
limit, and finishes with one ``result`` frame carrying the metadata.

Message flow
------------
Client → server::

    {"type": "hello", "user": ..., "mode": ..., "params": {...}}
    {"type": "query", "id": n, "sql": ..., "deadline": ..., ...}
    {"type": "prepare", "id": n, "sql": ..., "mode": ...}
    {"type": "execute", "id": n, "statement": s, "args": [...], ...}
    {"type": "cancel", "id": n}
    {"type": "stats", "id": n}
    {"type": "health", "id": n}
    {"type": "explain", "id": n, "sql": ..., "mode": ...}
    {"type": "goodbye"}

Server → client::

    {"type": "welcome", "protocol": 1, "server": ..., "session": ...,
     "topology": [{"name": ..., "state": ..., "quarantined": ...}, ...]}
    {"type": "prepared", "id": n, "statement": s, "params": k,
     "signature": ...}
    {"type": "row_batch", "id": n, "seq": k, "rows": [[...], ...]}
    {"type": "result", "id": n, "status": "ok", "columns": [...], ...}
    {"type": "error", "id": n, "code": ..., "message": ..., ...}
    {"type": "stats", "id": n, "stats": {...}}
    {"type": "health", "id": n, "health": {...} | null}
    {"type": "explain", "id": n, "report": {...}, "rendered": [...]}
    {"type": "goodbye"}

Against a cluster deployment the ``welcome`` frame carries a
``topology`` list reflecting *live* replica health — one entry per
replica with its lifecycle state, a ``quarantined`` flag, lag, and
observed policy epoch — and the ``health`` request polls the same
report on demand (``health`` is ``null`` against a single-node
server).  See :mod:`repro.cluster.health` for the state machine.

``explain`` runs the Non-Truman validity check *without executing the
query* and answers the full decision trace
(:mod:`repro.rebac.trace`): validity, reason, inference rules fired,
views used, and — when the database carries a compiled ReBAC policy —
the relationship-tuple chains that justify (or fail to justify) the
access.  ``report`` is the structured
:meth:`~repro.rebac.trace.ExplainReport.as_dict` shape; ``rendered``
is the same report as display lines, identical to what the local
shell's ``\\explain`` prints.

Prepared statements (paper §5.6): ``prepare`` parses and
literal-strips the query once, server-side, and answers a ``prepared``
frame naming the per-session statement handle and its parameter count
(one ``$_litN`` placeholder per stripped literal, in query order).
``execute`` binds positional ``args`` to those placeholders and runs
through the gateway's template cache — no parse on the hot path.
Responses to ``execute`` are ordinary ``row_batch``/``result``/
``error`` frames.  Plain repeated ``query`` frames get the same
template treatment transparently; ``prepare`` just pins the handle
and skips even the text-cache lookup.

Typed errors
------------
Error frames carry a ``code`` that mirrors the gateway's typed failure
modes; :func:`error_for_code` maps a code back to the exception class
clients of the in-process gateway already handle (``timeout`` →
:class:`~repro.errors.QueryTimeout`, ``overloaded`` →
:class:`~repro.errors.ServiceOverloaded`, ``rejected`` →
:class:`~repro.errors.QueryRejectedError`, ...), so switching an
application from the library to the wire changes *how* it connects,
not *what* it catches.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import (
    AccessControlError,
    FrameTooLarge,
    ProtocolError,
    QueryCancelled,
    QueryRejectedError,
    QueryTimeout,
    ReproError,
    ResourceBudgetExceeded,
    ServiceDegraded,
    ServiceOverloaded,
    ServiceShutdown,
)

#: protocol revision announced in hello/welcome; bumped on breaking change
PROTOCOL_VERSION = 1

#: length prefix: 4-byte big-endian unsigned
HEADER = struct.Struct(">I")

#: default maximum encoded frame size (length prefix excluded)
DEFAULT_MAX_FRAME = 1 << 20  # 1 MiB

#: default row count the server *aims* for per row_batch frame; the
#: byte-size guard in :func:`iter_result_frames` always wins
DEFAULT_ROWS_PER_FRAME = 1024


# -- typed error codes ----------------------------------------------------

#: wire code → exception class raised client-side
ERROR_CLASSES = {
    "timeout": QueryTimeout,
    "cancelled": QueryCancelled,
    "overloaded": ServiceOverloaded,
    "rejected": QueryRejectedError,
    "budget": ResourceBudgetExceeded,
    "degraded": ServiceDegraded,
    "shutdown": ServiceShutdown,
    "auth": AccessControlError,
    "protocol": ProtocolError,
    "error": ReproError,
}


def error_for_code(
    code: str, message: str, decision: Optional[dict] = None
) -> ReproError:
    """Instantiate the typed exception a wire error code stands for."""
    cls = ERROR_CLASSES.get(code, ReproError)
    if cls is QueryRejectedError:
        return QueryRejectedError(message, decision=decision)
    return cls(message)


def code_for_status(status: str) -> str:
    """Wire error code for a non-OK gateway RequestStatus value."""
    return {
        "timeout": "timeout",
        "cancelled": "cancelled",
        "rejected": "rejected",
        "degraded": "degraded",
        "error": "error",
    }.get(status, "error")


# -- frame encode / decode ------------------------------------------------


def encode_payload(message: dict) -> bytes:
    """JSON-encode one message (compact separators, UTF-8)."""
    try:
        return json.dumps(
            message, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from None


def encode_frame(message: dict, max_frame_size: int = DEFAULT_MAX_FRAME) -> bytes:
    """Length-prefixed frame for ``message``; enforces the size guard."""
    payload = encode_payload(message)
    if len(payload) > max_frame_size:
        raise FrameTooLarge(
            f"encoded frame of {len(payload)} bytes exceeds the "
            f"{max_frame_size}-byte limit"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Decode one frame payload; must be a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must encode a JSON object, got {type(message).__name__}"
        )
    return message


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed it whatever chunks the transport hands you; it yields complete
    decoded messages and raises :class:`FrameTooLarge` as soon as a
    header announces an oversized frame (without buffering the body).
    """

    def __init__(self, max_frame_size: int = DEFAULT_MAX_FRAME):
        self.max_frame_size = max_frame_size
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[dict]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < HEADER.size:
                return
            (length,) = HEADER.unpack_from(self._buffer)
            if length > self.max_frame_size:
                raise FrameTooLarge(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_size}-byte limit"
                )
            if len(self._buffer) < HEADER.size + length:
                return
            payload = bytes(self._buffer[HEADER.size : HEADER.size + length])
            del self._buffer[: HEADER.size + length]
            yield decode_payload(payload)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- result streaming ------------------------------------------------------


def iter_result_frames(
    request_id: int,
    rows: Sequence[tuple],
    max_frame_size: int = DEFAULT_MAX_FRAME,
    rows_per_frame: int = DEFAULT_ROWS_PER_FRAME,
) -> Iterator[dict]:
    """Chunk result rows into ``row_batch`` messages.

    Every yielded message is guaranteed to encode within
    ``max_frame_size``: rows are accumulated by their *exact* encoded
    size (the JSON of a batch is the concatenation of its row encodings
    plus fixed framing), flushing whenever the next row would overflow
    the budget or the batch reaches ``rows_per_frame`` rows.  A single
    row that cannot fit in a frame by itself raises
    :class:`FrameTooLarge` — the caller answers a typed error instead
    of shipping an unframeable payload.

    Yields nothing for an empty result; the terminal ``result`` frame
    (built by the server) carries the column names either way.
    """
    # byte budget for the joined row encodings inside this envelope
    envelope = encode_payload(
        {"type": "row_batch", "id": request_id, "seq": 0, "rows": []}
    )
    # seq may grow to several digits; reserve a little slack for it
    budget = max_frame_size - len(envelope) - 16
    if budget <= 0:
        raise FrameTooLarge(
            f"max_frame_size of {max_frame_size} bytes cannot fit even an "
            "empty row_batch envelope"
        )
    seq = 0
    batch: list[tuple] = []
    batch_bytes = 0
    for row in rows:
        encoded = len(encode_payload({"r": list(row)})) - len('{"r":}')
        if encoded > budget:
            raise FrameTooLarge(
                f"a single result row encodes to {encoded} bytes, beyond "
                f"the {max_frame_size}-byte frame limit"
            )
        # +1 for the comma joining it to the previous row
        if batch and (
            batch_bytes + 1 + encoded > budget or len(batch) >= rows_per_frame
        ):
            yield {
                "type": "row_batch",
                "id": request_id,
                "seq": seq,
                "rows": [list(r) for r in batch],
            }
            seq += 1
            batch = []
            batch_bytes = 0
        batch.append(row)
        batch_bytes += encoded + (1 if batch_bytes else 0)
    if batch:
        yield {
            "type": "row_batch",
            "id": request_id,
            "seq": seq,
            "rows": [list(r) for r in batch],
        }


# -- decision serialization ------------------------------------------------


def decision_to_wire(decision) -> Optional[dict]:
    """JSON shape of a ValidityDecision (trace and provenance kept)."""
    if decision is None:
        return None
    return {
        "validity": decision.validity.value,
        "reason": decision.reason,
        "rules": [step.rule for step in decision.trace],
        "views_used": list(decision.views_used),
        "probes_executed": decision.probes_executed,
        "from_cache": decision.from_cache,
    }


def sanitize_stats(stats: dict) -> dict:
    """Stats snapshot with every value coerced to a JSON-safe scalar."""
    out: dict[str, object] = {}
    for key, value in stats.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def rows_to_tuples(rows: Iterable[Sequence]) -> list[tuple]:
    """Wire rows (JSON arrays) back to the engine's tuple shape."""
    return [tuple(row) for row in rows]
