"""Thin clients for the network front end.

Two flavours over the same framed protocol:

* :class:`ReproClient` — blocking, one socket, one outstanding query
  at a time.  The natural client for scripts, the remote CLI shell,
  and tests;
* :class:`AsyncReproClient` — asyncio, multiplexes any number of
  in-flight queries over one connection (responses are correlated by
  request id).  The building block of the open-loop load generator.

Both raise the *same typed exceptions* as the in-process gateway:
``QueryTimeout``, ``QueryCancelled``, ``ServiceOverloaded``,
``QueryRejectedError`` (access denied), ``ServiceDegraded`` — decoded
from the error frame's code (:func:`~repro.net.protocol.error_for_code`).
Moving an application from the library to the wire changes its
transport, not its error handling.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cluster.health import backoff_delays
from repro.errors import (
    ConnectionDropped,
    ConnectionLostError,
    ProtocolError,
    ReconnectExhausted,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    PROTOCOL_VERSION,
    encode_frame,
    error_for_code,
    rows_to_tuples,
)


@dataclass
class ClientResult:
    """Outcome of one accepted query, reassembled from the wire.

    Mirrors the in-process :class:`~repro.db.Result` surface
    (``columns`` / ``rows``) plus the response metadata the gateway
    reports (decision, cache hit, timing, retries).
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    rowcount: Optional[int] = None
    decision: Optional[dict] = None
    cache_hit: bool = False
    retries: int = 0
    timing: dict = field(default_factory=dict)
    #: number of row_batch frames the result arrived in
    row_frames: int = 0

    @property
    def ok(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def _query_message(
    request_id: int,
    sql: str,
    *,
    mode: Optional[str] = None,
    deadline: Optional[float] = None,
    engine: Optional[str] = None,
    tag: Optional[str] = None,
    row_budget: Optional[int] = None,
    memory_budget: Optional[int] = None,
) -> dict:
    message: dict = {"type": "query", "id": request_id, "sql": sql}
    if mode is not None:
        message["mode"] = mode
    if deadline is not None:
        message["deadline"] = deadline
    if engine is not None:
        message["engine"] = engine
    if tag is not None:
        message["tag"] = tag
    if row_budget is not None:
        message["row_budget"] = row_budget
    if memory_budget is not None:
        message["memory_budget"] = memory_budget
    return message


def _execute_message(
    request_id: int, statement_id: int, args: Sequence, **options
) -> dict:
    message = _query_message(request_id, "", **options)
    del message["sql"]
    message["type"] = "execute"
    message["statement"] = statement_id
    message["args"] = list(args)
    return message


class PreparedStatement:
    """Server-side prepared statement handle (blocking client).

    Created by :meth:`ReproClient.prepare`; ``execute(*args)`` binds
    positional values to the statement's ``$_litN`` placeholders (in
    the literal order of the original query) and runs it through the
    server's template cache.
    """

    def __init__(
        self, client: "ReproClient", statement_id: int, n_params: int,
        signature: str,
    ):
        self._client = client
        self.statement_id = statement_id
        self.n_params = n_params
        self.signature = signature

    def execute(self, *args, **options) -> ClientResult:
        """Bind ``args`` and run; same options as
        :meth:`ReproClient.query` (mode, deadline, engine, ...)."""
        return self._client._execute_prepared(self, args, options)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PreparedStatement(id={self.statement_id}, "
            f"params={self.n_params}, signature={self.signature!r})"
        )


class AsyncPreparedStatement:
    """Server-side prepared statement handle (async client)."""

    def __init__(
        self, client: "AsyncReproClient", statement_id: int, n_params: int,
        signature: str,
    ):
        self._client = client
        self.statement_id = statement_id
        self.n_params = n_params
        self.signature = signature

    async def execute(self, *args, **options) -> ClientResult:
        return await self._client._execute_prepared(self, args, options)


class _ResultAssembler:
    """Accumulates row_batch frames until the terminal frame arrives."""

    def __init__(self):
        self.rows: list[tuple] = []
        self.frames = 0

    def feed_batch(self, message: dict) -> None:
        self.rows.extend(rows_to_tuples(message.get("rows", ())))
        self.frames += 1

    def finish(self, message: dict) -> ClientResult:
        return ClientResult(
            columns=tuple(message.get("columns", ())),
            rows=self.rows,
            rowcount=message.get("rowcount"),
            decision=message.get("decision"),
            cache_hit=bool(message.get("cache_hit")),
            retries=int(message.get("retries", 0)),
            timing=message.get("timing") or {},
            row_frames=self.frames,
        )


def _raise_wire_error(message: dict) -> None:
    raise error_for_code(
        message.get("code", "error"),
        message.get("message", "unspecified server error"),
        decision=message.get("decision"),
    )


# -- blocking client -------------------------------------------------------


def _idempotent_read(sql: str) -> bool:
    """True when re-sending ``sql`` after a lost connection is safe."""
    return sql.lstrip().lower().startswith("select")


class ReproClient:
    """Blocking protocol client: connect, hello, query, close.

    One outstanding query at a time; server frames for that query are
    consumed in order.  Use :class:`AsyncReproClient` for pipelining.

    ``reconnect=True`` opts in to transparent reconnect-and-retry when
    an established connection dies under an **idempotent read** (a
    SELECT, a stats/health fetch, or an explain).  Up to
    ``reconnect_attempts`` redials are made with exponential backoff
    plus equal jitter (``reconnect_backoff`` doubling up to
    ``reconnect_backoff_cap`` seconds); if every attempt fails a typed
    :class:`~repro.errors.ReconnectExhausted` is raised carrying the
    attempt count and the last low-level error.  Writes and prepared
    executes never retry — the first attempt may have been applied.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        user: Optional[str] = None,
        mode: str = "non-truman",
        params: Optional[dict] = None,
        connect_timeout: Optional[float] = 10.0,
        max_frame_size: int = DEFAULT_MAX_FRAME,
        reconnect: bool = False,
        reconnect_attempts: int = 5,
        reconnect_backoff: float = 0.05,
        reconnect_backoff_cap: float = 1.0,
        reconnect_seed: Optional[int] = None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_cap = reconnect_backoff_cap
        self._backoff_rng = random.Random(reconnect_seed)
        self._sleep: Callable[[float], None] = time.sleep
        self._sock = socket.create_connection((host, port), connect_timeout)
        # frame-level timeouts are the server's job (deadlines); the
        # socket itself blocks until the server answers or drops
        self._sock.settimeout(None)
        self._decoder = FrameDecoder(max_frame_size)
        self._inbox: list[dict] = []
        self._ids = itertools.count(1)
        self.max_frame_size = max_frame_size
        self.server_info: dict = {}
        self.reconnects = 0
        self.hello(user=user, mode=mode, params=params)

    # -- transport --------------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            self._sock.sendall(encode_frame(message, self.max_frame_size))
        except OSError as exc:
            raise ConnectionLostError(
                f"connection lost while sending: {exc}"
            ) from None

    def _next_message(self) -> dict:
        while not self._inbox:
            try:
                data = self._sock.recv(65536)
            except OSError as exc:
                raise ConnectionLostError(
                    f"connection lost while receiving: {exc}"
                ) from None
            if not data:
                raise ConnectionLostError("server closed the connection")
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    def _reconnect(self) -> None:
        """Re-establish the socket and re-authenticate the session."""
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), self._connect_timeout
            )
        except OSError as exc:
            raise ConnectionLostError(f"reconnect failed: {exc}") from None
        self._sock.settimeout(None)
        self._decoder = FrameDecoder(self.max_frame_size)
        self._inbox = []
        self.reconnects += 1
        self.hello(*self._hello_args)

    def _retry_idempotent(self, fn: Callable[[], "ClientResult | dict | None"]):
        """Run ``fn``; on a lost connection, redial-and-retry within the
        bounded backoff budget (only when ``reconnect`` is enabled)."""
        try:
            return fn()
        except ConnectionLostError as exc:
            if not self.reconnect:
                raise
            last_error: Exception = exc
        delays = backoff_delays(
            self.reconnect_attempts,
            base=self.reconnect_backoff,
            cap=self.reconnect_backoff_cap,
            rng=self._backoff_rng,
        )
        for delay in delays:
            self._sleep(delay)
            try:
                self._reconnect()
                return fn()
            except ConnectionLostError as exc:
                last_error = exc
        raise ReconnectExhausted(
            f"connection lost and {self.reconnect_attempts} reconnect "
            f"attempts failed (last error: {last_error})",
            attempts=self.reconnect_attempts,
            last_error=last_error,
        )

    # -- session ----------------------------------------------------------

    def hello(
        self,
        user: Optional[str] = None,
        mode: str = "non-truman",
        params: Optional[dict] = None,
    ) -> dict:
        """(Re-)authenticate this connection; returns the welcome frame."""
        self._hello_args = (user, mode, params)
        self._send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "user": user,
                "mode": mode,
                "params": params or {},
            }
        )
        message = self._next_message()
        if message.get("type") == "error":
            _raise_wire_error(message)
        if message.get("type") != "welcome":
            raise ProtocolError(
                f"expected welcome frame, got {message.get('type')!r}"
            )
        self.server_info = message
        self.user = message.get("user")
        self.mode = message.get("mode")
        return message

    # -- queries ----------------------------------------------------------

    def start_query(self, sql: str, **options) -> int:
        """Send a query frame without waiting; returns its request id.

        Mainly for tests that need to drop the connection mid-query;
        normal callers use :meth:`query`.
        """
        request_id = next(self._ids)
        self._send(_query_message(request_id, sql, **options))
        return request_id

    def finish_query(self, request_id: int) -> ClientResult:
        """Collect frames until ``request_id`` reaches a terminal frame."""
        assembler = _ResultAssembler()
        while True:
            message = self._next_message()
            kind = message.get("type")
            if message.get("id") != request_id:
                # single-outstanding discipline: any other id is a bug
                raise ProtocolError(
                    f"response for unexpected request id {message.get('id')!r}"
                )
            if kind == "row_batch":
                assembler.feed_batch(message)
            elif kind == "result":
                return assembler.finish(message)
            elif kind == "error":
                _raise_wire_error(message)
            else:
                raise ProtocolError(f"unexpected frame type {kind!r}")

    def query(self, sql: str, **options) -> ClientResult:
        """Run one query; raises the typed error on non-OK outcomes.

        Options: ``mode``, ``deadline``, ``engine``, ``tag``,
        ``row_budget``, ``memory_budget`` — the same knobs as
        :class:`~repro.service.request.QueryRequest`.
        """
        if self.reconnect and _idempotent_read(sql):
            return self._retry_idempotent(
                lambda: self.finish_query(self.start_query(sql, **options))
            )
        return self.finish_query(self.start_query(sql, **options))

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse + literal-strip ``sql`` server-side once; returns a
        :class:`PreparedStatement` whose ``execute(*args)`` binds new
        literal values without re-sending (or re-parsing) the text."""
        request_id = next(self._ids)
        self._send({"type": "prepare", "id": request_id, "sql": sql})
        message = self._next_message()
        kind = message.get("type")
        if kind == "error":
            _raise_wire_error(message)
        if kind != "prepared" or message.get("id") != request_id:
            raise ProtocolError(f"expected prepared frame, got {kind!r}")
        return PreparedStatement(
            self,
            message["statement"],
            int(message.get("params", 0)),
            message.get("signature", ""),
        )

    def _execute_prepared(
        self, statement: PreparedStatement, args: Sequence, options: dict
    ) -> ClientResult:
        request_id = next(self._ids)
        self._send(
            _execute_message(request_id, statement.statement_id, args, **options)
        )
        return self.finish_query(request_id)

    def cancel(self, request_id: int) -> None:
        """Ask the server to cancel an in-flight request."""
        self._send({"type": "cancel", "id": request_id})

    def explain(self, sql: str, mode: Optional[str] = None) -> dict:
        """Decision trace for ``sql`` without executing it.

        Returns ``{"report": {...}, "rendered": [...]}`` — the
        structured :class:`~repro.rebac.trace.ExplainReport` dict plus
        its display lines (what the local shell's ``\\explain``
        prints).  An explain is an idempotent read, so it takes part in
        the transparent reconnect like ``query``/``stats`` do.
        """
        return self._retry_idempotent(lambda: self._fetch_explain(sql, mode))

    def _fetch_explain(self, sql: str, mode: Optional[str]) -> dict:
        request_id = next(self._ids)
        message: dict = {"type": "explain", "id": request_id, "sql": sql}
        if mode is not None:
            message["mode"] = mode
        self._send(message)
        message = self._next_message()
        if message.get("type") == "error":
            _raise_wire_error(message)
        if message.get("type") != "explain":
            raise ProtocolError(
                f"expected explain frame, got {message.get('type')!r}"
            )
        return {
            "report": message.get("report", {}),
            "rendered": list(message.get("rendered", ())),
        }

    def stats(self) -> dict:
        """The gateway's merged stats snapshot, fetched over the wire."""
        return self._retry_idempotent(self._fetch_stats)

    def _fetch_stats(self) -> dict:
        request_id = next(self._ids)
        self._send({"type": "stats", "id": request_id})
        message = self._next_message()
        if message.get("type") == "error":
            _raise_wire_error(message)
        if message.get("type") != "stats":
            raise ProtocolError(
                f"expected stats frame, got {message.get('type')!r}"
            )
        return message.get("stats", {})

    def health(self) -> Optional[dict]:
        """Live cluster-health report (replica states, lag, epochs,
        divergence counters); ``None`` against a single-node server."""
        return self._retry_idempotent(self._fetch_health)

    def _fetch_health(self) -> Optional[dict]:
        request_id = next(self._ids)
        self._send({"type": "health", "id": request_id})
        message = self._next_message()
        if message.get("type") == "error":
            _raise_wire_error(message)
        if message.get("type") != "health":
            raise ProtocolError(
                f"expected health frame, got {message.get('type')!r}"
            )
        return message.get("health")

    # -- lifecycle --------------------------------------------------------

    def close(self, goodbye: bool = True) -> None:
        """Close the connection (politely by default)."""
        try:
            if goodbye:
                self._send({"type": "goodbye"})
                # wait for the goodbye ack so in-order delivery is done
                while True:
                    if self._next_message().get("type") == "goodbye":
                        break
        except (ConnectionDropped, ProtocolError, OSError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def drop(self) -> None:
        """Abruptly close the socket — no goodbye; the server must
        cancel whatever this session had in flight."""
        self.close(goodbye=False)

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- async client ----------------------------------------------------------


class AsyncReproClient:
    """Asyncio client multiplexing many in-flight queries per connection.

    A background reader task routes incoming frames to per-request
    futures by id, so ``query()`` can be awaited concurrently from any
    number of tasks over one socket — the transport shape the open-loop
    load generator needs.

    ``reconnect=True`` mirrors the blocking client: idempotent reads
    (SELECTs, stats/health fetches) that die with the connection are
    transparently retried over up to ``reconnect_attempts`` redials
    with exponential backoff + jitter, ending in a typed
    :class:`~repro.errors.ReconnectExhausted` when the budget runs out.
    """

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder: Optional[FrameDecoder] = None
        self._ids = itertools.count(1)
        self._pending: dict[int, tuple[_ResultAssembler, asyncio.Future]] = {}
        self._welcome: Optional[asyncio.Future] = None
        self._stats_waiters: dict[int, asyncio.Future] = {}
        self._health_waiters: dict[int, asyncio.Future] = {}
        self._prepare_waiters: dict[int, asyncio.Future] = {}
        self._explain_waiters: dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._closed = False
        self.max_frame_size = DEFAULT_MAX_FRAME
        self.server_info: dict = {}
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._hello_args: tuple = (None, "non-truman", None)
        self.reconnect = False
        self.reconnect_attempts = 5
        self.reconnect_backoff = 0.05
        self.reconnect_backoff_cap = 1.0
        self._backoff_rng = random.Random()
        self.reconnects = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        user: Optional[str] = None,
        mode: str = "non-truman",
        params: Optional[dict] = None,
        max_frame_size: int = DEFAULT_MAX_FRAME,
        reconnect: bool = False,
        reconnect_attempts: int = 5,
        reconnect_backoff: float = 0.05,
        reconnect_backoff_cap: float = 1.0,
        reconnect_seed: Optional[int] = None,
    ) -> "AsyncReproClient":
        client = cls()
        client.max_frame_size = max_frame_size
        client._host = host
        client._port = port
        client.reconnect = reconnect
        client.reconnect_attempts = reconnect_attempts
        client.reconnect_backoff = reconnect_backoff
        client.reconnect_backoff_cap = reconnect_backoff_cap
        client._backoff_rng = random.Random(reconnect_seed)
        client._reader, client._writer = await asyncio.open_connection(
            host, port
        )
        client._decoder = FrameDecoder(max_frame_size)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        await client.hello(user=user, mode=mode, params=params)
        return client

    # -- transport --------------------------------------------------------

    async def _send(self, message: dict) -> None:
        if self._closed or self._writer is None:
            raise ConnectionDropped("client is closed")
        data = encode_frame(message, self.max_frame_size)
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ConnectionLostError(
                f"connection lost while sending: {exc}"
            ) from None

    async def _read_loop(self) -> None:
        assert self._reader is not None and self._decoder is not None
        error: BaseException = ConnectionDropped("server closed the connection")
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for message in self._decoder.feed(data):
                    self._route(message)
        except (ConnectionError, OSError) as exc:
            error = ConnectionLostError(f"connection lost: {exc}")
        except ProtocolError as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionDropped("client closed")
        # fail every outstanding waiter with the terminal error
        for assembler_future in list(self._pending.values()):
            _, future = assembler_future
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        for future in list(self._stats_waiters.values()):
            if not future.done():
                future.set_exception(error)
        self._stats_waiters.clear()
        for future in list(self._health_waiters.values()):
            if not future.done():
                future.set_exception(error)
        self._health_waiters.clear()
        for future in list(self._prepare_waiters.values()):
            if not future.done():
                future.set_exception(error)
        self._prepare_waiters.clear()
        for future in list(self._explain_waiters.values()):
            if not future.done():
                future.set_exception(error)
        self._explain_waiters.clear()
        if self._welcome is not None and not self._welcome.done():
            self._welcome.set_exception(error)

    def _route(self, message: dict) -> None:
        kind = message.get("type")
        if kind in ("welcome",):
            if self._welcome is not None and not self._welcome.done():
                self._welcome.set_result(message)
            return
        if kind == "goodbye":
            return
        if kind == "stats":
            future = self._stats_waiters.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message.get("stats", {}))
            return
        if kind == "health":
            future = self._health_waiters.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message.get("health"))
            return
        if kind == "prepared":
            future = self._prepare_waiters.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)
            return
        if kind == "explain":
            future = self._explain_waiters.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(
                    {
                        "report": message.get("report", {}),
                        "rendered": list(message.get("rendered", ())),
                    }
                )
            return
        request_id = message.get("id")
        entry = self._pending.get(request_id)
        if entry is None:
            for waiters in (
                self._prepare_waiters,
                self._explain_waiters,
                self._stats_waiters,
                self._health_waiters,
            ):
                if kind == "error" and request_id in waiters:
                    future = waiters.pop(request_id)
                    if not future.done():
                        future.set_exception(
                            error_for_code(
                                message.get("code", "error"),
                                message.get("message", "server error"),
                            )
                        )
                    return
            if kind == "error" and request_id is None:
                # connection-level error (bad hello, protocol breach)
                if self._welcome is not None and not self._welcome.done():
                    self._welcome.set_exception(
                        error_for_code(
                            message.get("code", "error"),
                            message.get("message", "server error"),
                        )
                    )
            return
        assembler, future = entry
        if kind == "row_batch":
            assembler.feed_batch(message)
        elif kind == "result":
            self._pending.pop(request_id, None)
            if not future.done():
                future.set_result(assembler.finish(message))
        elif kind == "error":
            self._pending.pop(request_id, None)
            if not future.done():
                future.set_exception(
                    error_for_code(
                        message.get("code", "error"),
                        message.get("message", "server error"),
                        decision=message.get("decision"),
                    )
                )

    async def _reconnect(self) -> None:
        """Re-dial, restart the reader task, and re-authenticate."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
        if self._host is None or self._port is None:
            raise ConnectionDropped("client has no remembered endpoint")
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        except OSError as exc:
            raise ConnectionLostError(f"reconnect failed: {exc}") from None
        self._decoder = FrameDecoder(self.max_frame_size)
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.reconnects += 1
        await self.hello(*self._hello_args)

    async def _retry_idempotent(self, fn):
        """Await ``fn()``; redial-and-retry a lost connection within
        the bounded backoff budget (when ``reconnect`` is enabled)."""
        try:
            return await fn()
        except ConnectionLostError as exc:
            if not self.reconnect or self._closed:
                raise
            last_error: Exception = exc
        delays = backoff_delays(
            self.reconnect_attempts,
            base=self.reconnect_backoff,
            cap=self.reconnect_backoff_cap,
            rng=self._backoff_rng,
        )
        for delay in delays:
            await asyncio.sleep(delay)
            if self._closed:
                break
            try:
                await self._reconnect()
                return await fn()
            except ConnectionLostError as exc:
                last_error = exc
        raise ReconnectExhausted(
            f"connection lost and {self.reconnect_attempts} reconnect "
            f"attempts failed (last error: {last_error})",
            attempts=self.reconnect_attempts,
            last_error=last_error,
        )

    # -- session ----------------------------------------------------------

    async def hello(
        self,
        user: Optional[str] = None,
        mode: str = "non-truman",
        params: Optional[dict] = None,
    ) -> dict:
        self._hello_args = (user, mode, params)
        self._welcome = asyncio.get_running_loop().create_future()
        await self._send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "user": user,
                "mode": mode,
                "params": params or {},
            }
        )
        self.server_info = await self._welcome
        return self.server_info

    # -- queries ----------------------------------------------------------

    async def submit(self, sql: str, **options) -> tuple[int, asyncio.Future]:
        """Send a query; returns (request id, future of ClientResult)."""
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = (_ResultAssembler(), future)
        try:
            await self._send(_query_message(request_id, sql, **options))
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return request_id, future

    async def query(self, sql: str, **options) -> ClientResult:
        """Run one query; concurrent callers multiplex over the socket."""

        async def attempt() -> ClientResult:
            _, future = await self.submit(sql, **options)
            return await future

        if self.reconnect and _idempotent_read(sql):
            return await self._retry_idempotent(attempt)
        return await attempt()

    async def prepare(self, sql: str) -> AsyncPreparedStatement:
        """Async counterpart of :meth:`ReproClient.prepare`."""
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._prepare_waiters[request_id] = future
        try:
            await self._send({"type": "prepare", "id": request_id, "sql": sql})
        except BaseException:
            self._prepare_waiters.pop(request_id, None)
            raise
        message = await future
        return AsyncPreparedStatement(
            self,
            message["statement"],
            int(message.get("params", 0)),
            message.get("signature", ""),
        )

    async def _execute_prepared(
        self, statement: AsyncPreparedStatement, args: Sequence, options: dict
    ) -> ClientResult:
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = (_ResultAssembler(), future)
        try:
            await self._send(
                _execute_message(
                    request_id, statement.statement_id, args, **options
                )
            )
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return await future

    async def cancel(self, request_id: int) -> None:
        await self._send({"type": "cancel", "id": request_id})

    async def explain(self, sql: str, mode: Optional[str] = None) -> dict:
        """Async counterpart of :meth:`ReproClient.explain`."""
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._explain_waiters[request_id] = future
        message: dict = {"type": "explain", "id": request_id, "sql": sql}
        if mode is not None:
            message["mode"] = mode
        try:
            await self._send(message)
        except BaseException:
            self._explain_waiters.pop(request_id, None)
            raise
        return await future

    async def stats(self) -> dict:
        if self.reconnect:
            return await self._retry_idempotent(self._fetch_stats)
        return await self._fetch_stats()

    async def _fetch_stats(self) -> dict:
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._stats_waiters[request_id] = future
        try:
            await self._send({"type": "stats", "id": request_id})
        except BaseException:
            self._stats_waiters.pop(request_id, None)
            raise
        return await future

    async def health(self) -> Optional[dict]:
        """Live cluster-health report; ``None`` on a single-node server."""
        if self.reconnect:
            return await self._retry_idempotent(self._fetch_health)
        return await self._fetch_health()

    async def _fetch_health(self) -> Optional[dict]:
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._health_waiters[request_id] = future
        try:
            await self._send({"type": "health", "id": request_id})
        except BaseException:
            self._health_waiters.pop(request_id, None)
            raise
        return await future

    # -- lifecycle --------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._writer is not None:
                async with self._write_lock:
                    self._writer.write(
                        encode_frame({"type": "goodbye"}, self.max_frame_size)
                    )
                    await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
