"""Aggregate function accumulators (SQL semantics).

* ``count(*)`` counts rows; ``count(expr)`` counts non-NULL values.
* ``sum``/``avg``/``min``/``max`` ignore NULLs and return NULL over an
  empty (or all-NULL) input; ``count`` returns 0.
* ``DISTINCT`` variants deduplicate non-NULL values first.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError, TypeError_


class Accumulator:
    """Base accumulator: feed values with add(), read with result()."""

    def add(self, value: object) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def result(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError


class CountStar(Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value: object) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class Count(Accumulator):
    def __init__(self, distinct: bool = False):
        self.distinct = distinct
        self.count = 0
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1

    def result(self) -> int:
        return self.count


class Sum(Accumulator):
    def __init__(self, distinct: bool = False):
        self.distinct = distinct
        self.total: Optional[float] = None
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"sum() on non-numeric value {value!r}")
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.total = value if self.total is None else self.total + value

    def result(self) -> Optional[float]:
        return self.total


class Avg(Accumulator):
    def __init__(self, distinct: bool = False):
        self.distinct = distinct
        self.total = 0.0
        self.count = 0
        self.seen: set = set()

    def add(self, value: object) -> None:
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"avg() on non-numeric value {value!r}")
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class MinMax(Accumulator):
    def __init__(self, is_min: bool):
        self.is_min = is_min
        self.best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.best is None:
            self.best = value
            return
        try:
            smaller = value < self.best
        except TypeError as exc:
            raise TypeError_(
                f"min/max on incomparable values {value!r}, {self.best!r}"
            ) from exc
        if smaller == self.is_min:
            self.best = value

    def result(self) -> object:
        return self.best


def make_accumulator(name: str, distinct: bool, star: bool) -> Accumulator:
    """Factory keyed on aggregate function name."""
    lowered = name.lower()
    if lowered == "count":
        return CountStar() if star else Count(distinct)
    if lowered == "sum":
        return Sum(distinct)
    if lowered == "avg":
        return Avg(distinct)
    if lowered == "min":
        return MinMax(is_min=True)
    if lowered == "max":
        return MinMax(is_min=False)
    raise ExecutionError(f"unknown aggregate function {name!r}")
