"""Iterator-style executor for logical algebra trees.

The executor is deliberately simple and correct: hash joins for
equi-join conjuncts, nested loops otherwise, hash aggregation, and
counter-based bag set-operations.  It materializes intermediate results
as lists of tuples — the workloads in this reproduction are
laptop-scale, and the paper's claims concern *which* query runs, with
execution cost contrasts (Truman vs Non-Truman) preserved by the
relative plan shapes.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Protocol

from repro.errors import ExecutionError
from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.engine.aggregates import make_accumulator
from repro.engine.evaluator import Evaluator, RowResolver
from repro.optimizer.pushdown import split_pushable_equalities


class ExecContext(Protocol):
    """What the executor needs from its host (the Database facade).

    Hosts may additionally expose ``table_handle(name) -> Table`` to let
    the vectorized engine reach hash indexes for pushdown scans; the
    method is optional and discovered via ``getattr``, so row-only
    contexts (tests, ad-hoc harnesses) need not provide it.
    """

    def table_rows(self, name: str) -> Iterable[tuple]:
        """Current rows of a base table."""
        ...

    def view_plan(
        self, name: str, access_args: tuple[tuple[str, object], ...] = ()
    ) -> ops.Operator:
        """Instantiated algebra plan for an authorization view scan."""
        ...


class Executor:
    """Evaluates a logical plan to a list of rows.

    ``ctx`` (a :class:`repro.service.context.QueryContext`) makes
    execution cooperative: row loops tick it so deadlines, cancellation,
    and row/memory budgets are observed *mid-scan* and *mid-join*, not
    just between operators.  With ``ctx=None`` (the default for direct
    library use) the hot loops pay a single ``is None`` branch.
    """

    def __init__(self, context: ExecContext, ctx=None):
        self.context = context
        self.qctx = ctx
        #: simple instrumentation used by benchmarks
        self.rows_scanned = 0
        self.join_pairs_examined = 0
        #: scans answered from a single partition (sharded tables only)
        self.pruned_scans = 0

    def execute(self, plan: ops.Operator) -> list[tuple]:
        if isinstance(plan, ops.Rel):
            rows = list(self.context.table_rows(plan.name))
            self.rows_scanned += len(rows)
            if self.qctx is not None:
                self.qctx.tick(len(rows), len(rows) * max(len(plan.columns), 1))
            return rows
        if isinstance(plan, ops.ViewRel):
            inner = self.context.view_plan(plan.name, plan.access_args)
            # Validate arity against the declared schema *before* looking
            # at any row: a mismatched view must fail identically whether
            # it returns a million rows or none.
            if len(inner.columns) != len(plan.schema_columns):
                raise ExecutionError(
                    f"view {plan.name!r} produces {len(inner.columns)} columns, "
                    f"expected {len(plan.schema_columns)}"
                )
            return self.execute(inner)
        if isinstance(plan, ops.Alias):
            return self.execute(plan.child)
        if isinstance(plan, ops.Select):
            return self._execute_select(plan)
        if isinstance(plan, ops.Project):
            return self._execute_project(plan)
        if isinstance(plan, ops.Distinct):
            return self._execute_distinct(plan)
        if isinstance(plan, ops.Join):
            return self._execute_join(plan)
        if isinstance(plan, ops.DependentJoin):
            return self._execute_dependent_join(plan)
        if isinstance(plan, ops.SemiJoin):
            return self._execute_semi_join(plan)
        if isinstance(plan, ops.Aggregate):
            return self._execute_aggregate(plan)
        if isinstance(plan, ops.SetOperation):
            return self._execute_set_operation(plan)
        if isinstance(plan, ops.Sort):
            return self._execute_sort(plan)
        if isinstance(plan, ops.Limit):
            rows = self.execute(plan.child)
            start = plan.offset
            return rows[start : start + plan.limit]
        if type(plan).__name__ == "_Dual":
            return [()]
        raise ExecutionError(f"cannot execute operator {type(plan).__name__}")

    # ------------------------------------------------------------------

    def _execute_select(self, plan: ops.Select) -> list[tuple]:
        rows = self._select_input(plan)
        evaluator = Evaluator(RowResolver(plan.child.columns))
        qctx = self.qctx
        if qctx is None:
            return [row for row in rows if evaluator.matches(plan.predicate, row)]
        result = []
        for row in rows:
            qctx.tick()
            if evaluator.matches(plan.predicate, row):
                result.append(row)
        return result

    def _select_input(self, plan: ops.Select) -> list[tuple]:
        """Rows feeding a selection; a scan over a partitioned table is
        pruned to one shard when equality conjuncts pin the full
        partition key.  The caller still applies the whole predicate, so
        pruning can only skip rows the predicate would reject anyway."""
        child = plan.child
        if isinstance(child, ops.Rel):
            getter = getattr(self.context, "table_handle", None)
            table = getter(child.name) if getter is not None else None
            pruner = getattr(table, "prune_for", None)
            if pruner is not None:
                equalities, _ = split_pushable_equalities(plan.predicate, child)
                if equalities:
                    fragment = pruner({e.column: e.value for e in equalities})
                    if fragment is not None:
                        rows = fragment.rows()
                        self.rows_scanned += len(rows)
                        self.pruned_scans += 1
                        if self.qctx is not None:
                            self.qctx.tick(
                                len(rows), len(rows) * max(len(child.columns), 1)
                            )
                        return rows
        return self.execute(child)

    def _execute_project(self, plan: ops.Project) -> list[tuple]:
        rows = self.execute(plan.child)
        evaluator = Evaluator(RowResolver(plan.child.columns))
        compiled = [expr for expr, _ in plan.exprs]
        qctx = self.qctx
        if qctx is None:
            return [
                tuple(evaluator.evaluate(expr, row) for expr in compiled)
                for row in rows
            ]
        result = []
        for row in rows:
            qctx.tick(1, len(compiled))
            result.append(tuple(evaluator.evaluate(expr, row) for expr in compiled))
        return result

    def _execute_distinct(self, plan: ops.Distinct) -> list[tuple]:
        rows = self.execute(plan.child)
        seen: set[tuple] = set()
        result = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                result.append(row)
        return result

    # -- joins -----------------------------------------------------------

    def _execute_join(self, plan: ops.Join) -> list[tuple]:
        left_rows = self.execute(plan.left)
        right_rows = self.execute(plan.right)
        left_cols = plan.left.columns
        right_cols = plan.right.columns
        combined = left_cols + right_cols
        evaluator = Evaluator(RowResolver(combined))

        qctx = self.qctx

        if plan.kind == "cross" or plan.predicate is None:
            if plan.kind == "left":
                # LEFT JOIN with no predicate behaves like a cross join
                # unless the right side is empty.
                if not right_rows:
                    null_pad = (None,) * len(right_cols)
                    return [l + null_pad for l in left_rows]
            self.join_pairs_examined += len(left_rows) * len(right_rows)
            if qctx is None:
                return [l + r for l in left_rows for r in right_rows]
            result = []
            width = len(combined)
            for l in left_rows:
                for r in right_rows:
                    qctx.tick(1, width)
                    result.append(l + r)
            return result

        equi, residual = self._split_equi(
            plan.predicate,
            {c.binding.lower() for c in left_cols if c.binding},
            {c.binding.lower() for c in right_cols if c.binding},
        )

        if equi:
            left_resolver = RowResolver(left_cols)
            right_resolver = RowResolver(right_cols)
            left_keys = [left_resolver.ordinal(l) for l, _ in equi]
            right_keys = [right_resolver.ordinal(r) for _, r in equi]
            table: dict[tuple, list[tuple]] = {}
            for row in right_rows:
                key = tuple(row[i] for i in right_keys)
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(row)
            result = []
            null_pad = (None,) * len(right_cols)
            for left_row in left_rows:
                key = tuple(left_row[i] for i in left_keys)
                matches = [] if any(v is None for v in key) else table.get(key, [])
                matched = False
                for right_row in matches:
                    combined_row = left_row + right_row
                    self.join_pairs_examined += 1
                    if qctx is not None:
                        qctx.tick()
                    if residual is None or evaluator.matches(residual, combined_row):
                        result.append(combined_row)
                        matched = True
                if plan.kind == "left" and not matched:
                    result.append(left_row + null_pad)
            return result

        # Nested loop fallback.
        result = []
        null_pad = (None,) * len(right_cols)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                combined_row = left_row + right_row
                self.join_pairs_examined += 1
                if qctx is not None:
                    qctx.tick()
                if evaluator.matches(plan.predicate, combined_row):
                    result.append(combined_row)
                    matched = True
            if plan.kind == "left" and not matched:
                result.append(left_row + null_pad)
        return result

    def _execute_semi_join(self, plan: ops.SemiJoin) -> list[tuple]:
        """[NOT] IN / [NOT] EXISTS over an uncorrelated subquery."""
        left_rows = self.execute(plan.left)
        right_rows = self.execute(plan.right)

        if plan.operand is None:  # EXISTS form
            nonempty = bool(right_rows)
            keep = (not nonempty) if plan.negated else nonempty
            return list(left_rows) if keep else []

        if right_rows and len(right_rows[0]) != 1:
            raise ExecutionError("IN subquery must produce exactly one column")
        values = {row[0] for row in right_rows if row[0] is not None}
        has_null = any(row[0] is None for row in right_rows)
        evaluator = Evaluator(RowResolver(plan.left.columns))

        result = []
        for row in left_rows:
            value = evaluator.evaluate(plan.operand, row)
            if plan.negated:
                # NOT IN: TRUE only if no member compares equal and no
                # comparison is UNKNOWN (null-aware semantics).
                if right_rows and (value is None or has_null):
                    continue
                if value in values:
                    continue
                result.append(row)
            else:
                if value is not None and value in values:
                    result.append(row)
        return result

    def _execute_dependent_join(self, plan: ops.DependentJoin) -> list[tuple]:
        """Per-row view invocation with the $$ parameter bound (§6)."""
        left_rows = self.execute(plan.left)
        left_eval = Evaluator(RowResolver(plan.left.columns))
        combined_eval = Evaluator(RowResolver(plan.columns))
        result = []
        view_cache: dict[object, list[tuple]] = {}
        for left_row in left_rows:
            key = left_eval.evaluate(plan.key_expr, left_row)
            if key is None:
                continue
            if key not in view_cache:
                inner = self.context.view_plan(
                    plan.view_name, ((plan.param_name, key),)
                )
                view_cache[key] = self.execute(inner)
            for view_row in view_cache[key]:
                combined = left_row + view_row
                self.join_pairs_examined += 1
                if self.qctx is not None:
                    self.qctx.tick()
                if plan.predicate is None or combined_eval.matches(
                    plan.predicate, combined
                ):
                    result.append(combined)
        return result

    @staticmethod
    def _split_equi(
        predicate: ast.Expr, left_bindings: set[str], right_bindings: set[str]
    ) -> tuple[list[tuple[ast.ColumnRef, ast.ColumnRef]], Optional[ast.Expr]]:
        """Extract hashable equi-join pairs; return (pairs, residual)."""
        pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        residual: list[ast.Expr] = []
        for conj in exprs.conjuncts(predicate):
            if (
                isinstance(conj, ast.BinaryOp)
                and conj.op == "="
                and isinstance(conj.left, ast.ColumnRef)
                and isinstance(conj.right, ast.ColumnRef)
                and conj.left.table is not None
                and conj.right.table is not None
            ):
                lt = conj.left.table.lower()
                rt = conj.right.table.lower()
                if lt in left_bindings and rt in right_bindings:
                    pairs.append((conj.left, conj.right))
                    continue
                if lt in right_bindings and rt in left_bindings:
                    pairs.append((conj.right, conj.left))
                    continue
            residual.append(conj)
        return pairs, exprs.make_conjunction(residual)

    # -- aggregation -------------------------------------------------------

    def _execute_aggregate(self, plan: ops.Aggregate) -> list[tuple]:
        rows = self.execute(plan.child)
        evaluator = Evaluator(RowResolver(plan.child.columns))
        group_exprs = [expr for expr, _ in plan.group_exprs]
        groups: dict[tuple, list] = {}
        order: list[tuple] = []

        def new_accumulators():
            accs = []
            for call, _ in plan.aggregates:
                star = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
                accs.append(make_accumulator(call.name, call.distinct, star))
            return accs

        qctx = self.qctx
        for row in rows:
            if qctx is not None:
                qctx.tick()
            key = tuple(evaluator.evaluate(e, row) for e in group_exprs)
            if key not in groups:
                groups[key] = new_accumulators()
                order.append(key)
            accs = groups[key]
            for (call, _), acc in zip(plan.aggregates, accs):
                if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                    acc.add(1)
                else:
                    acc.add(evaluator.evaluate(call.args[0], row))

        if not groups and not plan.group_exprs:
            # Scalar aggregate over empty input: one row of "empty" results.
            accs = new_accumulators()
            return [tuple(acc.result() for acc in accs)]

        return [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]

    # -- set operations -------------------------------------------------------

    def _execute_set_operation(self, plan: ops.SetOperation) -> list[tuple]:
        left_rows = self.execute(plan.left)
        right_rows = self.execute(plan.right)
        return combine_set_operation(plan.op, plan.all, left_rows, right_rows)

    @staticmethod
    def _dedupe(rows: list[tuple]) -> list[tuple]:
        return dedupe_rows(rows)

    # -- sorting -----------------------------------------------------------------

    def _execute_sort(self, plan: ops.Sort) -> list[tuple]:
        rows = self.execute(plan.child)
        evaluator = Evaluator(RowResolver(plan.child.columns))
        # Successive stable sorts from the least-significant key; NULLs
        # sort last ascending, first descending (PostgreSQL default).
        for expr, descending in reversed(plan.keys):
            def key_fn(row, expr=expr):
                value = evaluator.evaluate(expr, row)
                if value is None:
                    # (1, ...) is the largest key: NULLs sort last when
                    # ascending and first when descending (reverse=True).
                    return (1, _NullOrder())
                return (0, _Comparable(value))
            rows = sorted(rows, key=key_fn, reverse=descending)
        return rows


def dedupe_rows(rows: list[tuple]) -> list[tuple]:
    """First occurrence of each distinct row, in order."""
    seen: set[tuple] = set()
    result = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            result.append(row)
    return result


def combine_set_operation(
    op: str, all_: bool, left_rows: list[tuple], right_rows: list[tuple]
) -> list[tuple]:
    """Bag UNION/INTERSECT/EXCEPT [ALL] over materialized inputs.

    Shared between the row and vectorized engines so the counter-based
    multiset semantics live in exactly one place.
    """
    if op == "union":
        combined = left_rows + right_rows
        if all_:
            return combined
        return dedupe_rows(combined)
    left_counts = Counter(left_rows)
    right_counts = Counter(right_rows)
    if op == "intersect":
        result = []
        for row in dedupe_rows(left_rows):
            count = min(left_counts[row], right_counts.get(row, 0))
            result.extend([row] * (count if all_ else min(count, 1)))
        return result
    if op == "except":
        result = []
        for row in dedupe_rows(left_rows):
            if all_:
                count = max(left_counts[row] - right_counts.get(row, 0), 0)
            else:
                count = 0 if right_counts.get(row, 0) else 1
            result.extend([row] * count)
        return result
    raise ExecutionError(f"unknown set operation {op!r}")


class _NullOrder:
    """Placeholder comparing equal to itself (NULL vs NULL)."""

    def __lt__(self, other) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, _NullOrder)


class _Comparable:
    """Wrapper allowing heterogeneous-safe comparisons within a column."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other) -> bool:
        if isinstance(other, _NullOrder):
            return False
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Comparable) and self.value == other.value
