"""Scalar expression evaluation with SQL three-valued logic.

Booleans inside the evaluator are ``True`` / ``False`` / ``None``
(UNKNOWN).  ``WHERE`` keeps a row only when the predicate evaluates to
``True``.  Comparisons involving NULL yield UNKNOWN; ``AND``/``OR``
follow Kleene logic.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import ExecutionError, TypeError_
from repro.sql import ast
from repro.algebra.ops import OutCol


class RowResolver:
    """Maps qualified/unqualified column references to row ordinals."""

    def __init__(self, columns: tuple[OutCol, ...]):
        self.columns = columns
        self._by_pair: dict[tuple[Optional[str], str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for index, col in enumerate(columns):
            binding = col.binding.lower() if col.binding else None
            name = col.name.lower()
            # First occurrence wins; the binder guarantees uniqueness where
            # it matters (inside subqueries and views).
            self._by_pair.setdefault((binding, name), index)
            self._by_name.setdefault(name, []).append(index)

    def ordinal(self, ref: ast.ColumnRef) -> int:
        name = ref.name.lower()
        if ref.table is not None:
            index = self._by_pair.get((ref.table.lower(), name))
            if index is None:
                raise ExecutionError(f"cannot resolve column {ref} at runtime")
            return index
        candidates = self._by_name.get(name)
        if not candidates:
            raise ExecutionError(f"cannot resolve column {ref} at runtime")
        return candidates[0]


def sql_like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards."""
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


_NUMERIC = (int, float)


def _check_comparable(left: object, right: object) -> None:
    if isinstance(left, bool) != isinstance(right, bool):
        raise TypeError_(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        return
    if type(left) is type(right):
        return
    raise TypeError_(f"cannot compare {left!r} with {right!r}")


def compare(op: str, left: object, right: object) -> Optional[bool]:
    """Three-valued SQL comparison."""
    if left is None or right is None:
        return None
    _check_comparable(left, right)
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


class Evaluator:
    """Evaluates bound scalar expressions against a row."""

    def __init__(self, resolver: RowResolver):
        self.resolver = resolver

    def evaluate(self, expr: ast.Expr, row: tuple) -> object:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return row[self.resolver.ordinal(expr)]
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr, row)
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.operand, row)
            result = value is None
            return (not result) if expr.negated else result
        if isinstance(expr, ast.InList):
            return self._in_list(expr, row)
        if isinstance(expr, ast.Between):
            return self._between(expr, row)
        if isinstance(expr, ast.CaseExpr):
            return self._case(expr, row)
        if isinstance(expr, ast.FuncCall):
            return self._scalar_function(expr, row)
        if isinstance(expr, ast.AccessParam):
            raise ExecutionError(f"unbound access-pattern parameter $${expr.name}")
        if isinstance(expr, ast.Param):
            raise ExecutionError(f"unbound parameter ${expr.name}")
        raise ExecutionError(f"cannot evaluate expression {expr!r}")

    def matches(self, predicate: ast.Expr, row: tuple) -> bool:
        """True iff the predicate evaluates to TRUE (not UNKNOWN)."""
        return self.evaluate(predicate, row) is True

    # ------------------------------------------------------------------

    def _binary(self, expr: ast.BinaryOp, row: tuple) -> object:
        op = expr.op
        if op == "and":
            left = self.evaluate(expr.left, row)
            if left is False:
                return False
            right = self.evaluate(expr.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.evaluate(expr.left, row)
            if left is True:
                return True
            right = self.evaluate(expr.right, row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return compare(op, left, right)
        if op == "like":
            if left is None or right is None:
                return None
            if not isinstance(left, str) or not isinstance(right, str):
                raise TypeError_("LIKE requires string operands")
            return sql_like(left, right)
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if op in ("+", "-", "*", "/", "%"):
            return self._arith(op, left, right)
        raise ExecutionError(f"unknown operator {op!r}")

    @staticmethod
    def _arith(op: str, left: object, right: object) -> object:
        if left is None or right is None:
            return None
        if not isinstance(left, _NUMERIC) or not isinstance(right, _NUMERIC):
            raise TypeError_(f"arithmetic on non-numeric values: {left!r} {op} {right!r}")
        if isinstance(left, bool) or isinstance(right, bool):
            raise TypeError_("arithmetic on boolean values")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
        if op == "%":
            if right == 0:
                raise ExecutionError("modulo by zero")
            return left % right
        raise ExecutionError(f"unknown arithmetic operator {op!r}")

    def _unary(self, expr: ast.UnaryOp, row: tuple) -> object:
        value = self.evaluate(expr.operand, row)
        if expr.op == "not":
            if value is None:
                return None
            if isinstance(value, bool):
                return not value
            raise TypeError_(f"NOT applied to non-boolean {value!r}")
        if expr.op == "-":
            if value is None:
                return None
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                return -value
            raise TypeError_(f"unary minus on non-numeric {value!r}")
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _in_list(self, expr: ast.InList, row: tuple) -> Optional[bool]:
        value = self.evaluate(expr.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
                continue
            if compare("=", value, candidate) is True:
                return False if expr.negated else True
        if saw_null:
            return None
        return True if expr.negated else False

    def _between(self, expr: ast.Between, row: tuple) -> Optional[bool]:
        value = self.evaluate(expr.operand, row)
        low = self.evaluate(expr.low, row)
        high = self.evaluate(expr.high, row)
        lower = compare(">=", value, low)
        upper = compare("<=", value, high)
        if lower is False or upper is False:
            result: Optional[bool] = False
        elif lower is None or upper is None:
            result = None
        else:
            result = True
        if expr.negated:
            return None if result is None else not result
        return result

    def _case(self, expr: ast.CaseExpr, row: tuple) -> object:
        for cond, value in expr.branches:
            if self.evaluate(cond, row) is True:
                return self.evaluate(value, row)
        if expr.default is not None:
            return self.evaluate(expr.default, row)
        return None

    def _scalar_function(self, expr: ast.FuncCall, row: tuple) -> object:
        name = expr.name.lower()
        args = [self.evaluate(a, row) for a in expr.args]
        if name == "coalesce":
            for arg in args:
                if arg is not None:
                    return arg
            return None
        if name == "abs":
            (value,) = args
            if value is None:
                return None
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                return abs(value)
            raise TypeError_(f"abs() on non-numeric {value!r}")
        if name in ("lower", "upper"):
            (value,) = args
            if value is None:
                return None
            if not isinstance(value, str):
                raise TypeError_(f"{name}() on non-string {value!r}")
            return value.lower() if name == "lower" else value.upper()
        if name == "length":
            (value,) = args
            if value is None:
                return None
            if not isinstance(value, str):
                raise TypeError_(f"length() on non-string {value!r}")
            return len(value)
        raise ExecutionError(f"unknown function {expr.name!r}")
