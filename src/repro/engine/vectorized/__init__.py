"""repro.engine.vectorized — columnar batch execution.

A drop-in alternative to the tuple-at-a-time row engine: the same
logical :mod:`repro.algebra.ops` plans, evaluated over column-vector
batches with per-operator compiled predicates/projections, hash
joins/aggregation over batches, and index-aware base-table scans that
push single-column equality conjuncts into
:class:`repro.storage.HashIndex` lookups.

Select it per query (``engine="vectorized"``) through
:meth:`repro.db.Database.execute_query`,
:meth:`repro.db.Connection.query`, or a gateway
:class:`~repro.service.QueryRequest`; the row engine stays the default
and the semantic oracle (see the differential suite).
"""

from repro.engine.vectorized.batch import (
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.vectorized.compile import compile_scalar, selection_vector
from repro.engine.vectorized.executor import BATCH_SIZE, VectorizedExecutor

__all__ = [
    "BATCH_SIZE",
    "ColumnBatch",
    "VectorizedExecutor",
    "batches_from_rows",
    "compile_scalar",
    "rows_from_batches",
    "selection_vector",
]
