"""Columnar batch executor over logical algebra plans.

Evaluates the *same* :mod:`repro.algebra.ops` trees as the row engine
(:class:`repro.engine.executor.Executor`), but in batches of column
vectors:

* scans chunk base tables into :class:`~repro.engine.vectorized.batch.
  ColumnBatch` objects of at most ``batch_size`` rows;
* predicates and projections are compiled **once per operator** into
  closures over column vectors (:mod:`repro.engine.vectorized.compile`),
  eliminating the per-row AST walk that dominates the row engine;
* ``σ_{col = literal}(Rel)`` scans consult
  :func:`repro.optimizer.pushdown.annotate_scan` and, when a
  single-column :class:`repro.storage.HashIndex` exists, probe it
  instead of scanning — ``rows_scanned`` then counts only fetched rows;
* joins are hash joins over batches (selection-vector gather, no
  per-pair tuple concatenation until output), aggregation is hash
  aggregation reusing the row engine's accumulators.

The row engine remains the semantic oracle: the differential suite
(tests/integration/test_differential_engines.py) asserts bag-equal
results between the two engines on every workload and paper query.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.engine.aggregates import make_accumulator
from repro.engine.evaluator import RowResolver
from repro.engine.executor import (
    ExecContext,
    Executor,
    _Comparable,
    _NullOrder,
    combine_set_operation,
)
from repro.engine.vectorized.batch import (
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.vectorized.compile import compile_scalar, selection_vector
from repro.optimizer.pushdown import annotate_scan, split_pushable_equalities

#: default number of rows per column batch
BATCH_SIZE = 1024


class VectorizedExecutor:
    """Evaluates a logical plan batch-at-a-time to a list of rows.

    ``ctx`` (a :class:`repro.service.context.QueryContext`) makes
    execution cooperative at batch granularity: every produced or
    examined batch charges its row count against the request's budgets
    and observes the deadline/cancel token, so cancellation latency is
    bounded by one batch (``batch_size`` rows), not one operator.
    """

    def __init__(
        self,
        context: ExecContext,
        batch_size: int = BATCH_SIZE,
        ctx=None,
        compile_cache=None,
    ):
        self.context = context
        self.batch_size = batch_size
        self.qctx = ctx
        #: optional repro.prepared.PlanCompileCache: reuses compiled
        #: kernels for identity-stable expressions of a prepared template
        self.compile_cache = compile_cache
        #: instrumentation mirroring the row engine (E2/E4 contrasts)
        self.rows_scanned = 0
        self.join_pairs_examined = 0
        #: index probes answered without a full scan (vectorized-only)
        self.index_probes = 0
        #: scans answered from a single partition (sharded tables only)
        self.pruned_scans = 0

    def _tick(self, rows: int, cells: int = 0) -> None:
        if self.qctx is not None:
            self.qctx.tick(rows, cells)

    def _compile(self, expr: ast.Expr, columns: tuple):
        """Compile a scalar, consulting the template kernel cache for
        expressions whose identity is stable across binds."""
        cache = self.compile_cache
        if cache is not None and id(expr) in cache.cacheable:
            key = (id(expr), columns)
            fn = cache.lookup(key)
            if fn is None:
                fn = compile_scalar(expr, RowResolver(columns))
                cache.store(key, fn)
            return fn
        return compile_scalar(expr, RowResolver(columns))

    # -- public API -------------------------------------------------------

    def execute(self, plan: ops.Operator) -> list[tuple]:
        return rows_from_batches(self._batches(plan))

    # -- dispatch ---------------------------------------------------------

    def _batches(self, plan: ops.Operator) -> list[ColumnBatch]:
        if isinstance(plan, ops.Rel):
            return self._scan(plan, predicate=None)
        if isinstance(plan, ops.ViewRel):
            return self._view_scan(plan)
        if isinstance(plan, ops.Alias):
            return self._batches(plan.child)
        if isinstance(plan, ops.Select):
            return self._select(plan)
        if isinstance(plan, ops.Project):
            return self._project(plan)
        if isinstance(plan, ops.Distinct):
            return self._distinct(plan)
        if isinstance(plan, ops.Join):
            return self._join(plan)
        if isinstance(plan, ops.DependentJoin):
            return self._dependent_join(plan)
        if isinstance(plan, ops.SemiJoin):
            return self._semi_join(plan)
        if isinstance(plan, ops.Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, ops.SetOperation):
            return self._set_operation(plan)
        if isinstance(plan, ops.Sort):
            return self._sort(plan)
        if isinstance(plan, ops.Limit):
            rows = rows_from_batches(self._batches(plan.child))
            start = plan.offset
            kept = rows[start : start + plan.limit]
            return list(
                batches_from_rows(kept, len(plan.columns), self.batch_size)
            )
        if type(plan).__name__ == "_Dual":
            return [ColumnBatch([], 1)]
        raise ExecutionError(f"cannot execute operator {type(plan).__name__}")

    # -- scans ------------------------------------------------------------

    def _table_handle(self, name: str):
        getter = getattr(self.context, "table_handle", None)
        return getter(name) if getter is not None else None

    def _scan(
        self, rel: ops.Rel, predicate: Optional[ast.Expr]
    ) -> list[ColumnBatch]:
        """Base-table scan, probing a hash index when the predicate has
        a pushable single-column equality conjunct."""
        width = len(rel.schema_columns)
        table = self._table_handle(rel.name)

        pruner = getattr(table, "prune_for", None)
        if pruner is not None and predicate is not None:
            equalities, _ = split_pushable_equalities(predicate, rel)
            if equalities:
                fragment = pruner({e.column: e.value for e in equalities})
                if fragment is not None:
                    # probe/scan logic below runs against the single
                    # shard that can hold matching rows; the full
                    # predicate is still applied, so this is purely a
                    # work reduction
                    table = fragment
                    self.pruned_scans += 1

        if table is not None and predicate is not None:
            annotation = annotate_scan(
                rel,
                predicate,
                lambda name, cols: table.find_index(cols) is not None,
            )
            if annotation.probe is not None:
                index = table.find_index(annotation.probe_columns)
                row_ids = sorted(index.lookup((annotation.probe.value,)))
                rows = [table.get_row(rid) for rid in row_ids]
                self.rows_scanned += len(rows)
                self.index_probes += 1
                self._tick(len(rows), len(rows) * width)
                batches = list(
                    batches_from_rows(rows, width, self.batch_size)
                )
                if annotation.residual is None:
                    return batches
                return self._filter_batches(
                    batches, annotation.residual, rel.columns
                )

        rows = list(
            table.rows() if table is not None else self.context.table_rows(rel.name)
        )
        self.rows_scanned += len(rows)
        self._tick(len(rows), len(rows) * width)
        batches = list(batches_from_rows(rows, width, self.batch_size))
        if predicate is None:
            return batches
        return self._filter_batches(batches, predicate, rel.columns)

    def _view_scan(self, plan: ops.ViewRel) -> list[ColumnBatch]:
        inner = self.context.view_plan(plan.name, plan.access_args)
        if len(inner.columns) != len(plan.schema_columns):
            raise ExecutionError(
                f"view {plan.name!r} produces {len(inner.columns)} columns, "
                f"expected {len(plan.schema_columns)}"
            )
        return self._batches(inner)

    # -- selection / projection ------------------------------------------

    def _filter_batches(
        self,
        batches: list[ColumnBatch],
        predicate: ast.Expr,
        columns: tuple[ops.OutCol, ...],
    ) -> list[ColumnBatch]:
        compiled = self._compile(predicate, columns)
        result = []
        for batch in batches:
            self._tick(batch.length)
            sel = selection_vector(compiled(batch))
            if len(sel) == batch.length:
                result.append(batch)
            elif sel:
                result.append(batch.take(sel))
        return result

    def _select(self, plan: ops.Select) -> list[ColumnBatch]:
        child = plan.child
        if isinstance(child, ops.Rel):
            return self._scan(child, plan.predicate)
        batches = self._batches(child)
        return self._filter_batches(batches, plan.predicate, child.columns)

    def _project(self, plan: ops.Project) -> list[ColumnBatch]:
        child_columns = plan.child.columns
        compiled = [
            self._compile(expr, child_columns) for expr, _ in plan.exprs
        ]
        result = []
        for batch in self._batches(plan.child):
            result.append(
                ColumnBatch([fn(batch) for fn in compiled], batch.length)
            )
        return result

    def _distinct(self, plan: ops.Distinct) -> list[ColumnBatch]:
        seen: set[tuple] = set()
        kept: list[tuple] = []
        for batch in self._batches(plan.child):
            self._tick(batch.length)
            for row in batch.to_rows():
                if row not in seen:
                    seen.add(row)
                    kept.append(row)
        return list(
            batches_from_rows(kept, len(plan.columns), self.batch_size)
        )

    # -- joins ------------------------------------------------------------

    def _concat(self, batches: list[ColumnBatch], width: int) -> ColumnBatch:
        """Materialize a batch list as one wide batch (build sides)."""
        if not batches:
            return ColumnBatch.empty(width)
        if len(batches) == 1:
            return batches[0]
        columns = [
            [v for b in batches for v in b.columns[i]] for i in range(width)
        ]
        return ColumnBatch(columns, sum(b.length for b in batches))

    def _join(self, plan: ops.Join) -> list[ColumnBatch]:
        left_cols = plan.left.columns
        right_cols = plan.right.columns
        left_batches = self._batches(plan.left)
        right = self._concat(self._batches(plan.right), len(right_cols))

        if plan.kind == "cross" or plan.predicate is None:
            return self._cross_join(plan, left_batches, right)

        equi, residual = Executor._split_equi(
            plan.predicate,
            {c.binding.lower() for c in left_cols if c.binding},
            {c.binding.lower() for c in right_cols if c.binding},
        )
        if equi:
            return self._hash_join(plan, left_batches, right, equi, residual)
        return self._loop_join(plan, left_batches, right, plan.predicate)

    def _ctx_chunks(self, batch: ColumnBatch, right_length: int):
        """Split a join's left batch so cooperative checks interleave
        with the pair materialization.  A single batch crossed with a
        wide right side is one untracked burst of ``batch.length *
        right_length`` pairs — far past the check interval — so under a
        QueryContext the batch is re-sliced to keep each burst small.
        Without a context the batch passes through untouched (no
        overhead, identical output batching)."""
        if self.qctx is None or right_length <= 0:
            yield batch
            return
        per_chunk = max(1, (16 * self.batch_size) // right_length)
        if per_chunk >= batch.length:
            yield batch
            return
        for start in range(0, batch.length, per_chunk):
            stop = min(start + per_chunk, batch.length)
            yield batch.take(list(range(start, stop)))

    def _null_pad_batch(
        self, left_batch: ColumnBatch, indices: list[int], pad_width: int
    ) -> ColumnBatch:
        padded = left_batch.take(indices)
        for _ in range(pad_width):
            padded.columns.append([None] * padded.length)
        return ColumnBatch(padded.columns, padded.length)

    def _cross_join(
        self,
        plan: ops.Join,
        left_batches: list[ColumnBatch],
        right: ColumnBatch,
    ) -> list[ColumnBatch]:
        pad_width = len(plan.right.columns)
        result = []
        if plan.kind == "left" and right.length == 0:
            # LEFT JOIN with no predicate over an empty right side
            for batch in left_batches:
                result.append(
                    self._null_pad_batch(batch, list(range(batch.length)), pad_width)
                )
            return result
        right_indices = list(range(right.length))
        pair_width = len(plan.columns)
        for full_batch in left_batches:
            for batch in self._ctx_chunks(full_batch, right.length):
                self.join_pairs_examined += batch.length * right.length
                self._tick(batch.length * right.length,
                           batch.length * right.length * pair_width)
                left_idx = [
                    i for i in range(batch.length) for _ in right_indices
                ]
                right_idx = right_indices * batch.length
                combined = batch.take(left_idx).concat_columns(
                    right.take(right_idx)
                )
                if combined.length:
                    result.append(combined)
        return result

    def _hash_join(
        self,
        plan: ops.Join,
        left_batches: list[ColumnBatch],
        right: ColumnBatch,
        equi: list[tuple[ast.ColumnRef, ast.ColumnRef]],
        residual: Optional[ast.Expr],
    ) -> list[ColumnBatch]:
        left_cols = plan.left.columns
        right_cols = plan.right.columns
        left_resolver = RowResolver(left_cols)
        right_resolver = RowResolver(right_cols)
        left_keys = [left_resolver.ordinal(l) for l, _ in equi]
        right_keys = [right_resolver.ordinal(r) for _, r in equi]
        single = len(left_keys) == 1

        # build side: key -> list of right row indices (NULL keys never join)
        table: dict[object, list[int]] = {}
        if single:
            for i, key in enumerate(right.columns[right_keys[0]]):
                if key is not None:
                    table.setdefault(key, []).append(i)
        else:
            key_columns = [right.columns[k] for k in right_keys]
            for i, key in enumerate(zip(*key_columns)):
                if None not in key:
                    table.setdefault(key, []).append(i)

        compiled_residual = (
            self._compile(residual, left_cols + right_cols)
            if residual is not None
            else None
        )
        is_left = plan.kind == "left"
        pad_width = len(right_cols)
        result = []
        for batch in left_batches:
            if single:
                probe_keys = batch.columns[left_keys[0]]
            else:
                probe_keys = list(
                    zip(*[batch.columns[k] for k in left_keys])
                )
            left_idx: list[int] = []
            right_idx: list[int] = []
            for i, key in enumerate(probe_keys):
                if single:
                    matches = table.get(key) if key is not None else None
                else:
                    matches = table.get(key) if None not in key else None
                if matches:
                    left_idx.extend([i] * len(matches))
                    right_idx.extend(matches)
            self.join_pairs_examined += len(left_idx)
            self._tick(max(batch.length, len(left_idx)))
            combined = batch.take(left_idx).concat_columns(right.take(right_idx))
            if compiled_residual is not None:
                sel = selection_vector(compiled_residual(combined))
                matched_left = {left_idx[s] for s in sel}
                combined = combined.take(sel)
            else:
                matched_left = set(left_idx)
            if combined.length:
                result.append(combined)
            if is_left:
                unmatched = [
                    i for i in range(batch.length) if i not in matched_left
                ]
                if unmatched:
                    result.append(
                        self._null_pad_batch(batch, unmatched, pad_width)
                    )
        return result

    def _loop_join(
        self,
        plan: ops.Join,
        left_batches: list[ColumnBatch],
        right: ColumnBatch,
        predicate: ast.Expr,
    ) -> list[ColumnBatch]:
        """Non-equi predicate: evaluate over the full cross pairing, in
        batches, exactly as the row engine's nested loop does."""
        left_cols = plan.left.columns
        right_cols = plan.right.columns
        compiled = self._compile(predicate, left_cols + right_cols)
        is_left = plan.kind == "left"
        pad_width = len(right_cols)
        right_indices = list(range(right.length))
        result = []
        for full_batch in left_batches:
            for batch in self._ctx_chunks(full_batch, right.length):
                self.join_pairs_examined += batch.length * right.length
                self._tick(batch.length * right.length)
                left_idx = [i for i in range(batch.length) for _ in right_indices]
                right_idx = right_indices * batch.length
                combined = batch.take(left_idx).concat_columns(right.take(right_idx))
                sel = selection_vector(compiled(combined))
                matched_left = {left_idx[s] for s in sel}
                kept = combined.take(sel)
                if kept.length:
                    result.append(kept)
                if is_left:
                    unmatched = [
                        i for i in range(batch.length) if i not in matched_left
                    ]
                    if unmatched:
                        result.append(
                            self._null_pad_batch(batch, unmatched, pad_width)
                        )
        return result

    def _semi_join(self, plan: ops.SemiJoin) -> list[ColumnBatch]:
        left_batches = self._batches(plan.left)
        right_rows = rows_from_batches(self._batches(plan.right))

        if plan.operand is None:  # EXISTS form
            nonempty = bool(right_rows)
            keep = (not nonempty) if plan.negated else nonempty
            return left_batches if keep else []

        if right_rows and len(right_rows[0]) != 1:
            raise ExecutionError("IN subquery must produce exactly one column")
        values = {row[0] for row in right_rows if row[0] is not None}
        has_null = any(row[0] is None for row in right_rows)
        compiled = self._compile(plan.operand, plan.left.columns)

        result = []
        for batch in left_batches:
            operand_vec = compiled(batch)
            if plan.negated:
                # NOT IN: null-aware — any NULL on either side blocks
                if right_rows and has_null:
                    continue
                sel = [
                    i
                    for i, value in enumerate(operand_vec)
                    if not (right_rows and value is None)
                    and value not in values
                ]
            else:
                sel = [
                    i
                    for i, value in enumerate(operand_vec)
                    if value is not None and value in values
                ]
            if sel:
                result.append(batch.take(sel))
        return result

    def _dependent_join(self, plan: ops.DependentJoin) -> list[ColumnBatch]:
        """Per-row view invocation with the $$ parameter bound (§6)."""
        left_batches = self._batches(plan.left)
        key_fn = compile_scalar(plan.key_expr, RowResolver(plan.left.columns))
        compiled_residual = (
            compile_scalar(plan.predicate, RowResolver(plan.columns))
            if plan.predicate is not None
            else None
        )
        width = len(plan.columns)
        view_cache: dict[object, list[tuple]] = {}
        combined_rows: list[tuple] = []
        for batch in left_batches:
            self._tick(batch.length)
            keys = key_fn(batch)
            rows = batch.to_rows()
            for left_row, key in zip(rows, keys):
                if key is None:
                    continue
                if key not in view_cache:
                    inner = self.context.view_plan(
                        plan.view_name, ((plan.param_name, key),)
                    )
                    view_cache[key] = rows_from_batches(self._batches(inner))
                for view_row in view_cache[key]:
                    self.join_pairs_examined += 1
                    combined_rows.append(left_row + view_row)
        batches = list(
            batches_from_rows(combined_rows, width, self.batch_size)
        )
        if compiled_residual is None:
            return batches
        result = []
        for batch in batches:
            sel = selection_vector(compiled_residual(batch))
            if sel:
                result.append(batch.take(sel))
        return result

    # -- aggregation ------------------------------------------------------

    def _aggregate(self, plan: ops.Aggregate) -> list[ColumnBatch]:
        child_columns = plan.child.columns
        group_fns = [
            self._compile(expr, child_columns) for expr, _ in plan.group_exprs
        ]
        agg_specs = []
        for call, _ in plan.aggregates:
            star = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
            arg_fn = None if star else self._compile(call.args[0], child_columns)
            agg_specs.append((call.name, call.distinct, star, arg_fn))

        groups: dict[tuple, list] = {}
        order: list[tuple] = []

        def new_accumulators():
            return [
                make_accumulator(name, distinct, star)
                for name, distinct, star, _ in agg_specs
            ]

        for batch in self._batches(plan.child):
            self._tick(batch.length)
            group_vectors = [fn(batch) for fn in group_fns]
            arg_vectors = [
                None if fn is None else fn(batch)
                for _, _, _, fn in agg_specs
            ]
            for i in range(batch.length):
                key = tuple(vec[i] for vec in group_vectors)
                accs = groups.get(key)
                if accs is None:
                    accs = groups[key] = new_accumulators()
                    order.append(key)
                for acc, vec in zip(accs, arg_vectors):
                    acc.add(1 if vec is None else vec[i])

        if not groups and not plan.group_exprs:
            accs = new_accumulators()
            rows = [tuple(acc.result() for acc in accs)]
        else:
            rows = [
                key + tuple(acc.result() for acc in groups[key])
                for key in order
            ]
        return list(
            batches_from_rows(rows, len(plan.columns), self.batch_size)
        )

    # -- set operations / sort -------------------------------------------

    def _set_operation(self, plan: ops.SetOperation) -> list[ColumnBatch]:
        left_rows = rows_from_batches(self._batches(plan.left))
        right_rows = rows_from_batches(self._batches(plan.right))
        rows = combine_set_operation(plan.op, plan.all, left_rows, right_rows)
        return list(
            batches_from_rows(rows, len(plan.columns), self.batch_size)
        )

    def _sort(self, plan: ops.Sort) -> list[ColumnBatch]:
        child_columns = plan.child.columns
        batch = self._concat(
            self._batches(plan.child), len(child_columns)
        )
        order = list(range(batch.length))
        # Successive stable sorts from the least-significant key over
        # one shared permutation — identical outcome to the row engine's
        # repeated stable row sorts.
        for expr, descending in reversed(plan.keys):
            vector = self._compile(expr, child_columns)(batch)

            def sort_key(i, vector=vector):
                value = vector[i]
                if value is None:
                    return (1, _NullOrder())
                return (0, _Comparable(value))

            order.sort(key=sort_key, reverse=descending)
        sorted_batch = batch.take(order)
        return [sorted_batch] if sorted_batch.length else []
