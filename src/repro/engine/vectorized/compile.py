"""Compile scalar expressions into closures over column vectors.

The row engine walks the expression AST once *per row*; here the walk
happens once *per operator*: :func:`compile_scalar` turns a bound
expression into a closure ``fn(batch) -> list`` that evaluates the
whole column vector in one pass (list comprehensions over zipped
columns).  SQL three-valued logic is preserved value-for-value — the
Kleene AND/OR/NOT branches below mirror
:class:`repro.engine.evaluator.Evaluator` exactly, and comparisons,
arithmetic, and scalar functions delegate to the same helpers, so the
two engines agree on every scalar (the property suite pins this).

One deliberate difference: evaluation is *eager* across a batch.  The
row engine short-circuits ``AND``/``OR`` and ``CASE`` per row, so it
may skip an erroring sub-expression on rows where the outcome is
already decided; the vectorized engine evaluates every sub-expression
over the full batch.  On error-free expressions (everything the
supported workloads produce) the results are identical.
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Optional

from repro.errors import ExecutionError, TypeError_
from repro.sql import ast
from repro.engine.evaluator import Evaluator, RowResolver, compare, sql_like
from repro.engine.vectorized.batch import ColumnBatch

#: a compiled expression: batch in, value vector out
VecFn = Callable[[ColumnBatch], list]

_arith = Evaluator._arith


def compile_scalar(expr: ast.Expr, resolver: RowResolver) -> VecFn:
    """Compile ``expr`` (bound against ``resolver``'s columns) once."""
    from repro.instrument import COUNTERS

    COUNTERS.bump("engine.compile")
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda b: [value] * b.length
    if isinstance(expr, ast.ColumnRef):
        ordinal = resolver.ordinal(expr)
        return lambda b: b.columns[ordinal]
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolver)
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, resolver)
    if isinstance(expr, ast.IsNull):
        operand = compile_scalar(expr.operand, resolver)
        if expr.negated:
            return lambda b: [v is not None for v in operand(b)]
        return lambda b: [v is None for v in operand(b)]
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, resolver)
    if isinstance(expr, ast.Between):
        return _compile_between(expr, resolver)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, resolver)
    if isinstance(expr, ast.FuncCall):
        return _compile_function(expr, resolver)
    if isinstance(expr, ast.AccessParam):
        return _raise_on_rows(
            ExecutionError(f"unbound access-pattern parameter $${expr.name}")
        )
    if isinstance(expr, ast.Param):
        return _raise_on_rows(ExecutionError(f"unbound parameter ${expr.name}"))
    return _raise_on_rows(ExecutionError(f"cannot evaluate expression {expr!r}"))


def selection_vector(tri_state: list) -> list[int]:
    """Indices where a predicate vector is TRUE (not FALSE/UNKNOWN)."""
    return [i for i, v in enumerate(tri_state) if v is True]


def _raise_on_rows(error: Exception) -> VecFn:
    """Defer an unconditional error until a non-empty batch arrives.

    The row engine only raises when it actually evaluates a row, so an
    unbound parameter over an empty input is *not* an error there; the
    compiled closure reproduces that by raising per non-empty batch.
    """

    def fn(batch: ColumnBatch) -> list:
        if batch.length:
            raise error
        return []

    return fn


# -- operators ----------------------------------------------------------


def _compile_binary(expr: ast.BinaryOp, resolver: RowResolver) -> VecFn:
    op = expr.op
    if op in ("and", "or"):
        left = compile_scalar(expr.left, resolver)
        right = compile_scalar(expr.right, resolver)
        if op == "and":

            def and_fn(b: ColumnBatch) -> list:
                return [
                    False
                    if (l is False or r is False)
                    else (None if (l is None or r is None) else True)
                    for l, r in zip(left(b), right(b))
                ]

            return and_fn

        def or_fn(b: ColumnBatch) -> list:
            return [
                True
                if (l is True or r is True)
                else (None if (l is None or r is None) else False)
                for l, r in zip(left(b), right(b))
            ]

        return or_fn

    if op in _CMP_OPS:
        return _compile_comparison(expr, resolver)
    left = compile_scalar(expr.left, resolver)
    right = compile_scalar(expr.right, resolver)
    if op == "like":
        return _compile_like(expr, left, right)
    if op == "||":

        def concat_fn(b: ColumnBatch) -> list:
            return [
                None if (l is None or r is None) else str(l) + str(r)
                for l, r in zip(left(b), right(b))
            ]

        return concat_fn
    if op in ("+", "-", "*", "/", "%"):

        def arith_fn(b: ColumnBatch) -> list:
            return [_arith(op, l, r) for l, r in zip(left(b), right(b))]

        return arith_fn
    return _raise_on_rows(ExecutionError(f"unknown operator {op!r}"))


#: comparison dispatch resolved once at compile time (not per row)
_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: exact types on the inlined comparability fast path; ``bool`` is
#: deliberately absent (``bool.__class__`` is ``bool``), so mixed
#: bool/number pairs fall through to :func:`compare` and raise there.
_FAST_NUM = (int, float)


def _fast_pair(op: str):
    """Pairwise three-valued comparison with the type check inlined;
    value-identical to ``compare(op, l, r)`` (the slow-path fallback)."""
    opfn = _CMP_OPS[op]

    def fn(l, r):
        if l is None or r is None:
            return None
        if l.__class__ is r.__class__ or (
            l.__class__ in _FAST_NUM and r.__class__ in _FAST_NUM
        ):
            return opfn(l, r)
        return compare(op, l, r)

    return fn


def _compile_comparison(expr: ast.BinaryOp, resolver: RowResolver) -> VecFn:
    """Comparison with the per-row type check inlined.

    :func:`repro.engine.evaluator.compare` costs a function call plus
    ``_check_comparable`` per row — the dominant cost of compiled
    predicates.  Same-type and int/float pairs take the inline path;
    anything else (numeric subclasses, mismatches destined to raise)
    falls back to :func:`compare`, so semantics are unchanged.  A
    literal operand is hoisted out of the loop entirely.
    """
    op = expr.op
    opfn = _CMP_OPS[op]
    for literal_side, other_side, flipped in (
        (expr.right, expr.left, False),
        (expr.left, expr.right, True),
    ):
        if not isinstance(literal_side, ast.Literal):
            continue
        const = literal_side.value
        if const is None:
            # NULL cmp anything is UNKNOWN for every row
            return lambda b: [None] * b.length
        other = compile_scalar(other_side, resolver)
        const_cls = const.__class__
        const_num = const_cls in _FAST_NUM

        def cmp_const(b: ColumnBatch) -> list:
            out = []
            append = out.append
            for v in other(b):
                if v is None:
                    append(None)
                elif v.__class__ is const_cls or (
                    const_num and v.__class__ in _FAST_NUM
                ):
                    append(opfn(const, v) if flipped else opfn(v, const))
                elif flipped:
                    append(compare(op, const, v))
                else:
                    append(compare(op, v, const))
            return out

        return cmp_const

    left = compile_scalar(expr.left, resolver)
    right = compile_scalar(expr.right, resolver)

    def cmp_fn(b: ColumnBatch) -> list:
        out = []
        append = out.append
        for l, r in zip(left(b), right(b)):
            if l is None or r is None:
                append(None)
            elif l.__class__ is r.__class__ or (
                l.__class__ in _FAST_NUM and r.__class__ in _FAST_NUM
            ):
                append(opfn(l, r))
            else:
                append(compare(op, l, r))
        return out

    return cmp_fn


def _compile_like(expr: ast.BinaryOp, left: VecFn, right: VecFn) -> VecFn:
    if isinstance(expr.right, ast.Literal) and isinstance(expr.right.value, str):
        # constant pattern: compile the regex once for the whole query
        pattern = expr.right.value
        regex = re.compile(
            re.escape(pattern).replace("%", ".*").replace("_", "."),
            flags=re.DOTALL,
        )

        def like_const(b: ColumnBatch) -> list:
            result = []
            for value in left(b):
                if value is None:
                    result.append(None)
                elif not isinstance(value, str):
                    raise TypeError_("LIKE requires string operands")
                else:
                    result.append(regex.fullmatch(value) is not None)
            return result

        return like_const

    def like_fn(b: ColumnBatch) -> list:
        result = []
        for value, pattern in zip(left(b), right(b)):
            if value is None or pattern is None:
                result.append(None)
            elif not isinstance(value, str) or not isinstance(pattern, str):
                raise TypeError_("LIKE requires string operands")
            else:
                result.append(sql_like(value, pattern))
        return result

    return like_fn


def _compile_unary(expr: ast.UnaryOp, resolver: RowResolver) -> VecFn:
    operand = compile_scalar(expr.operand, resolver)
    if expr.op == "not":

        def not_fn(b: ColumnBatch) -> list:
            result = []
            for value in operand(b):
                if value is None:
                    result.append(None)
                elif isinstance(value, bool):
                    result.append(not value)
                else:
                    raise TypeError_(f"NOT applied to non-boolean {value!r}")
            return result

        return not_fn
    if expr.op == "-":

        def neg_fn(b: ColumnBatch) -> list:
            result = []
            for value in operand(b):
                if value is None:
                    result.append(None)
                elif isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    result.append(-value)
                else:
                    raise TypeError_(f"unary minus on non-numeric {value!r}")
            return result

        return neg_fn
    return _raise_on_rows(ExecutionError(f"unknown unary operator {expr.op!r}"))


def _compile_in_list(expr: ast.InList, resolver: RowResolver) -> VecFn:
    operand = compile_scalar(expr.operand, resolver)
    items = [compile_scalar(item, resolver) for item in expr.items]
    negated = expr.negated
    tri_eq = _fast_pair("=")

    def in_fn(b: ColumnBatch) -> list:
        item_vectors = [item(b) for item in items]
        result = []
        for i, value in enumerate(operand(b)):
            if value is None:
                result.append(None)
                continue
            saw_null = False
            hit = False
            for vec in item_vectors:
                candidate = vec[i]
                if candidate is None:
                    saw_null = True
                    continue
                if tri_eq(value, candidate) is True:
                    hit = True
                    break
            if hit:
                result.append(False if negated else True)
            elif saw_null:
                result.append(None)
            else:
                result.append(True if negated else False)
        return result

    return in_fn


def _compile_between(expr: ast.Between, resolver: RowResolver) -> VecFn:
    operand = compile_scalar(expr.operand, resolver)
    low = compile_scalar(expr.low, resolver)
    high = compile_scalar(expr.high, resolver)
    negated = expr.negated
    tri_ge = _fast_pair(">=")
    tri_le = _fast_pair("<=")

    def between_fn(b: ColumnBatch) -> list:
        result = []
        for value, lo, hi in zip(operand(b), low(b), high(b)):
            lower = tri_ge(value, lo)
            upper = tri_le(value, hi)
            if lower is False or upper is False:
                outcome: Optional[bool] = False
            elif lower is None or upper is None:
                outcome = None
            else:
                outcome = True
            if negated:
                outcome = None if outcome is None else not outcome
            result.append(outcome)
        return result

    return between_fn


def _compile_case(expr: ast.CaseExpr, resolver: RowResolver) -> VecFn:
    branches = [
        (compile_scalar(cond, resolver), compile_scalar(value, resolver))
        for cond, value in expr.branches
    ]
    default = (
        compile_scalar(expr.default, resolver)
        if expr.default is not None
        else None
    )

    def case_fn(b: ColumnBatch) -> list:
        cond_vectors = [cond(b) for cond, _ in branches]
        value_vectors = [value(b) for _, value in branches]
        default_vector = default(b) if default is not None else None
        result = []
        for i in range(b.length):
            for cond_vec, value_vec in zip(cond_vectors, value_vectors):
                if cond_vec[i] is True:
                    result.append(value_vec[i])
                    break
            else:
                result.append(
                    default_vector[i] if default_vector is not None else None
                )
        return result

    return case_fn


def _compile_function(expr: ast.FuncCall, resolver: RowResolver) -> VecFn:
    name = expr.name.lower()
    args = [compile_scalar(a, resolver) for a in expr.args]
    if name == "coalesce":

        def coalesce_fn(b: ColumnBatch) -> list:
            vectors = [arg(b) for arg in args]
            result = []
            for i in range(b.length):
                for vec in vectors:
                    if vec[i] is not None:
                        result.append(vec[i])
                        break
                else:
                    result.append(None)
            return result

        return coalesce_fn
    if name == "abs":
        (arg,) = args

        def abs_fn(b: ColumnBatch) -> list:
            result = []
            for value in arg(b):
                if value is None:
                    result.append(None)
                elif isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    result.append(abs(value))
                else:
                    raise TypeError_(f"abs() on non-numeric {value!r}")
            return result

        return abs_fn
    if name in ("lower", "upper"):
        (arg,) = args
        to_lower = name == "lower"

        def casing_fn(b: ColumnBatch) -> list:
            result = []
            for value in arg(b):
                if value is None:
                    result.append(None)
                elif not isinstance(value, str):
                    raise TypeError_(f"{name}() on non-string {value!r}")
                else:
                    result.append(value.lower() if to_lower else value.upper())
            return result

        return casing_fn
    if name == "length":
        (arg,) = args

        def length_fn(b: ColumnBatch) -> list:
            result = []
            for value in arg(b):
                if value is None:
                    result.append(None)
                elif not isinstance(value, str):
                    raise TypeError_(f"length() on non-string {value!r}")
                else:
                    result.append(len(value))
            return result

        return length_fn
    return _raise_on_rows(ExecutionError(f"unknown function {expr.name!r}"))
