"""Column-vector batches.

A :class:`ColumnBatch` holds ``width`` parallel Python lists, one per
output column, all of the same ``length``.  NULL is ``None`` inside a
column vector, exactly as in row tuples, so converting between the two
representations is lossless.

The batch is the unit of work of the vectorized executor: operators
consume and produce lists of batches of at most
:data:`~repro.engine.vectorized.BATCH_SIZE` rows, and compiled
expressions evaluate over whole column vectors at a time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class ColumnBatch:
    """A fixed-width batch of rows in columnar layout."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: list[list], length: int):
        self.columns = columns
        self.length = length

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        if not rows:
            return cls.empty(width)
        if width == 0:
            return cls([], len(rows))
        return cls([list(col) for col in zip(*rows)], len(rows))

    @classmethod
    def empty(cls, width: int) -> "ColumnBatch":
        return cls([[] for _ in range(width)], 0)

    # -- conversion -------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.columns)

    def to_rows(self) -> list[tuple]:
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    # -- transformation ---------------------------------------------------

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather the rows at ``indices`` (a selection vector)."""
        return ColumnBatch(
            [[col[i] for i in indices] for col in self.columns], len(indices)
        )

    def concat_columns(self, other: "ColumnBatch") -> "ColumnBatch":
        """Widen: same length, columns of ``other`` appended."""
        assert self.length == other.length
        return ColumnBatch(self.columns + other.columns, self.length)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnBatch(width={self.width}, length={self.length})"


def batches_from_rows(
    rows: Sequence[tuple], width: int, batch_size: int
) -> Iterator[ColumnBatch]:
    """Chunk ``rows`` into column batches of at most ``batch_size``."""
    for start in range(0, len(rows), batch_size):
        yield ColumnBatch.from_rows(rows[start : start + batch_size], width)


def rows_from_batches(batches: Iterable[ColumnBatch]) -> list[tuple]:
    result: list[tuple] = []
    for batch in batches:
        result.extend(batch.to_rows())
    return result
