"""Query execution engines: scalar evaluation and operator execution.

Two interchangeable executors evaluate the same logical plans:

* :class:`Executor` — the tuple-at-a-time row engine (default, and the
  semantic oracle for differential testing);
* :class:`VectorizedExecutor` — the columnar batch engine
  (:mod:`repro.engine.vectorized`) with compiled predicates and
  index-aware scans.
"""

from repro.engine.executor import Executor, ExecContext
from repro.engine.evaluator import Evaluator, RowResolver
from repro.engine.vectorized import BATCH_SIZE, VectorizedExecutor

ENGINES = ("row", "vectorized")


def make_executor(engine: str, context: ExecContext, ctx=None, compile_cache=None):
    """Instantiate the named execution engine over ``context``.

    ``ctx`` (a :class:`repro.service.context.QueryContext`) makes
    execution cooperative: the row engine checks it every N rows, the
    vectorized engine every batch.  ``None`` costs nothing.
    ``compile_cache`` (a :class:`repro.prepared.PlanCompileCache`) lets
    the vectorized engine reuse compiled kernels across executions of a
    prepared template; the row engine ignores it.
    """
    if engine == "row":
        return Executor(context, ctx=ctx)
    if engine == "vectorized":
        return VectorizedExecutor(context, ctx=ctx, compile_cache=compile_cache)
    from repro.errors import ExecutionError

    raise ExecutionError(
        f"unknown execution engine {engine!r} (expected one of {ENGINES})"
    )


__all__ = [
    "BATCH_SIZE",
    "ENGINES",
    "Evaluator",
    "ExecContext",
    "Executor",
    "RowResolver",
    "VectorizedExecutor",
    "make_executor",
]
