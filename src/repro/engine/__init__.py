"""Query execution engine: scalar evaluation and operator execution."""

from repro.engine.executor import Executor, ExecContext
from repro.engine.evaluator import Evaluator, RowResolver

__all__ = ["Executor", "ExecContext", "Evaluator", "RowResolver"]
