"""Relationship tuples and the group-graph cycle detector.

A :class:`RelationTuple` is the Zanzibar ``(object, relation, subject)``
triple:

* ``object`` — ``"type:id"``, e.g. ``"document:readme"``;
* ``relation`` — a relation name declared by the namespace config,
  e.g. ``"viewer"`` or ``"parent"``;
* ``subject`` — either a concrete user (``"user:alice"``), a *userset*
  (``"team:eng#member"`` — every member of team ``eng``), or a plain
  object (``"folder:root"`` — the subject of a hierarchy relation such
  as ``parent``);
* ``expires_at`` — optional wall-clock bound; ``None`` means the grant
  never expires.  Internally ``None`` is represented by the large
  sentinel :data:`NEVER_EXPIRES` so the compiled views can keep a plain
  ``expires_at > $time`` conjunct inside the paper's conjunctive-query
  fragment (no ``OR``/``IS NULL``).

The **group graph** has one node per object and one directed edge per
tuple that makes an object's membership depend on another object's:
userset subjects (``doc ← team#member``) and hierarchy subjects
(``doc ← folder``).  :func:`detect_cycle` walks it deterministically —
adjacency is built from the *sorted* tuple set and neighbors are
visited in sorted order — so a cyclic tuple set is rejected with a
byte-stable :class:`~repro.errors.RebacCycleError` regardless of the
order the tuples were written in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import RebacCycleError, RebacError

#: wall-clock sentinel for "never expires" (far beyond year 9999);
#: keeps ``expires_at > $time`` a single comparable conjunct
NEVER_EXPIRES = 253402300800.0


def parse_object(text: str) -> tuple[str, str]:
    """Split ``"type:id"`` into ``(type, id)``; raises on malformed input."""
    kind, sep, ident = text.partition(":")
    if not sep or not kind or not ident or "#" in text:
        raise RebacError(
            f"malformed object {text!r} (expected 'type:id')"
        )
    return kind, ident


def parse_subject(text: str) -> tuple[str, str, Optional[str]]:
    """Split a subject into ``(type, id, relation-or-None)``.

    ``"user:alice"`` → ``("user", "alice", None)``;
    ``"team:eng#member"`` → ``("team", "eng", "member")``.
    """
    base, sep, relation = text.partition("#")
    if sep and not relation:
        raise RebacError(
            f"malformed subject {text!r} (empty relation after '#')"
        )
    kind, colon, ident = base.partition(":")
    if not colon or not kind or not ident:
        raise RebacError(
            f"malformed subject {text!r} (expected 'type:id' or "
            "'type:id#relation')"
        )
    return kind, ident, (relation if sep else None)


@dataclass(frozen=True, order=True)
class RelationTuple:
    """One ``(object, relation, subject)`` triple with optional expiry."""

    object: str
    relation: str
    subject: str
    expires_at: float = NEVER_EXPIRES

    def __post_init__(self):
        parse_object(self.object)
        parse_subject(self.subject)
        if not self.relation:
            raise RebacError("relation name must be non-empty")

    @property
    def subject_is_userset(self) -> bool:
        return "#" in self.subject

    @property
    def subject_is_user(self) -> bool:
        return not self.subject_is_userset and self.subject.startswith("user:")

    @property
    def subject_object(self) -> str:
        """The subject's ``type:id`` part (userset relation stripped)."""
        return self.subject.partition("#")[0]

    @property
    def subject_relation(self) -> Optional[str]:
        _, sep, relation = self.subject.partition("#")
        return relation if sep else None

    @property
    def never_expires(self) -> bool:
        return self.expires_at >= NEVER_EXPIRES

    def key(self) -> tuple[str, str, str]:
        """Identity without the expiry: one grant per (o, r, s)."""
        return (self.object, self.relation, self.subject)

    def as_dict(self) -> dict[str, object]:
        return {
            "object": self.object,
            "relation": self.relation,
            "subject": self.subject,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RelationTuple":
        return cls(
            object=data["object"],
            relation=data["relation"],
            subject=data["subject"],
            expires_at=float(data.get("expires_at", NEVER_EXPIRES)),
        )

    def __str__(self) -> str:
        suffix = "" if self.never_expires else f" [expires {self.expires_at}]"
        return f"({self.object}, {self.relation}, {self.subject}){suffix}"


def _group_edges(
    tuples: Iterable[RelationTuple], hierarchy_relations: frozenset[str]
) -> dict[str, list[str]]:
    """Sorted adjacency of the group graph.

    An edge ``a → b`` means "a's membership depends on b's": userset
    subjects always add one, hierarchy-relation tuples with a plain
    object subject add one (``doc → folder`` for a ``parent`` tuple).
    """
    edges: dict[str, set[str]] = {}
    for t in sorted(set(tuples)):
        if t.subject_is_userset:
            edges.setdefault(t.object, set()).add(t.subject_object)
        elif t.relation in hierarchy_relations and not t.subject_is_user:
            edges.setdefault(t.object, set()).add(t.subject_object)
    return {node: sorted(targets) for node, targets in sorted(edges.items())}


def detect_cycle(
    tuples: Iterable[RelationTuple],
    hierarchy_relations: frozenset[str] = frozenset(),
) -> Optional[list[str]]:
    """First cycle in the group graph, canonicalized, or None.

    Deterministic: nodes are explored in sorted order, neighbors in
    sorted order, and the reported cycle is rotated so its
    lexicographically smallest node comes first — the same cyclic set
    yields the same cycle no matter how it was assembled.
    """
    edges = _group_edges(tuples, hierarchy_relations)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    for node in edges:
        if color[node] != WHITE:
            continue
        # iterative DFS with an explicit path stack
        stack: list[tuple[str, int]] = [(node, 0)]
        path = [node]
        color[node] = GREY
        while stack:
            current, cursor = stack[-1]
            neighbors = edges.get(current, ())
            if cursor < len(neighbors):
                stack[-1] = (current, cursor + 1)
                target = neighbors[cursor]
                state = color.get(target, BLACK if target not in edges else WHITE)
                if state == GREY:
                    cycle = path[path.index(target):]
                    return _canonical_cycle(cycle)
                if state == WHITE:
                    color[target] = GREY
                    stack.append((target, 0))
                    path.append(target)
            else:
                color[current] = BLACK
                stack.pop()
                path.pop()
    return None


def _canonical_cycle(cycle: list[str]) -> list[str]:
    """Rotate a cycle so its smallest node leads."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def cycle_error(cycle: list[str]) -> RebacCycleError:
    """The byte-stable error for a detected cycle."""
    loop = " -> ".join(cycle + [cycle[0]])
    return RebacCycleError(
        f"relationship cycle detected in the group graph: {loop}"
    )


class TupleStore:
    """Thread-safe set of relation tuples, keyed on (o, r, s).

    Writing a tuple whose (object, relation, subject) already exists
    replaces its expiry.  The store is *mechanism only* — validation
    against the namespace and cycle rejection live in
    :class:`~repro.rebac.manager.RebacManager`, which checks a tentative
    tuple set *before* committing anything here.
    """

    def __init__(self, tuples: Iterable[RelationTuple] = ()):
        self._lock = threading.RLock()
        self._tuples: dict[tuple[str, str, str], RelationTuple] = {}
        for t in tuples:
            self._tuples[t.key()] = t

    def write(self, t: RelationTuple) -> Optional[RelationTuple]:
        """Insert or replace; returns the previous tuple (or None)."""
        with self._lock:
            previous = self._tuples.get(t.key())
            self._tuples[t.key()] = t
            return previous

    def delete(self, key: tuple[str, str, str]) -> Optional[RelationTuple]:
        """Remove by (object, relation, subject); returns the removed
        tuple or None when absent."""
        with self._lock:
            return self._tuples.pop(key, None)

    def get(self, key: tuple[str, str, str]) -> Optional[RelationTuple]:
        with self._lock:
            return self._tuples.get(key)

    def snapshot(self) -> list[RelationTuple]:
        """The current tuples, sorted (the deterministic iteration
        order every compile pass uses)."""
        with self._lock:
            return sorted(self._tuples.values())

    def with_write(self, t: RelationTuple) -> list[RelationTuple]:
        """A sorted copy of the set as it would look after writing ``t``
        (for pre-commit cycle checks)."""
        with self._lock:
            tentative = dict(self._tuples)
            tentative[t.key()] = t
            return sorted(tentative.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._tuples)

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        with self._lock:
            return key in self._tuples
