"""Namespace configuration: object types, relations, inheritance rules.

A :class:`NamespaceConfig` declares, per object type, the relations
tuples may use and how they combine into effective membership — the
pg-authz / Zanzibar rewrite rules, restricted to unions of:

* :class:`Direct` — membership written directly as tuples (concrete
  users or usersets like ``team:eng#member``);
* :class:`Computed` — another relation on the *same* object is folded
  in (``editor ⊆ viewer``);
* :class:`Via` — tuple-to-userset: follow a hierarchy relation (e.g.
  ``parent``) to another object and take one of *its* relations
  (``viewer of a document includes viewer of its parent folder``).

Relations named ``permissions`` are the externally meaningful ones the
compiler materializes into ``RebacGrants`` rows and authorization
views.  A :class:`TableBinding` maps an object type onto the SQL
relation its compiled views join against.

Configs serialize to plain dicts (``to_state`` / ``from_state``) so
the WAL and snapshots can carry them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import RebacError
from repro.rebac.tuples import RelationTuple, parse_subject


@dataclass(frozen=True)
class Direct:
    """Membership from tuples written directly on this relation."""

    def to_state(self) -> dict:
        return {"kind": "direct"}


@dataclass(frozen=True)
class Computed:
    """Union in another relation of the same object (editor ⊆ viewer)."""

    relation: str

    def to_state(self) -> dict:
        return {"kind": "computed", "relation": self.relation}


@dataclass(frozen=True)
class Via:
    """Tuple-to-userset: follow ``hierarchy`` tuples to a related
    object and union in its ``relation`` (folder inheritance)."""

    hierarchy: str
    relation: str

    def to_state(self) -> dict:
        return {
            "kind": "via",
            "hierarchy": self.hierarchy,
            "relation": self.relation,
        }


def _rule_from_state(data: dict):
    kind = data.get("kind")
    if kind == "direct":
        return Direct()
    if kind == "computed":
        return Computed(relation=data["relation"])
    if kind == "via":
        return Via(hierarchy=data["hierarchy"], relation=data["relation"])
    raise RebacError(f"unknown namespace rule kind {kind!r}")


@dataclass(frozen=True)
class RelationDef:
    """One relation on an object type: a union of rewrite rules."""

    name: str
    union: tuple = (Direct(),)

    def to_state(self) -> dict:
        return {
            "name": self.name,
            "union": [rule.to_state() for rule in self.union],
        }

    @classmethod
    def from_state(cls, data: dict) -> "RelationDef":
        return cls(
            name=data["name"],
            union=tuple(_rule_from_state(r) for r in data["union"]),
        )


@dataclass(frozen=True)
class TableBinding:
    """How an object type maps onto a SQL relation.

    ``table`` is the relation the compiled views select from;
    ``id_column`` is the column the object id joins on; ``columns`` is
    the full projection list (the views join against ``RebacGrants``,
    so ``select *`` would leak grant columns).
    """

    table: str
    id_column: str
    columns: tuple[str, ...]

    def to_state(self) -> dict:
        return {
            "table": self.table,
            "id_column": self.id_column,
            "columns": list(self.columns),
        }

    @classmethod
    def from_state(cls, data: dict) -> "TableBinding":
        return cls(
            table=data["table"],
            id_column=data["id_column"],
            columns=tuple(data["columns"]),
        )


@dataclass(frozen=True)
class ObjectTypeDef:
    """One object type: its relations, permissions, and SQL binding."""

    name: str
    relations: tuple[RelationDef, ...]
    #: relations materialized as RebacGrants rows + authorization views
    permissions: tuple[str, ...] = ()
    binding: Optional[TableBinding] = None

    def relation(self, name: str) -> RelationDef:
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise RebacError(
            f"object type {self.name!r} has no relation {name!r}"
        )

    def has_relation(self, name: str) -> bool:
        return any(rel.name == name for rel in self.relations)

    def to_state(self) -> dict:
        return {
            "name": self.name,
            "relations": [rel.to_state() for rel in self.relations],
            "permissions": list(self.permissions),
            "binding": None if self.binding is None else self.binding.to_state(),
        }

    @classmethod
    def from_state(cls, data: dict) -> "ObjectTypeDef":
        binding = data.get("binding")
        return cls(
            name=data["name"],
            relations=tuple(
                RelationDef.from_state(r) for r in data["relations"]
            ),
            permissions=tuple(data.get("permissions", ())),
            binding=None if binding is None else TableBinding.from_state(binding),
        )


class NamespaceConfig:
    """The full namespace: object types by name."""

    def __init__(self, object_types: Iterable[ObjectTypeDef]):
        self.object_types: dict[str, ObjectTypeDef] = {}
        for otype in object_types:
            if otype.name in self.object_types:
                raise RebacError(f"duplicate object type {otype.name!r}")
            self.object_types[otype.name] = otype
        self._validate()

    def _validate(self) -> None:
        for otype in self.object_types.values():
            for rel in otype.relations:
                for rule in rel.union:
                    if isinstance(rule, Computed):
                        if not otype.has_relation(rule.relation):
                            raise RebacError(
                                f"{otype.name}.{rel.name}: computed rule "
                                f"references unknown relation {rule.relation!r}"
                            )
                    elif isinstance(rule, Via):
                        if not otype.has_relation(rule.hierarchy):
                            raise RebacError(
                                f"{otype.name}.{rel.name}: via rule references "
                                f"unknown hierarchy relation {rule.hierarchy!r}"
                            )
            for permission in otype.permissions:
                if not otype.has_relation(permission):
                    raise RebacError(
                        f"object type {otype.name!r} declares permission "
                        f"{permission!r} with no matching relation"
                    )

    def object_type(self, name: str) -> ObjectTypeDef:
        otype = self.object_types.get(name)
        if otype is None:
            raise RebacError(f"unknown object type {name!r}")
        return otype

    @property
    def hierarchy_relations(self) -> frozenset[str]:
        """Relations used as Via sources anywhere — the ones whose
        plain-object tuples add group-graph edges."""
        names: set[str] = set()
        for otype in self.object_types.values():
            for rel in otype.relations:
                for rule in rel.union:
                    if isinstance(rule, Via):
                        names.add(rule.hierarchy)
        return frozenset(names)

    def validate_tuple(self, t: RelationTuple) -> None:
        """Check a tuple against the namespace before it is committed."""
        otype_name = t.object.partition(":")[0]
        otype = self.object_type(otype_name)
        if not otype.has_relation(t.relation):
            raise RebacError(
                f"object type {otype_name!r} has no relation {t.relation!r}"
            )
        subject_type, _, subject_relation = parse_subject(t.subject)
        if subject_relation is not None:
            subject_otype = self.object_type(subject_type)
            if not subject_otype.has_relation(subject_relation):
                raise RebacError(
                    f"userset subject {t.subject!r}: object type "
                    f"{subject_type!r} has no relation {subject_relation!r}"
                )
        elif subject_type != "user":
            # plain-object subject: only meaningful on hierarchy relations
            if t.relation not in self.hierarchy_relations:
                raise RebacError(
                    f"subject {t.subject!r} is neither a user nor a userset, "
                    f"and {t.relation!r} is not a hierarchy relation"
                )
            self.object_type(subject_type)

    def to_state(self) -> dict:
        return {
            "object_types": [
                otype.to_state()
                for _, otype in sorted(self.object_types.items())
            ]
        }

    @classmethod
    def from_state(cls, data: dict) -> "NamespaceConfig":
        return cls(
            ObjectTypeDef.from_state(o) for o in data["object_types"]
        )
