"""repro.rebac — relationship-tuple policies compiled to authorization views.

A Zanzibar-style relationship model lowered onto the paper's machinery:

* :mod:`repro.rebac.tuples` — the ``(object, relation, subject)`` tuple
  store with userset subjects (``team:eng#member``), optional grant
  expiry, and deterministic cycle detection on the group graph;
* :mod:`repro.rebac.namespace` — the namespace configuration language
  (object types, relations, ``computed``/``via`` inheritance rules);
* :mod:`repro.rebac.compiler` — the policy compiler: a deterministic
  grant-closure fixpoint materialized as the ``RebacGrants`` relation
  plus parameterized authorization views whose bodies stay inside the
  paper's conjunctive-query fragment (``$user_id``/``$time``);
* :mod:`repro.rebac.manager` — the live subsystem on a Database: tuple
  writes flow through the WAL as policy-bearing records (bumping the
  cluster policy epoch *before* any state changes, so a revoked tuple
  is never served stale), closure deltas are applied in a deterministic
  order shared by coordinator, replicas, and crash recovery, and
  affected prepared templates are invalidated per user;
* :mod:`repro.rebac.trace` — the decision tracer behind the
  ``\\explain`` meta-command and the ``explain`` wire message: which
  authorization view / inference rule / tuple chain justified an
  acceptance, or which missing coverage caused a rejection.
"""

from repro.rebac.tuples import (
    NEVER_EXPIRES,
    RebacCycleError,
    RebacError,
    RelationTuple,
    TupleStore,
    detect_cycle,
    parse_object,
    parse_subject,
)
from repro.rebac.namespace import (
    Computed,
    Direct,
    NamespaceConfig,
    ObjectTypeDef,
    RelationDef,
    TableBinding,
    Via,
)
from repro.rebac.compiler import (
    Grant,
    closure_rows,
    compile_views,
    compute_closure,
    view_sql,
)
from repro.rebac.manager import RebacManager, attach_rebac
from repro.rebac.trace import ExplainReport, explain_query, render_report

__all__ = [
    "NEVER_EXPIRES",
    "Computed",
    "Direct",
    "ExplainReport",
    "Grant",
    "NamespaceConfig",
    "ObjectTypeDef",
    "RebacCycleError",
    "RebacError",
    "RebacManager",
    "RelationDef",
    "RelationTuple",
    "TableBinding",
    "TupleStore",
    "Via",
    "attach_rebac",
    "closure_rows",
    "compile_views",
    "compute_closure",
    "detect_cycle",
    "explain_query",
    "parse_object",
    "parse_subject",
    "render_report",
    "view_sql",
]
