"""Decision tracing: why a query was accepted or rejected.

:func:`explain_query` runs the Non-Truman validity test and joins the
decision with ReBAC provenance: for an accepted query it names, per
compiled authorization view the witness used, the **tuple chain** that
justifies the session user's grant on the objects the query names; for
a rejected query it reports the inference rules that failed to fire and
which missing (or expired) tuple chain is to blame.  The same report
backs the CLI ``\\explain`` meta-command and the ``explain`` wire
message, and :func:`render_report` is the shared text rendering, so
tests can assert on exactly what users see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.sql import ast, parse_statement

if TYPE_CHECKING:  # pragma: no cover
    from repro.authviews.session import SessionContext
    from repro.db import Database


@dataclass
class ChainReport:
    """One justified grant: the tuple chain behind it."""

    object: str
    relation: str
    user: str
    expires_at: float
    chain: tuple[str, ...]  # rendered tuples, object-to-user order

    def as_dict(self) -> dict:
        return {
            "object": self.object,
            "relation": self.relation,
            "user": self.user,
            "expires_at": self.expires_at,
            "chain": list(self.chain),
        }


@dataclass
class ExplainReport:
    """Everything ``\\explain`` shows about one query + session."""

    sql: str
    user: str
    time: Optional[float]
    validity: str
    reason: str
    rules: tuple[str, ...]
    views_used: tuple[str, ...]
    from_cache: bool
    probes_executed: int
    chains: list[ChainReport] = field(default_factory=list)
    denials: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return self.validity != "invalid"

    def as_dict(self) -> dict:
        return {
            "sql": self.sql,
            "user": self.user,
            "time": self.time,
            "validity": self.validity,
            "reason": self.reason,
            "rules": list(self.rules),
            "views_used": list(self.views_used),
            "from_cache": self.from_cache,
            "probes_executed": self.probes_executed,
            "chains": [chain.as_dict() for chain in self.chains],
            "denials": list(self.denials),
        }


# -- query inspection ---------------------------------------------------------


def _collect_eq_literals(expr: Optional[ast.Expr], out: dict[str, set]) -> None:
    """Every ``column = literal`` pair anywhere in an expression tree."""
    if expr is None:
        return
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "=":
            pairs = ((expr.left, expr.right), (expr.right, expr.left))
            for col, lit in pairs:
                if isinstance(col, ast.ColumnRef) and isinstance(
                    lit, ast.Literal
                ):
                    out.setdefault(col.name.lower(), set()).add(lit.value)
        _collect_eq_literals(expr.left, out)
        _collect_eq_literals(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_eq_literals(expr.operand, out)


def _walk_tables(item: ast.TableExpr, out: set[str]) -> None:
    if isinstance(item, ast.TableRef):
        out.add(item.name.lower())
    elif isinstance(item, ast.JoinRef):
        _walk_tables(item.left, out)
        _walk_tables(item.right, out)
    elif isinstance(item, ast.SubqueryRef):
        tables, _ = _inspect_query(item.query)
        out.update(tables)


def _inspect_query(query: ast.QueryExpr) -> tuple[set[str], dict[str, set]]:
    """(referenced table names, column → equality-literal values)."""
    tables: set[str] = set()
    literals: dict[str, set] = {}
    if isinstance(query, ast.SetOp):
        for side in (query.left, query.right):
            sub_tables, sub_literals = _inspect_query(side)
            tables.update(sub_tables)
            for col, values in sub_literals.items():
                literals.setdefault(col, set()).update(values)
        return tables, literals
    for item in query.from_items:
        _walk_tables(item, tables)
        if isinstance(item, ast.JoinRef):
            _collect_eq_literals(item.condition, literals)
    _collect_eq_literals(query.where, literals)
    return tables, literals


# -- the tracer ---------------------------------------------------------------


def _render_chain(grant) -> tuple[str, ...]:
    return tuple(str(t) for t in grant.chain)


def explain_query(
    db: "Database",
    sql: Union[str, ast.QueryExpr],
    session: "SessionContext",
) -> ExplainReport:
    """Check validity and trace the decision back to tuple chains."""
    query = parse_statement(sql) if isinstance(sql, str) else sql
    decision = db.check_validity(query, session)
    report = ExplainReport(
        sql=sql if isinstance(sql, str) else str(sql),
        user=session.user,
        time=session.time,
        validity=decision.validity.value,
        reason=decision.reason,
        rules=tuple(step.rule for step in decision.trace),
        views_used=decision.views_used,
        from_cache=decision.from_cache,
        probes_executed=decision.probes_executed,
    )
    rebac = getattr(db, "rebac", None)
    if rebac is None:
        return report
    tables, literals = _inspect_query(query)
    user = session.user
    if decision.valid:
        # name the chain behind each compiled view the witness used
        for name in decision.views_used:
            permission_info = rebac.view_permission(name)
            if permission_info is None:
                continue
            otype_name, permission = permission_info
            _trace_permission(
                rebac, report, otype_name, permission, user, literals,
                at_time=session.time,
            )
    else:
        # name the missing coverage: every bound table the query reads
        for otype_name in sorted(rebac.namespace.object_types):
            otype = rebac.namespace.object_types[otype_name]
            binding = otype.binding
            if binding is None or binding.table.lower() not in tables:
                continue
            for permission in otype.permissions:
                _trace_permission(
                    rebac, report, otype_name, permission, user, literals,
                    at_time=session.time,
                )
    return report


def _trace_permission(
    rebac,
    report: ExplainReport,
    otype_name: str,
    permission: str,
    user: str,
    literals: dict[str, set],
    at_time: Optional[float],
) -> None:
    otype = rebac.namespace.object_types[otype_name]
    binding = otype.binding
    ids = (
        sorted(str(v) for v in literals.get(binding.id_column.lower(), ()))
        if binding is not None
        else []
    )
    if ids:
        objects = [f"{otype_name}:{object_id}" for object_id in ids]
    else:
        # no specific object named in the query: show the user's
        # standing grants of this permission instead
        objects = [
            object_
            for object_, relation, _ in rebac.user_grants(user)
            if relation == permission
            and object_.partition(":")[0] == otype_name
        ]
        if not objects:
            report.denials.append(
                f"user {user!r} holds no {permission!r} grant on any "
                f"{otype_name}"
            )
            return
    for object_ in objects:
        denial = rebac.denial_reason(object_, permission, user, at_time=at_time)
        if denial is not None:
            report.denials.append(denial)
            continue
        grant = rebac.grant_for(object_, permission, user)
        report.chains.append(
            ChainReport(
                object=object_,
                relation=permission,
                user=user,
                expires_at=grant.expires_at,
                chain=_render_chain(grant),
            )
        )


# -- rendering ----------------------------------------------------------------


def render_report(report: ExplainReport) -> list[str]:
    """The text rendering shared by the CLI and the wire clients."""
    from repro.rebac.tuples import NEVER_EXPIRES

    lines = [f"validity: {report.validity}"]
    if report.reason:
        lines.append(f"reason: {report.reason}")
    if report.rules:
        lines.append("rules: " + ", ".join(report.rules))
    if report.views_used:
        lines.append("views used: " + ", ".join(report.views_used))
    if report.probes_executed:
        lines.append(f"probes executed: {report.probes_executed}")
    if report.from_cache:
        lines.append("decision served from validity cache")
    for chain in report.chains:
        expiry = (
            "never expires"
            if chain.expires_at >= NEVER_EXPIRES
            else f"expires {chain.expires_at}"
        )
        lines.append(
            f"tuple chain: {chain.object} {chain.relation} for user "
            f"{chain.user!r} ({expiry})"
        )
        for link in chain.chain:
            lines.append(f"    {link}")
    for denial in report.denials:
        lines.append(f"denied: {denial}")
    return lines
