"""The policy compiler: tuples + namespace → grants + authorization views.

Two halves, both deterministic functions of the *sorted* tuple set:

* :func:`compute_closure` — a fixpoint over the namespace rewrite rules
  that flattens userset membership, same-object ``computed`` unions,
  and ``via`` hierarchy inheritance into one concrete user per grant.
  Each grant remembers the **tuple chain** that justifies it (for
  ``\\explain``) and the chain's effective expiry (the minimum over its
  tuples; a user reachable over several chains keeps the one that
  expires last).
* :func:`view_sql` / :func:`compile_views` — the SQL half: the closure
  is materialized as rows of the ``RebacGrants`` relation, and each
  ``(object type, permission)`` pair becomes one parameterized
  authorization view joining the bound table against ``RebacGrants``
  on ``$user_id`` with an ``expires_at > $time`` conjunct.  The view
  bodies are plain conjunctive queries — equality/comparison conjuncts
  over a join, no disjunction — so the paper's validity-inference rules
  (U1–U3, C1–C3) apply to compiled ReBAC policies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.rebac.namespace import Computed, Direct, NamespaceConfig, Via
from repro.rebac.tuples import NEVER_EXPIRES, RelationTuple, parse_object

#: the materialized grant-closure relation every compiled view joins
GRANTS_TABLE = "RebacGrants"

GRANTS_SCHEMA_SQL = (
    "create table RebacGrants(\n"
    "    object_type varchar(20),\n"
    "    object_id varchar(40),\n"
    "    relation varchar(20),\n"
    "    user_id varchar(40),\n"
    "    expires_at float,\n"
    "    primary key (object_type, object_id, relation, user_id)\n"
    ")"
)


@dataclass(frozen=True)
class Grant:
    """One closed-over grant: a user holds a relation on an object.

    ``chain`` is the justifying tuple path, ordered from the granted
    object down to the concrete user; ``expires_at`` is the chain's
    effective expiry (min over its tuples).
    """

    expires_at: float
    chain: tuple[RelationTuple, ...]

    @classmethod
    def from_chain(cls, chain: tuple[RelationTuple, ...]) -> "Grant":
        return cls(
            expires_at=min(t.expires_at for t in chain),
            chain=chain,
        )

    @property
    def never_expires(self) -> bool:
        return self.expires_at >= NEVER_EXPIRES

    def sort_key(self):
        """Total preference order (smaller = better): grants that
        expire later win; ties break to the shorter, then
        lexicographically smaller, chain — so the kept chain is a
        deterministic function of the tuple *set*."""
        return (
            -self.expires_at,
            len(self.chain),
            tuple(t.key() for t in self.chain),
        )


#: closure maps (object, relation) → {user_id → Grant}
Closure = dict[tuple[str, str], dict[str, Grant]]


def _merge(
    closure: Closure,
    object_: str,
    relation: str,
    user_id: str,
    grant: Grant,
) -> bool:
    """Install ``grant`` unless an equal-or-better one is present."""
    users = closure.setdefault((object_, relation), {})
    current = users.get(user_id)
    if current is not None and current.sort_key() <= grant.sort_key():
        return False
    users[user_id] = grant
    return True


def compute_closure(
    namespace: NamespaceConfig, tuples: Iterable[RelationTuple]
) -> Closure:
    """Fixpoint of the namespace rewrite rules over the tuple set.

    Expired tuples are *not* filtered here — closure rows carry their
    expiry and the compiled views compare it against ``$time``, so the
    closure itself is independent of the clock.  The result depends
    only on the tuple set: input is sorted, every pass iterates in
    sorted order, and :func:`Grant.sort_key` breaks ties totally.
    """
    tuples_sorted = sorted(set(tuples))
    closure: Closure = {}

    # index the hierarchy tuples once: Via rules walk object → parent
    via_edges: dict[tuple[str, str], list[RelationTuple]] = {}
    for t in tuples_sorted:
        if not t.subject_is_userset and not t.subject_is_user:
            via_edges.setdefault((t.object, t.relation), []).append(t)

    changed = True
    while changed:
        changed = False
        # 1. tuple-driven membership (Direct rule): concrete users seed
        #    grants, userset subjects splice in the subject's members.
        for t in tuples_sorted:
            otype_name = t.object.partition(":")[0]
            otype = namespace.object_types.get(otype_name)
            if otype is None or not otype.has_relation(t.relation):
                continue
            rel_def = otype.relation(t.relation)
            if not any(isinstance(rule, Direct) for rule in rel_def.union):
                continue
            if t.subject_is_user:
                user_id = t.subject.partition(":")[2]
                if _merge(
                    closure, t.object, t.relation, user_id,
                    Grant.from_chain((t,)),
                ):
                    changed = True
            elif t.subject_is_userset:
                source = closure.get(
                    (t.subject_object, t.subject_relation), {}
                )
                for user_id, grant in sorted(source.items()):
                    if _merge(
                        closure, t.object, t.relation, user_id,
                        Grant.from_chain((t,) + grant.chain),
                    ):
                        changed = True
        # 2. rule-driven membership: computed / via unions, iterated
        #    over the (sorted) objects the closure already knows about.
        for (object_, relation), users in sorted(closure.items()):
            otype_name = object_.partition(":")[0]
            otype = namespace.object_types.get(otype_name)
            if otype is None:
                continue
            for target_rel in otype.relations:
                for rule in target_rel.union:
                    if (
                        isinstance(rule, Computed)
                        and rule.relation == relation
                    ):
                        for user_id, grant in sorted(users.items()):
                            if _merge(
                                closure, object_, target_rel.name,
                                user_id, grant,
                            ):
                                changed = True
        for t in tuples_sorted:
            if t.subject_is_userset or t.subject_is_user:
                continue
            # t is a hierarchy tuple (object, parent, parent-object);
            # Via(hierarchy=t.relation, relation=r) pulls the parent's
            # r-members down onto t.object.
            otype_name = t.object.partition(":")[0]
            otype = namespace.object_types.get(otype_name)
            if otype is None:
                continue
            for target_rel in otype.relations:
                for rule in target_rel.union:
                    if (
                        not isinstance(rule, Via)
                        or rule.hierarchy != t.relation
                    ):
                        continue
                    source = closure.get((t.subject, rule.relation), {})
                    for user_id, grant in sorted(source.items()):
                        if _merge(
                            closure, t.object, target_rel.name, user_id,
                            Grant.from_chain((t,) + grant.chain),
                        ):
                            changed = True
    return closure


def closure_rows(
    namespace: NamespaceConfig, closure: Closure
) -> list[tuple[str, str, str, str, float]]:
    """The closure as sorted ``RebacGrants`` rows —
    ``(object_type, object_id, relation, user_id, expires_at)`` — for
    *permission* relations only (plumbing relations like ``member`` or
    ``parent`` stay out of the SQL surface)."""
    rows: list[tuple[str, str, str, str, float]] = []
    for (object_, relation), users in closure.items():
        otype_name, object_id = parse_object(object_)
        otype = namespace.object_types.get(otype_name)
        if otype is None or relation not in otype.permissions:
            continue
        for user_id, grant in users.items():
            rows.append(
                (otype_name, object_id, relation, user_id, grant.expires_at)
            )
    rows.sort()
    return rows


def view_name(object_type: str, permission: str) -> str:
    """``("document", "viewer")`` → ``"RebacDocumentViewer"``."""
    return f"Rebac{object_type.capitalize()}{permission.capitalize()}"


def view_sql(
    namespace: NamespaceConfig, object_type: str, permission: str
) -> str:
    """The authorization-view DDL for one (object type, permission).

    The body is a conjunctive query: bound table ⋈ RebacGrants on the
    id column, with the grant row pinned to this type/relation, the
    session user (``$user_id``), and unexpired grants only
    (``expires_at > $time``)."""
    otype = namespace.object_type(object_type)
    if permission not in otype.permissions:
        from repro.errors import RebacError

        raise RebacError(
            f"{permission!r} is not a declared permission of object type "
            f"{object_type!r}"
        )
    binding = otype.binding
    if binding is None:
        from repro.errors import RebacError

        raise RebacError(
            f"object type {object_type!r} has no table binding"
        )
    table = binding.table
    select_list = ", ".join(f"{table}.{col}" for col in binding.columns)
    return (
        f"create authorization view {view_name(object_type, permission)} as\n"
        f"    select {select_list}\n"
        f"    from {table}, {GRANTS_TABLE}\n"
        f"    where {GRANTS_TABLE}.object_type = '{object_type}'\n"
        f"      and {GRANTS_TABLE}.object_id = {table}.{binding.id_column}\n"
        f"      and {GRANTS_TABLE}.relation = '{permission}'\n"
        f"      and {GRANTS_TABLE}.user_id = $user_id\n"
        f"      and {GRANTS_TABLE}.expires_at > $time"
    )


#: introspection view: the session user's own unexpired grants
MY_GRANTS_VIEW_SQL = (
    "create authorization view RebacMyGrants as\n"
    "    select RebacGrants.object_type, RebacGrants.object_id,\n"
    "           RebacGrants.relation, RebacGrants.expires_at\n"
    "    from RebacGrants\n"
    "    where RebacGrants.user_id = $user_id\n"
    "      and RebacGrants.expires_at > $time"
)


def compile_views(namespace: NamespaceConfig) -> list[str]:
    """All view DDL for the namespace, in deterministic order: one per
    bound (object type, permission), plus the introspection view."""
    statements: list[str] = []
    for otype_name in sorted(namespace.object_types):
        otype = namespace.object_types[otype_name]
        if otype.binding is None:
            continue
        for permission in otype.permissions:
            statements.append(view_sql(namespace, otype_name, permission))
    statements.append(MY_GRANTS_VIEW_SQL)
    return statements
