"""The live ReBAC subsystem attached to a Database.

:func:`attach_rebac` installs a :class:`RebacManager` on a database (or
cluster coordinator): it creates the ``RebacGrants`` relation and the
compiled authorization views through the normal DDL path (so they are
WAL-logged and replicated like any other schema), grants the views
PUBLIC — row-level scoping lives in the ``$user_id`` join, exactly like
the paper's parameterized views — and logs a ``rebac_namespace`` record
so replicas and crash recovery can re-attach the manager.

Tuple writes are incremental recompilation:

1. validate against the namespace, cycle-check the *tentative* tuple
   set (a rejected write mutates nothing);
2. recompute the grant closure and diff it against the materialized
   rows;
3. apply the delta as ordinary DML — sorted deletes, then in-place
   expiry updates, then sorted inserts — through ``db.execute``, so
   the mutations flow through the standard WAL/replication hooks with
   the same row ids everywhere;
4. append the policy-bearing ``rebac_tuple`` record.  Appending it
   *last* is what closes the staleness window: the record bumps the
   cluster policy epoch the moment it is appended (before the write
   returns), and because it sits after every closure-delta row record
   in LSN order, a replica can only reach the new epoch — and become
   eligible for routing again — once it has applied every delta.  A
   revoked tuple is therefore never served stale, by construction
   rather than by shipping speed;
5. invalidate the affected users' prepared-statement templates and
   group-commit.

Replicas and recovery consume the same records in reverse: row records
rebuild ``RebacGrants`` (exact rids), and the ``rebac_tuple`` record
updates the tuple store and recomputes the in-memory closure that backs
``\\explain`` provenance — :meth:`RebacManager.apply_record` never
performs DML and never re-logs.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import RebacError
from repro.rebac.compiler import (
    GRANTS_SCHEMA_SQL,
    GRANTS_TABLE,
    Closure,
    Grant,
    closure_rows,
    compile_views,
    compute_closure,
    view_name,
)
from repro.rebac.namespace import NamespaceConfig
from repro.rebac.tuples import (
    NEVER_EXPIRES,
    RelationTuple,
    TupleStore,
    cycle_error,
    detect_cycle,
)
from repro.service.clock import SYSTEM_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database

#: materialized-row key: (object_type, object_id, relation, user_id)
RowKey = tuple[str, str, str, str]


def _sql_str(value: object) -> str:
    return "'" + str(value).replace("'", "''") + "'"


class RebacManager:
    """Relationship tuples + compiled views, live on one database."""

    def __init__(
        self,
        db: "Database",
        namespace: NamespaceConfig,
        clock: Optional[Clock] = None,
    ):
        self.db = db
        self.namespace = namespace
        self.clock = clock or SYSTEM_CLOCK
        self.store = TupleStore()
        self._closure: Closure = {}
        self._rows: dict[RowKey, float] = {}
        self._lock = threading.RLock()
        self.recompiles = 0
        #: compiled view name (lowered) -> (object_type, permission)
        self._views: dict[str, tuple[str, str]] = {}
        for otype_name in sorted(namespace.object_types):
            otype = namespace.object_types[otype_name]
            if otype.binding is None:
                continue
            for permission in otype.permissions:
                self._views[view_name(otype_name, permission).lower()] = (
                    otype_name,
                    permission,
                )

    # -- the write path ----------------------------------------------------

    def write_tuple(
        self,
        object: str,
        relation: str,
        subject: str,
        expires_at: Optional[float] = None,
    ) -> RelationTuple:
        """Write (or refresh the expiry of) one relation tuple.

        Raises :class:`~repro.errors.RebacCycleError` — with a
        deterministic message — if the write would create a cycle in
        the group graph; nothing is mutated in that case.
        """
        t = RelationTuple(
            object=object,
            relation=relation,
            subject=subject,
            expires_at=(
                NEVER_EXPIRES if expires_at is None else float(expires_at)
            ),
        )
        with self._lock:
            self.namespace.validate_tuple(t)
            tentative = self.store.with_write(t)
            cycle = detect_cycle(tentative, self.namespace.hierarchy_relations)
            if cycle is not None:
                raise cycle_error(cycle)
            self._commit(
                tentative,
                {"op": "write", "tuple": t.as_dict()},
                lambda: self.store.write(t),
            )
        return t

    def delete_tuple(
        self, object: str, relation: str, subject: str
    ) -> Optional[RelationTuple]:
        """Remove one tuple; returns it, or None when absent (no-op)."""
        key = (object, relation, subject)
        with self._lock:
            existing = self.store.get(key)
            if existing is None:
                return None
            tentative = [u for u in self.store.snapshot() if u.key() != key]
            self._commit(
                tentative,
                {"op": "delete", "tuple": existing.as_dict()},
                lambda: self.store.delete(key),
            )
        return existing

    def expire_tuples(self, now: Optional[float] = None) -> list[RelationTuple]:
        """Delete every tuple whose grant has expired as of ``now``
        (defaults to the injected clock).  The compiled views already
        exclude expired rows via ``expires_at > $time``; this sweep is
        garbage collection that also bumps the policy epoch."""
        if now is None:
            now = self.clock.now()
        expired = [t for t in self.store.snapshot() if t.expires_at <= now]
        for t in expired:
            self.delete_tuple(t.object, t.relation, t.subject)
        return expired

    def _commit(self, tentative, payload: dict, store_action) -> None:
        """Recompile against the tentative tuple set and commit."""
        new_closure = compute_closure(self.namespace, tentative)
        new_rows = {
            (ot, oid, rel, uid): exp
            for ot, oid, rel, uid, exp in closure_rows(
                self.namespace, new_closure
            )
        }
        # closure-delta DML first (ordinary row records) ...
        affected = self._apply_delta(self._rows, new_rows)
        store_action()
        self._closure = new_closure
        self._rows = new_rows
        self.recompiles += 1
        # ... then the policy-bearing record: appended after every delta,
        # so reaching its epoch implies having applied all of them
        if self.db.durability is not None:
            record = {"kind": "rebac_tuple"}
            record.update(payload)
            record["dv"] = self.db.validity_cache.data_version
            self.db.durability.log_rebac(record)
        for user in sorted(affected):
            self.db.prepared.invalidate_user(user)
        self.db._durable_commit()

    def _apply_delta(
        self, old_rows: dict[RowKey, float], new_rows: dict[RowKey, float]
    ) -> set[str]:
        """Apply the closure diff as DML, in a deterministic order —
        sorted deletes, then updates, then inserts — shared by every
        engine/node; returns the affected user ids."""
        deletes = sorted(k for k in old_rows if k not in new_rows)
        updates = sorted(
            k for k in new_rows if k in old_rows and old_rows[k] != new_rows[k]
        )
        inserts = sorted(k for k in new_rows if k not in old_rows)
        for key in deletes:
            self.db.execute(
                f"delete from {GRANTS_TABLE}{self._where(key)}", sync=False
            )
        for key in updates:
            self.db.execute(
                f"update {GRANTS_TABLE} set expires_at = {new_rows[key]!r}"
                f"{self._where(key)}",
                sync=False,
            )
        for key in inserts:
            ot, oid, rel, uid = key
            self.db.execute(
                f"insert into {GRANTS_TABLE} values ({_sql_str(ot)}, "
                f"{_sql_str(oid)}, {_sql_str(rel)}, {_sql_str(uid)}, "
                f"{new_rows[key]!r})",
                sync=False,
            )
        return {uid for (_, _, _, uid) in deletes + updates + inserts}

    @staticmethod
    def _where(key: RowKey) -> str:
        ot, oid, rel, uid = key
        return (
            f" where object_type = {_sql_str(ot)}"
            f" and object_id = {_sql_str(oid)}"
            f" and relation = {_sql_str(rel)}"
            f" and user_id = {_sql_str(uid)}"
        )

    # -- replay (replicas + crash recovery) --------------------------------

    def apply_record(self, record: dict) -> None:
        """Apply a shipped/recovered ``rebac_tuple`` record.

        Updates the tuple store and the in-memory closure (explain
        provenance) and invalidates affected prepared templates.  The
        ``RebacGrants`` rows themselves arrive through the ordinary row
        records that precede this one in LSN order — no DML, no
        re-logging here.
        """
        with self._lock:
            t = RelationTuple.from_dict(record["tuple"])
            op = record.get("op")
            if op == "write":
                self.store.write(t)
            elif op == "delete":
                self.store.delete(t.key())
            else:
                raise RebacError(f"unknown rebac_tuple op {op!r}")
            new_closure = compute_closure(self.namespace, self.store.snapshot())
            new_rows = {
                (ot, oid, rel, uid): exp
                for ot, oid, rel, uid, exp in closure_rows(
                    self.namespace, new_closure
                )
            }
            affected = {
                uid
                for key in set(self._rows) ^ set(new_rows)
                for uid in (key[3],)
            }
            affected.update(
                key[3]
                for key in set(self._rows) & set(new_rows)
                if self._rows[key] != new_rows[key]
            )
            self._closure = new_closure
            self._rows = new_rows
            self.recompiles += 1
            for user in sorted(affected):
                self.db.prepared.invalidate_user(user)

    # -- snapshot state ----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable state for checkpoints (namespace + tuples; the
        materialized rows live in ordinary table state)."""
        with self._lock:
            return {
                "namespace": self.namespace.to_state(),
                "tuples": [t.as_dict() for t in self.store.snapshot()],
            }

    def restore_tuples(self, tuples_state: list[dict]) -> None:
        """Load snapshot tuples and rebuild provenance *without* DML —
        the restored ``RebacGrants`` rows already match the closure,
        which is a deterministic function of the tuple set."""
        with self._lock:
            for data in tuples_state:
                self.store.write(RelationTuple.from_dict(data))
            self._closure = compute_closure(
                self.namespace, self.store.snapshot()
            )
            self._rows = {
                (ot, oid, rel, uid): exp
                for ot, oid, rel, uid, exp in closure_rows(
                    self.namespace, self._closure
                )
            }

    # -- provenance (the \explain surface) ---------------------------------

    def grant_for(
        self, object: str, relation: str, user_id: object
    ) -> Optional[Grant]:
        """The kept grant (chain + expiry) for one (object, relation,
        user), or None when no tuple chain reaches the user."""
        with self._lock:
            return self._closure.get((object, relation), {}).get(str(user_id))

    def user_grants(self, user_id: object) -> list[tuple[str, str, Grant]]:
        """All permission grants held by a user, sorted."""
        uid = str(user_id)
        out: list[tuple[str, str, Grant]] = []
        with self._lock:
            for (object_, relation), users in sorted(self._closure.items()):
                otype = self.namespace.object_types.get(
                    object_.partition(":")[0]
                )
                if otype is None or relation not in otype.permissions:
                    continue
                grant = users.get(uid)
                if grant is not None:
                    out.append((object_, relation, grant))
        return out

    def denial_reason(
        self,
        object: str,
        relation: str,
        user_id: object,
        at_time: Optional[float] = None,
    ) -> Optional[str]:
        """Why a (object, relation, user) check fails — the missing or
        expired chain — or None when the grant actually holds."""
        grant = self.grant_for(object, relation, user_id)
        if grant is None:
            return (
                f"no relationship-tuple chain grants {relation!r} on "
                f"{object} to user {str(user_id)!r}"
            )
        if at_time is not None and grant.expires_at <= at_time:
            return (
                f"the tuple chain granting {relation!r} on {object} to "
                f"user {str(user_id)!r} expired at {grant.expires_at}"
            )
        return None

    def view_permission(self, name: str) -> Optional[tuple[str, str]]:
        """Map a compiled view name back to (object_type, permission)."""
        return self._views.get(name.lower())

    def compiled_view_names(self) -> list[str]:
        return sorted(
            view_name(ot, perm) for ot, perm in self._views.values()
        ) + ["RebacMyGrants"]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "rebac_tuples": len(self.store),
                "rebac_grant_rows": len(self._rows),
                "rebac_views": len(self._views) + 1,
                "rebac_recompiles": self.recompiles,
            }


def attach_rebac(
    db: "Database",
    namespace: NamespaceConfig,
    clock: Optional[Clock] = None,
    create_schema: bool = True,
) -> RebacManager:
    """Install a :class:`RebacManager` on ``db`` (sets ``db.rebac``).

    With ``create_schema`` (the normal path) the ``RebacGrants`` table,
    the compiled authorization views, and their PUBLIC grants are
    created through the standard DDL/grant paths — WAL-logged and
    replicated like any other schema — and a ``rebac_namespace`` record
    is appended so replicas and recovery re-attach automatically.
    Replay paths pass ``create_schema=False``: the schema records
    precede the namespace record in the log (or live in the snapshot).
    """
    if getattr(db, "rebac", None) is not None:
        raise RebacError("a ReBAC manager is already attached to this database")
    manager = RebacManager(db, namespace, clock=clock)
    if create_schema:
        db.execute(GRANTS_SCHEMA_SQL, sync=False)
        for ddl in compile_views(namespace):
            db.execute(ddl, sync=False)
        for name in manager.compiled_view_names():
            db.grant_public(name)
    db.rebac = manager
    if db.durability is not None:
        db.durability.log_rebac(
            {"kind": "rebac_namespace", "namespace": namespace.to_state()}
        )
        db._durable_commit()
    return manager
