"""Validity-decision caching (paper Section 5.6, "Optimizations of
Validity Checking").

Two mechanisms from the paper:

* **Session caching** — "if the same query is reissued multiple times in
  a session, we can cache the results of the validity check".  We key on
  (user, exact query AST).
* **Prepared statements** — "for ODBC/JDBC prepared statements, we can
  analyze the query without the actual parameters ... and come up with a
  cheap test that is used each time the query is executed".  We support
  this by caching on a *parameter-stripped signature*: literals in the
  query are replaced by placeholders, and the cached entry records which
  placeholder positions must equal which session parameters for the
  cached decision to carry over.

Conditional decisions depend on the database state, so cache entries
are stamped with a data-version counter and dropped when underlying
data changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.nontruman.decision import ValidityDecision, Validity


def query_signature(query: ast.QueryExpr) -> tuple:
    """Structural signature of a query with literals abstracted out.

    Returns ``(skeleton, literals)`` where ``skeleton`` is the query
    with every literal replaced by an indexed placeholder and
    ``literals`` is the tuple of extracted values.
    """
    literals: list[object] = []

    def strip(expr: ast.Expr) -> ast.Expr:
        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.Literal) and node.value is not None:
                literals.append(node.value)
                return ast.AccessParam(f"_lit{len(literals)}")
            return None

        return exprs.transform(expr, visit)

    from repro.algebra.translate import _map_query_exprs

    skeleton = _map_query_exprs(query, strip)
    return skeleton, tuple(literals)


@dataclass
class _Entry:
    validity: Validity
    reason: str
    literals: tuple
    #: indices (into the literal tuple) that must match the session user
    user_positions: frozenset[int]
    data_version: int


class ValidityCache:
    """Decision cache with exact and prepared-signature lookups."""

    def __init__(self):
        self._entries: dict[tuple, _Entry] = {}
        self.data_version = 0
        self.hits = 0
        self.misses = 0

    def invalidate_data(self) -> None:
        """Call on any data change; drops conditional decisions."""
        self.data_version += 1

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------

    def _key(self, user: Optional[str], skeleton: ast.QueryExpr) -> tuple:
        return (user, skeleton)

    def lookup(
        self, user: Optional[str], query: ast.QueryExpr, user_value: object
    ) -> Optional[tuple[Validity, str]]:
        skeleton, literals = query_signature(query)
        entry = self._entries.get(self._key(user, skeleton))
        if entry is None:
            self.misses += 1
            return None
        # Conditional validity depends on the database state, and so do
        # rejections (a query invalid today may become conditionally
        # valid after an insert — Example 4.2's enrollment threshold).
        # Only UNCONDITIONAL acceptances are state-independent.
        if (
            entry.validity is not Validity.UNCONDITIONAL
            and entry.data_version != self.data_version
        ):
            self.misses += 1
            return None
        if entry.literals == literals:
            self.hits += 1
            return entry.validity, entry.reason
        # Prepared-statement reuse: the same skeleton with different
        # constants carries over iff the positions that previously held
        # the session parameter still do, and all other literals match.
        for index, (old, new) in enumerate(zip(entry.literals, literals)):
            if index in entry.user_positions:
                if new != user_value:
                    self.misses += 1
                    return None
            elif old != new:
                self.misses += 1
                return None
        self.hits += 1
        return entry.validity, entry.reason

    def store(
        self,
        user: Optional[str],
        query: ast.QueryExpr,
        user_value: object,
        validity: Validity,
        reason: str,
    ) -> None:
        skeleton, literals = query_signature(query)
        user_positions = frozenset(
            index for index, value in enumerate(literals) if value == user_value
        )
        self._entries[self._key(user, skeleton)] = _Entry(
            validity=validity,
            reason=reason,
            literals=literals,
            user_positions=user_positions,
            data_version=self.data_version,
        )

    @property
    def size(self) -> int:
        return len(self._entries)
