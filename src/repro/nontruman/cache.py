"""Validity-decision caching (paper Section 5.6, "Optimizations of
Validity Checking").

Two mechanisms from the paper:

* **Session caching** — "if the same query is reissued multiple times in
  a session, we can cache the results of the validity check".  We key on
  (user, exact query AST).
* **Prepared statements** — "for ODBC/JDBC prepared statements, we can
  analyze the query without the actual parameters ... and come up with a
  cheap test that is used each time the query is executed".  We support
  this by caching on a *parameter-stripped signature*: literals in the
  query are replaced by placeholders, and the cached entry records which
  placeholder positions must equal which session parameters for the
  cached decision to carry over.

Conditional decisions depend on the database state, so cache entries
are stamped with a data-version counter and dropped when underlying
data changes.

The cache is safe for concurrent readers and writers: every structural
operation (lookup, store, eviction, version bump) happens under one
re-entrant lock, so the enforcement gateway (:mod:`repro.service`) can
share instances across worker threads.  An optional ``max_entries``
bound turns the entry map into an LRU: lookups refresh recency, stores
evict the least-recently-used entry on overflow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.nontruman.decision import ValidityDecision, Validity


def query_signature(query: ast.QueryExpr) -> tuple:
    """Structural signature of a query with literals abstracted out.

    Returns ``(skeleton, literals)`` where ``skeleton`` is the query
    with every literal replaced by an indexed placeholder and
    ``literals`` is the tuple of extracted values.
    """
    literals: list[object] = []

    def strip(expr: ast.Expr) -> ast.Expr:
        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.Literal) and node.value is not None:
                literals.append(node.value)
                return ast.AccessParam(f"_lit{len(literals)}")
            return None

        return exprs.transform(expr, visit)

    from repro.algebra.translate import _map_query_exprs

    skeleton = _map_query_exprs(query, strip)
    return skeleton, tuple(literals)


@dataclass
class _Entry:
    validity: Validity
    reason: str
    literals: tuple
    #: indices (into the literal tuple) that must match the session user
    user_positions: frozenset[int]
    data_version: int


def entry_matches(
    entry: _Entry, literals: tuple, user_value: object
) -> bool:
    """Does a stored entry's decision carry over to these literals?

    Exact literal match always carries over.  Otherwise apply the
    prepared-statement rule: positions that previously held the session
    parameter must hold the *current* session parameter, and every
    other literal must be unchanged.
    """
    if entry.literals == literals:
        return True
    if len(entry.literals) != len(literals):
        return False
    for index, (old, new) in enumerate(zip(entry.literals, literals)):
        if index in entry.user_positions:
            if new != user_value:
                return False
        elif old != new:
            return False
    return True


class ValidityCache:
    """Decision cache with exact and prepared-signature lookups.

    Thread-safe; optionally LRU-bounded via ``max_entries``.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self._data_version = 0
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def data_version(self) -> int:
        with self._lock:
            return self._data_version

    def invalidate_data(self) -> None:
        """Call on any data change; drops conditional decisions."""
        with self._lock:
            self._data_version += 1

    def restore_data_version(self, version: int) -> None:
        """Advance the counter after crash recovery so decisions stamped
        before the crash can never validate against the recovered state."""
        with self._lock:
            self._data_version = max(self._data_version, version)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------

    def _key(self, user: Optional[str], skeleton: ast.QueryExpr) -> tuple:
        return (user, skeleton)

    def lookup(
        self, user: Optional[str], query: ast.QueryExpr, user_value: object
    ) -> Optional[tuple[Validity, str]]:
        skeleton, literals = query_signature(query)
        return self.lookup_signed(user, skeleton, literals, user_value)

    def lookup_signed(
        self,
        user: Optional[str],
        skeleton: ast.QueryExpr,
        literals: tuple,
        user_value: object,
        data_version: Optional[int] = None,
    ) -> Optional[tuple[Validity, str]]:
        """Lookup with a precomputed :func:`query_signature`.

        ``data_version`` overrides the cache's own counter, letting a
        process-wide cache validate entries against an external
        (database-owned) version source.
        """
        key = self._key(user, skeleton)
        with self._lock:
            version = self._data_version if data_version is None else data_version
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            # Conditional validity depends on the database state, and so do
            # rejections (a query invalid today may become conditionally
            # valid after an insert — Example 4.2's enrollment threshold).
            # Only UNCONDITIONAL acceptances are state-independent.
            if (
                entry.validity is not Validity.UNCONDITIONAL
                and entry.data_version != version
            ):
                self.misses += 1
                return None
            if not entry_matches(entry, literals, user_value):
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry.validity, entry.reason

    def store(
        self,
        user: Optional[str],
        query: ast.QueryExpr,
        user_value: object,
        validity: Validity,
        reason: str,
    ) -> None:
        skeleton, literals = query_signature(query)
        self.store_signed(user, skeleton, literals, user_value, validity, reason)

    def store_signed(
        self,
        user: Optional[str],
        skeleton: ast.QueryExpr,
        literals: tuple,
        user_value: object,
        validity: Validity,
        reason: str,
        data_version: Optional[int] = None,
    ) -> None:
        """Store with a precomputed signature (see :meth:`lookup_signed`).

        Pass the ``data_version`` observed *before* the validity check
        ran: if a concurrent data change bumped the version mid-check,
        the entry is stored already-stale and treated as a miss later.
        """
        user_positions = frozenset(
            index for index, value in enumerate(literals) if value == user_value
        )
        key = self._key(user, skeleton)
        with self._lock:
            version = self._data_version if data_version is None else data_version
            self._entries[key] = _Entry(
                validity=validity,
                reason=reason,
                literals=literals,
                user_positions=user_positions,
                data_version=version,
            )
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._entries)
