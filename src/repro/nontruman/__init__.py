"""The Non-Truman model (paper Sections 4-5): validity inference.

Public surface:

* :class:`~repro.nontruman.checker.ValidityChecker` — the full engine
  (rules U1, U2, U3a/b/c, C1, C2, C3a/b);
* :class:`~repro.nontruman.decision.ValidityDecision` — the outcome,
  carrying the witness rewriting and the rule derivation trace;
* :class:`~repro.nontruman.cache.ValidityCache` — the Section 5.6
  decision cache.
"""

from repro.nontruman.decision import Validity, ValidityDecision
from repro.nontruman.checker import ValidityChecker
from repro.nontruman.cache import ValidityCache

__all__ = ["Validity", "ValidityDecision", "ValidityChecker", "ValidityCache"]
