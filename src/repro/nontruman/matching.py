"""Rewriting queries using authorization views — the inference core.

Implements the paper's rules on the block representation:

* **U1/U2** — cover every base-table instance of the query block with
  (injectively mapped) authorization-view applications whose predicates
  are entailed by the query's, re-applying residual predicates and
  projections on top (Section 5.2);
* **U3a/U3b/U3c** — a view may have *extra* tables (a remainder) if a
  visible total-participation integrity constraint makes the join
  lossless (Section 5.3).  Multiset semantics are tracked: the
  elimination is *exact* when the remainder join attributes cover a key
  of the remainder (each core tuple has exactly one partner), otherwise
  it *inflates* multiplicities and is only usable under DISTINCT or for
  duplicate-free queries;
* **C3a/C3b** — the remainder may instead be eliminated when the query
  pins all join attributes to constants and a *probe* on the remainder
  is (recursively) conditionally valid **and non-empty in the current
  database state** (Section 5.4).  This yields conditional validity;
* aggregate queries — either by rewriting the aggregation input with
  exact multiplicity and re-aggregating (U2), or by matching an
  aggregate view, including selections that pin the view's group-by
  columns, which require a group-existence probe and yield conditional
  validity (Examples 4.1/4.2).

Every acceptance constructs an executable *witness* plan over
:class:`~repro.algebra.ops.ViewRel` leaves; soundness tests execute
witnesses against the original queries.

Deviations from the paper, both sound (documented in DESIGN.md):

* general U3c/C3b multiplicity *reconstruction by division* is not
  performed; instead exactness is established through key reasoning
  (the paper's own examples — FK joins, key-pinned probes — all fall in
  this class);
* Example 4.1's ``q1`` (scalar aggregate pinned to one group) is
  classified *conditionally* valid with a group-existence probe, since
  on states where the group is absent the scalar query returns a NULL
  row while any view rewriting returns no row.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.algebra.implication import PredicateTheory
from repro.algebra.normalize import normalize_predicate
from repro.catalog.catalog import Catalog
from repro.nontruman.blocks import AggBlock, SPJBlock, TableInstance
from repro.nontruman.decision import RuleApplication

#: aggregates unaffected by duplicate multiplicity
_DUPLICATE_INSENSITIVE = ("min", "max")


@dataclass(frozen=True)
class CandidateView:
    """An instantiated authorization view in matchable form."""

    name: str
    block: object  # SPJBlock | AggBlock
    output_names: tuple[str, ...]

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.block, AggBlock)


@dataclass
class Elimination:
    """One remainder table removed from a view application."""

    table: TableInstance  # view-side instance
    rule: str  # "U3" or "C3"
    exact: bool
    detail: str
    probe_plan: Optional[ops.Operator] = None  # C3 only


@dataclass
class Application:
    """One way of using a view to cover part of the query block."""

    view: CandidateView
    mapping: dict[str, str]  # view binding -> query binding
    covered: frozenset[str]  # query bindings covered
    eliminations: list[Elimination] = field(default_factory=list)
    #: ψ-mapped view conjuncts over the mapped part (query bindings)
    mapped_conjuncts: tuple[ast.Expr, ...] = ()
    #: (query binding, column) -> view output name
    available: dict[tuple[str, str], str] = field(default_factory=dict)
    #: chosen values for the view's $$ access-pattern parameters (§6)
    access_bindings: tuple[tuple[str, object], ...] = ()

    @property
    def exact(self) -> bool:
        return all(e.exact for e in self.eliminations)

    @property
    def conditional(self) -> bool:
        return any(e.rule == "C3" for e in self.eliminations)

    def rule_labels(self, distinct_context: bool) -> list[str]:
        labels = []
        for elim in self.eliminations:
            if elim.rule == "U3":
                labels.append("U3c" if elim.exact else ("U3b" if distinct_context else "U3a"))
            else:
                labels.append("C3b" if elim.exact else "C3a")
        return labels


@dataclass
class DependentJoinCandidate:
    """Covering one query table via an access-pattern view (§6).

    ``anchor_col`` (a column of another query instance) drives the $$
    parameter per row; the equality ``key_col = anchor_col`` from the
    query is enforced by construction.
    """

    view: CandidateView
    table: TableInstance
    param_name: str
    key_col: ast.ColumnRef  # column of the covered instance
    anchor_col: ast.ColumnRef  # column of another instance
    mapped_conjuncts: tuple[ast.Expr, ...]
    available: dict[tuple[str, str], str]


@dataclass
class Rewriting:
    """A successful rewriting of a query block."""

    witness: ops.Operator
    conditional: bool
    trace: list[RuleApplication]
    views_used: tuple[str, ...]
    probes_executed: int = 0


class MatchError(Exception):
    """Internal control flow: this cover attempt fails."""


class BlockMatcher:
    """Matches query blocks against candidate views.

    ``probe_runner(plan) -> bool`` executes a probe against the current
    database state and reports non-emptiness; ``subcheck(plan) ->
    Optional[str]`` recursively decides validity of a probe/opaque
    subplan, returning "unconditional"/"conditional" or None (invalid)
    along with its witness via ``subwitness``.
    """

    def __init__(
        self,
        catalog: Catalog,
        views: list[CandidateView],
        probe_runner: Callable[[ops.Operator], bool],
        subcheck: Callable[[ops.Operator], Optional["Rewriting"]],
        user: Optional[str] = None,
        max_cover_nodes: int = 20000,
        allow_conditional: bool = True,
        allow_u3: bool = True,
        enable_dependent_joins: bool = True,
        enable_overlap_covers: bool = True,
        enable_reaggregation: bool = True,
        ctx=None,
    ):
        self.catalog = catalog
        self.views = views
        self.probe_runner = probe_runner
        self.subcheck = subcheck
        self.user = user
        self.max_cover_nodes = max_cover_nodes
        self.allow_conditional = allow_conditional
        self.allow_u3 = allow_u3
        self.enable_dependent_joins = enable_dependent_joins
        self.enable_overlap_covers = enable_overlap_covers
        self.enable_reaggregation = enable_reaggregation
        #: optional QueryContext; the cover search and the application
        #: enumeration tick it so an adversarially expensive inference
        #: is aborted by its deadline mid-search, not only by the node
        #: budget
        self.ctx = ctx
        self.probes_executed = 0
        self._binding_counter = itertools.count(1)

    def _tick(self) -> None:
        if self.ctx is not None:
            self.ctx.tick(0)

    # ------------------------------------------------------------------
    # SPJ matching
    # ------------------------------------------------------------------

    def match_spj(self, block: SPJBlock) -> Optional[Rewriting]:
        theory = PredicateTheory(block.conjuncts)
        if theory.unsat:
            return self._empty_rewriting(block)

        base = [t for t in block.tables if t.kind == "table"]
        if not base:
            return self._assemble(block, [], theory, {})

        duplicate_free = block.distinct or self._duplicate_free(block, theory)

        applications: dict[str, list[Application]] = {t.binding: [] for t in base}
        for view in self.views:
            if view.is_aggregate:
                continue
            for application in self._enumerate_applications(view, block, theory):
                if not application.exact and not duplicate_free:
                    continue
                if application.conditional and not self.allow_conditional:
                    continue
                for binding in application.covered:
                    applications[binding].append(application)

        # Instances with no direct application may still be reachable
        # through an access-pattern view driven by a join column (§6).
        dependent: dict[str, list[DependentJoinCandidate]] = {}
        for table in base:
            if applications[table.binding]:
                continue
            candidates = (
                self._dependent_join_candidates(table, block, theory)
                if self.enable_dependent_joins
                else []
            )
            if not candidates:
                return None
            dependent[table.binding] = candidates

        # Backtracking cover search: pick the instance with the fewest
        # applications, try each (exact/unconditional first).
        budget = [self.max_cover_nodes]
        search_bindings = frozenset(
            t.binding for t in base if t.binding not in dependent
        )

        def search(uncovered: frozenset[str], chosen: list[Application]):
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            self._tick()
            if not uncovered:
                try:
                    return self._assemble(block, chosen, theory, dependent)
                except MatchError:
                    return None
            target = min(
                uncovered, key=lambda b: len(applications[b])
            )
            candidates = [
                a
                for a in applications[target]
                if a.covered <= uncovered
            ]
            candidates.sort(
                key=lambda a: (a.conditional, not a.exact, len(a.eliminations), -len(a.covered))
            )
            for application in candidates:
                result = search(uncovered - application.covered, chosen + [application])
                if result is not None:
                    return result
            return None

        result = search(search_bindings, [])
        if result is not None:
            return result
        if not self.enable_overlap_covers:
            return None

        # §5.6.2 future work, implemented here: allow view applications
        # to OVERLAP on a table instance (the "decompose A⋈B⋈C as
        # (A⋈B)⋈(B⋈C)" case).  Sound when each doubly-covered instance
        # has a declared key exposed by every application covering it:
        # the witness equi-joins the view scans on that key, and since
        # keys are unique the multiplicities stay exact.
        def overlap_ok(application: Application, already: frozenset[str]) -> bool:
            for binding in application.covered & already:
                table = next(t for t in block.tables if t.binding == binding)
                keys = self.catalog.keys_for(table.relation)
                if not any(
                    all(
                        (binding, col.lower()) in application.available
                        for col in key
                    )
                    for key in keys
                ):
                    return False
            return True

        def overlap_search(uncovered: frozenset[str], chosen: list[Application]):
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            self._tick()
            if not uncovered:
                try:
                    return self._assemble(block, chosen, theory, dependent)
                except MatchError:
                    return None
            already = frozenset(
                b for a in chosen for b in a.covered
            )
            target = min(uncovered, key=lambda b: len(applications[b]))
            candidates = [
                a
                for a in applications[target]
                if overlap_ok(a, already)
            ]
            candidates.sort(
                key=lambda a: (a.conditional, not a.exact, len(a.covered & already))
            )
            for application in candidates:
                result = overlap_search(
                    uncovered - application.covered, chosen + [application]
                )
                if result is not None:
                    return result
            return None

        budget[0] = max(budget[0], self.max_cover_nodes // 4)
        return overlap_search(search_bindings, [])

    # -- application enumeration -------------------------------------------

    def _enumerate_applications(
        self, view: CandidateView, block: SPJBlock, theory: PredicateTheory
    ):
        vblock: SPJBlock = view.block
        vtables = list(vblock.tables)
        if any(t.kind != "table" for t in vtables):
            return  # views over views/subqueries are not matchable
        by_relation: dict[str, list[TableInstance]] = {}
        for qt in block.tables:
            if qt.kind == "table":
                by_relation.setdefault(qt.relation.lower(), []).append(qt)

        REMAINDER = None
        choices = []
        for vt in vtables:
            options = list(by_relation.get(vt.relation.lower(), ()))
            choices.append(options + [REMAINDER])

        for assignment in itertools.product(*choices):
            self._tick()
            mapped = [
                (vt, qt) for vt, qt in zip(vtables, assignment) if qt is not None
            ]
            if not mapped:
                continue
            targets = [qt.binding for _, qt in mapped]
            if len(set(targets)) != len(targets):
                continue  # mapping must be injective
            remainder = [vt for vt, qt in zip(vtables, assignment) if qt is None]
            application = self._try_application(
                view, vblock, mapped, remainder, block, theory
            )
            if application is not None:
                yield application

    def _try_application(
        self,
        view: CandidateView,
        vblock: SPJBlock,
        mapped: list[tuple[TableInstance, TableInstance]],
        remainder: list[TableInstance],
        block: SPJBlock,
        theory: PredicateTheory,
    ) -> Optional[Application]:
        psi = {vt.binding: qt.binding for vt, qt in mapped}
        mapped_bindings = set(psi)
        remainder_bindings = {t.binding for t in remainder}

        mapped_conjuncts: list[ast.Expr] = []
        remainder_conjuncts: list[ast.Expr] = []  # touch remainder tables
        for conj in vblock.conjuncts:
            refs = exprs.bindings_in(conj)
            if refs <= mapped_bindings or not refs:
                mapped_conjuncts.append(exprs.rename_bindings(conj, psi))
            elif refs <= mapped_bindings | remainder_bindings:
                remainder_conjuncts.append(conj)
            else:
                return None

        # The view must not filter out rows the query needs: every view
        # predicate over the mapped part must be entailed by the query.
        # Access-pattern conjuncts ``col = $$p`` are satisfiable by
        # *choosing* $$p, provided the query pins col to a constant
        # (Section 6: $$ parameters may be bound to any value).
        access_bindings: dict[str, object] = {}
        effective_conjuncts: list[ast.Expr] = []
        for conj in mapped_conjuncts:
            ap = self._access_pattern_pin(conj, theory)
            if ap is not None:
                name, value = ap
                if name in access_bindings and access_bindings[name] != value:
                    return None
                access_bindings[name] = value
                effective_conjuncts.append(
                    ast.BinaryOp("=", conj.left, ast.Literal(value))
                    if isinstance(conj, ast.BinaryOp)
                    else conj
                )
                continue
            if exprs.access_params_in(conj):
                return None  # unresolvable $$ parameter use
            if not theory.entails(conj):
                return None
            effective_conjuncts.append(conj)
        mapped_conjuncts = effective_conjuncts

        if remainder and any(
            exprs.access_params_in(c) for c in remainder_conjuncts
        ):
            return None  # $$ parameters in the remainder are unsupported
        eliminations = self._eliminate_remainder(
            block, vblock, psi, remainder, remainder_conjuncts, theory
        )
        if eliminations is None:
            return None

        # Column availability offered by this application.
        available: dict[tuple[str, str], str] = {}
        for (expr, name), out_name in zip(vblock.outputs, view.output_names):
            if isinstance(expr, ast.ColumnRef) and expr.table in psi:
                available[(psi[expr.table], expr.name.lower())] = out_name

        return Application(
            view=view,
            mapping=psi,
            covered=frozenset(psi.values()),
            eliminations=eliminations,
            mapped_conjuncts=tuple(mapped_conjuncts),
            available=available,
            access_bindings=tuple(sorted(access_bindings.items())),
        )

    @staticmethod
    def _access_pattern_pin(
        conj: ast.Expr, theory: PredicateTheory
    ) -> Optional[tuple[str, object]]:
        """Match ``col = $$p`` where the query pins col to a constant."""
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        left, right = conj.left, conj.right
        if isinstance(left, ast.AccessParam) and isinstance(right, ast.ColumnRef):
            left, right = right, left
        if not (
            isinstance(left, ast.ColumnRef) and isinstance(right, ast.AccessParam)
        ):
            return None
        if not theory.pinned(left):
            return None
        return right.name, theory.constant_of(left)

    # -- remainder elimination (rules U3 / C3) ---------------------------------

    def _eliminate_remainder(
        self,
        block: SPJBlock,
        vblock: SPJBlock,
        psi: dict[str, str],
        remainder: list[TableInstance],
        remainder_conjuncts: list[ast.Expr],
        theory: PredicateTheory,
    ) -> Optional[list[Elimination]]:
        if not remainder:
            return []
        view_theory = PredicateTheory(vblock.conjuncts)
        remaining = list(remainder)
        conjuncts = list(remainder_conjuncts)
        eliminations: list[Elimination] = []

        progress = True
        while remaining and progress:
            progress = False
            for table in list(remaining):
                other = {t.binding for t in remaining if t is not table}
                involved = [
                    c for c in conjuncts if table.binding in exprs.bindings_in(c)
                ]
                if any(exprs.bindings_in(c) & other for c in involved):
                    continue  # joins another remainder table; try later
                local = [
                    c for c in involved if exprs.bindings_in(c) == {table.binding}
                ]
                cross = [c for c in involved if c not in local]
                join_pairs = self._as_join_pairs(cross, table.binding, psi)
                if join_pairs is None:
                    continue
                elimination = self._try_u3(
                    block, vblock, table, local, join_pairs, view_theory, psi, theory
                ) if self.allow_u3 else None
                if elimination is None and self.allow_conditional:
                    elimination = self._try_c3(table, local, join_pairs, theory)
                if elimination is None:
                    continue
                eliminations.append(elimination)
                remaining.remove(table)
                conjuncts = [c for c in conjuncts if c not in involved]
                progress = True
        if remaining:
            return None
        return eliminations

    @staticmethod
    def _as_join_pairs(
        cross: list[ast.Expr], rem_binding: str, psi: dict[str, str]
    ) -> Optional[list[tuple[ast.ColumnRef, str]]]:
        """Cross conjuncts as (mapped core column, remainder column) pairs."""
        pairs = []
        for conj in cross:
            if not (
                isinstance(conj, ast.BinaryOp)
                and conj.op == "="
                and isinstance(conj.left, ast.ColumnRef)
                and isinstance(conj.right, ast.ColumnRef)
            ):
                return None
            left, right = conj.left, conj.right
            if left.table == rem_binding:
                left, right = right, left
            if right.table != rem_binding or left.table not in psi:
                return None
            core_col = ast.ColumnRef(psi[left.table], left.name)
            pairs.append((core_col, right.name, left))
        return pairs

    def _try_u3(
        self,
        block: SPJBlock,
        vblock: SPJBlock,
        table: TableInstance,
        local: list[ast.Expr],
        join_pairs,
        view_theory: PredicateTheory,
        psi: dict[str, str],
        query_theory: PredicateTheory,
    ) -> Optional[Elimination]:
        """Lossless remainder via a total-participation constraint.

        The constraint's core may be *anchored* at any base-table
        instance of the final query whose join columns lie in the same
        equality class as the view's core join columns — this covers
        both the direct case (the anchor is the mapped image of the
        view's own core table, Examples 5.1-5.3) and the transitive
        case of Example 5.4, where ``FeesPaid.student_id =
        Students.student_id = Registered.student_id`` lets the FeesPaid
        participation constraint justify dropping Registered.
        """
        for constraint in self.catalog.participations(self.user):
            if constraint.remainder_table.lower() != table.relation.lower():
                continue
            cc_by_rc = {rc.lower(): cc for cc, rc in constraint.join_pairs}
            # Every view join pair must be guaranteed by the constraint.
            if any(rc.lower() not in cc_by_rc for _, rc, _ in join_pairs):
                continue

            anchors = [
                t
                for t in block.tables
                if t.kind == "table"
                and t.relation.lower() == constraint.core_table.lower()
            ]
            for anchor in anchors:
                if not all(
                    query_theory.same_class(
                        ast.ColumnRef(anchor.binding, cc_by_rc[rc.lower()]),
                        mapped_core_col,
                    )
                    for mapped_core_col, rc, _ in join_pairs
                ):
                    continue
                # Anchor tuples must fall inside the constraint's scope.
                # The witness re-applies the query's residual predicate,
                # so only rows the query keeps need a partner: scope may
                # come from the query's predicate, or from the view's own
                # when the anchor is the mapped image of the view core.
                if constraint.core_pred is not None:
                    scoped = _qualify(constraint.core_pred, anchor.binding)
                    in_scope = query_theory.entails(scoped)
                    if not in_scope:
                        view_core_bindings = {
                            vc.table for _, _, vc in join_pairs
                        }
                        if len(view_core_bindings) == 1:
                            vb = next(iter(view_core_bindings))
                            if psi.get(vb) == anchor.binding:
                                in_scope = view_theory.entails(
                                    _qualify(constraint.core_pred, vb)
                                )
                    if not in_scope:
                        continue
                # The guaranteed partner must satisfy the view's
                # remainder predicate.
                if local:
                    guaranteed = (
                        list(
                            normalize_predicate(
                                _qualify(
                                    constraint.remainder_pred, table.binding
                                )
                            )
                        )
                        if constraint.remainder_pred is not None
                        else []
                    )
                    partner_theory = PredicateTheory(guaranteed)
                    if not all(partner_theory.entails(c) for c in local):
                        continue
                exact = self._remainder_key_covered(
                    table, {rc for _, rc, _ in join_pairs}, extra_theory=None
                )
                return Elimination(
                    table=table,
                    rule="U3",
                    exact=exact,
                    detail=(
                        f"remainder {table.relation} eliminated by constraint "
                        f"[{constraint}] anchored at {anchor.relation} "
                        f"{anchor.binding}"
                        + (
                            "; key-exact multiplicity"
                            if exact
                            else "; set-level only"
                        )
                    ),
                )
        return None

    def _try_c3(
        self,
        table: TableInstance,
        local: list[ast.Expr],
        join_pairs,
        theory: PredicateTheory,
    ) -> Optional[Elimination]:
        """Conditional remainder elimination via a database-state probe."""
        if not join_pairs:
            return None
        instantiated: list[ast.Expr] = []
        pinned_cols = set()
        for mapped_core_col, rem_col, _ in join_pairs:
            if not theory.pinned(mapped_core_col):
                return None  # C3a condition 2: P_j attrs must be instantiated
            value = theory.constant_of(mapped_core_col)
            instantiated.append(
                ast.BinaryOp(
                    "=", ast.ColumnRef(table.binding, rem_col), ast.Literal(value)
                )
            )
            pinned_cols.add(rem_col.lower())

        probe_conjuncts = list(local) + instantiated
        probe_plan = self._build_probe(table, probe_conjuncts)

        # The probe must itself be (at least conditionally) valid —
        # otherwise accepting the query leaks the remainder's content
        # (Example 4.3).
        sub = self.subcheck(probe_plan)
        if sub is None:
            return None
        self.probes_executed += 1 + sub.probes_executed
        if not self.probe_runner(probe_plan):
            return None  # probe empty: remainder may not match; reject

        probe_theory = PredicateTheory(normalize_predicate(
            exprs.make_conjunction(probe_conjuncts)
        ))
        for col in table.columns:
            ref = ast.ColumnRef(table.binding, col)
            if probe_theory.pinned(ref):
                pinned_cols.add(col.lower())
        exact = self._remainder_key_covered(table, pinned_cols, extra_theory=None)
        return Elimination(
            table=table,
            rule="C3",
            exact=exact,
            detail=(
                f"remainder {table.relation} eliminated by non-empty probe "
                f"[{' AND '.join(str(c) for c in probe_conjuncts)}]"
                + ("; key-exact multiplicity" if exact else "; set-level only")
            ),
            probe_plan=probe_plan,
        )

    def _build_probe(
        self, table: TableInstance, conjuncts: list[ast.Expr]
    ) -> ops.Operator:
        rel = ops.Rel(table.relation, table.binding, table.columns)
        plan: ops.Operator = rel
        predicate = exprs.make_conjunction(conjuncts)
        if predicate is not None:
            plan = ops.Select(plan, predicate)
        return ops.Project(plan, ((ast.Literal(1), "one"),))

    def _remainder_key_covered(
        self, table: TableInstance, covered_cols: set, extra_theory
    ) -> bool:
        covered = {c.lower() if isinstance(c, str) else c for c in covered_cols}
        for key in self.catalog.keys_for(table.relation):
            if all(col.lower() in covered for col in key):
                return True
        return False

    # -- duplicate-freeness (Example 5.5's "distinct can be dropped") -----------

    def _duplicate_free(self, block: SPJBlock, theory: PredicateTheory) -> bool:
        """True if the block's output cannot contain duplicates: the
        outputs (plus pinned columns) cover a key of every table
        instance."""
        out_cols: set[tuple[str, str]] = set()
        for expr, _ in block.outputs:
            if isinstance(expr, ast.ColumnRef) and expr.table:
                out_cols.add((expr.table, expr.name.lower()))

        for table in block.tables:
            if table.kind != "table":
                return False
            keys = self.catalog.keys_for(table.relation)
            if not keys:
                return False
            satisfied = False
            for key in keys:
                ok = True
                for col in key:
                    ref = ast.ColumnRef(table.binding, col)
                    in_output = (table.binding, col.lower()) in out_cols
                    if not in_output and not theory.pinned(ref):
                        # also usable if equal to an output column
                        if not any(
                            theory.same_class(ref, ast.ColumnRef(b, c))
                            for b, c in out_cols
                        ):
                            ok = False
                            break
                if ok:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    # -- assembly of the witness plan ------------------------------------------

    def _dependent_join_candidates(
        self, table: TableInstance, block: SPJBlock, theory: PredicateTheory
    ) -> list[DependentJoinCandidate]:
        """Access-pattern views able to cover ``table`` via a join column."""
        candidates: list[DependentJoinCandidate] = []
        # Query equality conjuncts linking this instance to another.
        links: dict[str, list[ast.ColumnRef]] = {}
        for conj in block.conjuncts:
            if not (
                isinstance(conj, ast.BinaryOp)
                and conj.op == "="
                and isinstance(conj.left, ast.ColumnRef)
                and isinstance(conj.right, ast.ColumnRef)
            ):
                continue
            left, right = conj.left, conj.right
            if left.table == table.binding and right.table != table.binding:
                links.setdefault(left.name.lower(), []).append(right)
            elif right.table == table.binding and left.table != table.binding:
                links.setdefault(right.name.lower(), []).append(left)

        for view in self.views:
            if view.is_aggregate:
                continue
            vblock: SPJBlock = view.block
            if len(vblock.tables) != 1 or vblock.tables[0].kind != "table":
                continue
            vt = vblock.tables[0]
            if vt.relation.lower() != table.relation.lower():
                continue
            psi = {vt.binding: table.binding}
            key_col: Optional[ast.ColumnRef] = None
            param_name: Optional[str] = None
            mapped: list[ast.Expr] = []
            usable = True
            for conj in vblock.conjuncts:
                renamed = exprs.rename_bindings(conj, psi)
                if (
                    isinstance(renamed, ast.BinaryOp)
                    and renamed.op == "="
                    and isinstance(renamed.left, ast.ColumnRef)
                    and isinstance(renamed.right, ast.AccessParam)
                ):
                    if key_col is not None:
                        usable = False
                        break
                    key_col = renamed.left
                    param_name = renamed.right.name
                    continue
                if exprs.access_params_in(renamed):
                    usable = False
                    break
                if not theory.entails(renamed):
                    usable = False
                    break
                mapped.append(renamed)
            if not usable or key_col is None:
                continue
            anchors = links.get(key_col.name.lower(), [])
            available: dict[tuple[str, str], str] = {}
            for (expr, _), out_name in zip(vblock.outputs, view.output_names):
                if isinstance(expr, ast.ColumnRef) and expr.table in psi:
                    available[(psi[expr.table], expr.name.lower())] = out_name
            for anchor in anchors:
                candidates.append(
                    DependentJoinCandidate(
                        view=view,
                        table=table,
                        param_name=param_name,
                        key_col=key_col,
                        anchor_col=anchor,
                        mapped_conjuncts=tuple(
                            mapped + [ast.BinaryOp("=", key_col, anchor)]
                        ),
                        available=available,
                    )
                )
        return candidates

    def _assemble(
        self,
        block: SPJBlock,
        chosen: list[Application],
        theory: PredicateTheory,
        dependent: Optional[dict[str, list[DependentJoinCandidate]]] = None,
    ) -> Rewriting:
        trace: list[RuleApplication] = []
        views_used: list[str] = []
        conditional = False
        probes = 0

        # Column availability: view applications + view scans + opaque
        # subplans that are part of the block.
        available: dict[tuple[str, str], ast.ColumnRef] = {}
        leaves: list[ops.Operator] = []
        inflated = False

        #: query binding -> [(application, witness binding)] — more than
        #: one entry means an overlapping cover (joined on a key below)
        coverage: dict[str, list[tuple[Application, str]]] = {}
        for index, application in enumerate(chosen):
            witness_binding = f"v{next(self._binding_counter)}"
            leaves.append(
                ops.ViewRel(
                    application.view.name,
                    witness_binding,
                    application.view.output_names,
                    access_args=application.access_bindings,
                )
            )
            for qb in application.covered:
                coverage.setdefault(qb, []).append((application, witness_binding))
            for (qb, col), out_name in application.available.items():
                available.setdefault(
                    (qb, col), ast.ColumnRef(witness_binding, out_name)
                )
            views_used.append(application.view.name)
            if application.conditional:
                conditional = True
            if not application.exact:
                inflated = True
            labels = application.rule_labels(block.distinct)
            if not labels:
                labels = ["U2"]
            for label, elim in itertools.zip_longest(
                labels, application.eliminations
            ):
                detail = elim.detail if elim else (
                    f"covered {sorted(application.covered)} with view "
                    f"{application.view.name}"
                )
                trace.append(RuleApplication(label or "U2", detail))
            if application.eliminations:
                trace.append(
                    RuleApplication(
                        "U2",
                        f"view {application.view.name} covers "
                        f"{sorted(application.covered)}",
                    )
                )
            probes += sum(1 for e in application.eliminations if e.rule == "C3")

        for table in block.tables:
            if table.kind == "view":
                leaves.append(
                    ops.ViewRel(table.relation, table.binding, table.columns)
                )
                for col in table.columns:
                    available[(table.binding, col.lower())] = ast.ColumnRef(
                        table.binding, col
                    )
                views_used.append(table.relation)
                trace.append(
                    RuleApplication("U1", f"authorization view scan {table.relation}")
                )
            elif table.kind == "opaque":
                sub = self.subcheck(table.subplan)
                if sub is None:
                    raise MatchError("opaque subquery not valid")
                leaves.append(ops.Alias(sub.witness, table.binding))
                for col in table.columns:
                    available[(table.binding, col.lower())] = ast.ColumnRef(
                        table.binding, col
                    )
                conditional = conditional or sub.conditional
                probes += sub.probes_executed
                views_used.extend(sub.views_used)
                trace.append(
                    RuleApplication(
                        "C2" if sub.conditional else "U2",
                        f"subquery {table.binding} valid by recursion",
                    )
                )
                trace.extend(sub.trace)

        applied_conjuncts: list[ast.Expr] = []
        for application in chosen:
            applied_conjuncts.extend(application.mapped_conjuncts)

        def rewrite(expr: ast.Expr) -> ast.Expr:
            def visit(node: ast.Expr) -> Optional[ast.Expr]:
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    key = (node.table, node.name.lower())
                    replacement = available.get(key)
                    if replacement is None:
                        # A pinned column can be replaced by its constant.
                        if theory.pinned(node):
                            return ast.Literal(theory.constant_of(node))
                        raise MatchError(f"column {node} not available from views")
                    return replacement
                return None

            return exprs.transform(expr, visit)

        plan: Optional[ops.Operator] = None
        for leaf in leaves:
            plan = leaf if plan is None else ops.Join(plan, leaf, kind="cross")

        # Place dependent joins (§6): each needs its anchor column to be
        # available from the plan built so far; chains resolve iteratively.
        pending = dict(dependent or {})
        while pending:
            placed_binding = None
            for binding, candidates in pending.items():
                for candidate in candidates:
                    anchor_key = (
                        candidate.anchor_col.table,
                        candidate.anchor_col.name.lower(),
                    )
                    if anchor_key not in available or plan is None:
                        continue
                    dj_binding = f"v{next(self._binding_counter)}"
                    plan = ops.DependentJoin(
                        left=plan,
                        view_name=candidate.view.name,
                        view_binding=dj_binding,
                        view_columns=candidate.view.output_names,
                        param_name=candidate.param_name,
                        key_expr=available[anchor_key],
                    )
                    for (qb, col), out_name in candidate.available.items():
                        available.setdefault(
                            (qb, col), ast.ColumnRef(dj_binding, out_name)
                        )
                    applied_conjuncts.extend(candidate.mapped_conjuncts)
                    views_used.append(candidate.view.name)
                    trace.append(
                        RuleApplication(
                            "AP",
                            f"dependent join: {candidate.table.relation} via "
                            f"access-pattern view {candidate.view.name} "
                            f"($${candidate.param_name} := {candidate.anchor_col})",
                        )
                    )
                    placed_binding = binding
                    break
                if placed_binding:
                    break
            if placed_binding is None:
                raise MatchError("dependent join anchor not available")
            del pending[placed_binding]

        # Residual conjuncts: those not entailed by the union of applied
        # view predicates (including dependent-join key equalities).
        applied_theory = PredicateTheory(applied_conjuncts)
        residual = [
            c for c in block.conjuncts if not applied_theory.entails(c)
        ]
        rewritten_residual = [rewrite(c) for c in residual]
        rewritten_outputs = [(rewrite(e), name) for e, name in block.outputs]

        # Overlapping covers: join the duplicate coverages on a key of
        # the shared instance (exactness argument: the key is unique, so
        # each side contributes the instance's tuple exactly once).
        for qb, coverers in coverage.items():
            if len(coverers) < 2:
                continue
            table = next(t for t in block.tables if t.binding == qb)
            key = self._joint_key(table, [a for a, _ in coverers])
            if key is None:
                raise MatchError(
                    f"overlapping cover of {qb} lacks a commonly exposed key"
                )
            first_app, first_binding = coverers[0]
            for other_app, other_binding in coverers[1:]:
                for col in key:
                    left_ref = ast.ColumnRef(
                        first_binding, first_app.available[(qb, col.lower())]
                    )
                    right_ref = ast.ColumnRef(
                        other_binding, other_app.available[(qb, col.lower())]
                    )
                    rewritten_residual.append(
                        ast.BinaryOp("=", left_ref, right_ref)
                    )
                trace.append(
                    RuleApplication(
                        "U2",
                        f"overlapping cover of {qb} joined on key "
                        f"({', '.join(key)})",
                    )
                )

        if plan is None:
            from repro.algebra.translate import _DUAL

            plan = _DUAL
        predicate = exprs.make_conjunction(rewritten_residual)
        if predicate is not None:
            plan = ops.Select(plan, predicate)

        # [NOT] IN / [NOT] EXISTS subquery conjuncts: the inner query
        # must itself be valid (rule U2/C2); the semijoin is re-applied
        # over the witness with the operand rewritten.
        for spec in block.semijoins:
            sub = self.subcheck(spec.subplan)
            if sub is None:
                raise MatchError("subquery of IN/EXISTS conjunct not valid")
            operand = rewrite(spec.operand) if spec.operand is not None else None
            plan = ops.SemiJoin(
                plan, sub.witness, operand=operand, negated=spec.negated
            )
            conditional = conditional or sub.conditional
            probes += sub.probes_executed
            views_used.extend(sub.views_used)
            trace.append(
                RuleApplication(
                    "C2" if sub.conditional else "U2",
                    ("NOT " if spec.negated else "")
                    + ("IN" if spec.operand is not None else "EXISTS")
                    + " subquery valid by recursion",
                )
            )
            trace.extend(sub.trace)
        plan = ops.Project(plan, tuple(rewritten_outputs))
        if block.distinct or inflated:
            plan = ops.Distinct(plan)

        return Rewriting(
            witness=plan,
            conditional=conditional,
            trace=trace,
            views_used=tuple(dict.fromkeys(views_used)),
            probes_executed=probes,
        )

    # ------------------------------------------------------------------
    # Aggregate matching
    # ------------------------------------------------------------------

    def match_agg(self, block: AggBlock) -> Optional[Rewriting]:
        """Match an aggregate query block (three strategies).

        1. rewrite the aggregation input exactly and re-apply the
           aggregate (rule U2);
        2. match an aggregate view with compatible grouping, including
           group-pinning selections (Examples 4.1/4.2);
        3. *re-aggregate* a finer-grained aggregate view — sum of sums,
           sum of counts, min of mins, avg from sum+count (the
           aggregate-rewriting literature the paper builds on, [8, 14,
           26] in its references).
        """
        result = self._agg_via_inner_rewrite(block)
        if result is not None:
            return result
        for view in self.views:
            if not view.is_aggregate:
                continue
            result = self._agg_via_view(block, view)
            if result is not None:
                return result
        if self.enable_reaggregation:
            for view in self.views:
                if not view.is_aggregate:
                    continue
                result = self._agg_via_reaggregation(block, view)
                if result is not None:
                    return result
        return None

    # -- Path A: rewrite the aggregation input, re-aggregate (rule U2) ----------

    def _agg_via_inner_rewrite(self, block: AggBlock) -> Optional[Rewriting]:
        insensitive = all(
            call.name.lower() in _DUPLICATE_INSENSITIVE or call.distinct
            for call, _ in block.aggregates
        )
        # Columns the aggregation consumes, as uniquely named inner outputs.
        needed: dict[ast.ColumnRef, str] = {}

        def collect(expr: ast.Expr) -> None:
            for ref in exprs.columns_in(expr):
                if ref.table is not None and ref not in needed:
                    needed[ref] = f"c{len(needed) + 1}"

        for expr, _ in block.group_exprs:
            collect(expr)
        for call, _ in block.aggregates:
            for arg in call.args:
                if not isinstance(arg, ast.Star):
                    collect(arg)

        inner = SPJBlock(
            tables=block.inner.tables,
            conjuncts=block.inner.conjuncts,
            outputs=tuple((ref, name) for ref, name in needed.items()),
            distinct=insensitive,
            semijoins=block.inner.semijoins,
        )
        rewriting = self.match_spj(inner)
        if rewriting is None:
            return None

        mapping = {ref: ast.ColumnRef(None, name) for ref, name in needed.items()}

        def remap(expr: ast.Expr) -> ast.Expr:
            return exprs.substitute_columns(expr, mapping)

        group_exprs = tuple((remap(e), n) for e, n in block.group_exprs)
        aggregates = tuple(
            (
                ast.FuncCall(
                    c.name,
                    tuple(a if isinstance(a, ast.Star) else remap(a) for a in c.args),
                    c.distinct,
                ),
                n,
            )
            for c, n in block.aggregates
        )
        plan: ops.Operator = ops.Aggregate(rewriting.witness, group_exprs, aggregates)
        having = exprs.make_conjunction(block.having)
        if having is not None:
            plan = ops.Select(plan, having)
        plan = ops.Project(plan, block.outputs)
        if block.distinct:
            plan = ops.Distinct(plan)
        trace = rewriting.trace + [
            RuleApplication("U2", "re-applied aggregation over rewritten input")
        ]
        return Rewriting(
            witness=plan,
            conditional=rewriting.conditional,
            trace=trace,
            views_used=rewriting.views_used,
            probes_executed=rewriting.probes_executed,
        )

    # -- Path B: match an aggregate authorization view ---------------------------

    def _agg_via_view(self, block: AggBlock, view: CandidateView) -> Optional[Rewriting]:
        vblock: AggBlock = view.block
        q_inner = block.inner
        if q_inner.semijoins:
            return None  # handled by the inner-rewrite path only
        if any(t.kind != "table" for t in q_inner.tables):
            return None
        if any(t.kind != "table" for t in vblock.inner.tables):
            return None
        if len(vblock.inner.tables) != len(q_inner.tables):
            return None

        # View exposure: group/agg internal name -> view output column.
        exposure: dict[str, str] = {}
        for (expr, _), out_name in zip(vblock.outputs, view.output_names):
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                exposure.setdefault(expr.name.lower(), out_name)

        by_relation: dict[str, list[TableInstance]] = {}
        for qt in q_inner.tables:
            by_relation.setdefault(qt.relation.lower(), []).append(qt)
        choices = [
            by_relation.get(vt.relation.lower(), []) for vt in vblock.inner.tables
        ]
        for assignment in itertools.product(*choices):
            self._tick()
            bindings = [qt.binding for qt in assignment]
            if len(set(bindings)) != len(bindings):
                continue
            psi = {
                vt.binding: qt.binding
                for vt, qt in zip(vblock.inner.tables, assignment)
            }
            result = self._try_agg_mapping(block, view, vblock, psi, exposure)
            if result is not None:
                return result
        return None

    def _try_agg_mapping(
        self,
        block: AggBlock,
        view: CandidateView,
        vblock: AggBlock,
        psi: dict[str, str],
        exposure: dict[str, str],
    ) -> Optional[Rewriting]:
        theory = PredicateTheory(block.inner.conjuncts)
        mapped_vconj = [
            exprs.rename_bindings(c, psi) for c in vblock.inner.conjuncts
        ]
        # The view must not filter rows the query aggregates over.
        if not all(theory.entails(c) for c in mapped_vconj):
            return None

        # Group expressions, mapped into the query's bindings.
        mapped_groups: dict[ast.Expr, str] = {}
        for expr, name in vblock.group_exprs:
            if name.lower() not in exposure:
                continue  # group column not exposed by the view
            mapped_groups[exprs.rename_bindings(expr, psi)] = exposure[name.lower()]

        # Every query group expression must be one of the view's.
        group_rename: dict[str, str] = {}  # query group name -> view output col
        matched_group_exprs: set[ast.Expr] = set()
        for expr, name in block.group_exprs:
            if expr not in mapped_groups:
                return None
            group_rename[name.lower()] = mapped_groups[expr]
            matched_group_exprs.add(expr)

        # Query conjuncts: rewritable over view group outputs (selection
        # σ on the view), or entailed by the view's own predicate.
        vtheory = PredicateTheory(mapped_vconj)
        sigma_conjuncts: list[ast.Expr] = []
        for conj in block.inner.conjuncts:
            rewritten = self._rewrite_over_groups(conj, mapped_groups)
            if rewritten is not None:
                sigma_conjuncts.append(rewritten)
            elif not vtheory.entails(conj):
                return None

        # Aggregates: each must be computed by the view.  The view's
        # aggregate arguments are mapped through ψ into the query's
        # bindings before comparison.
        mapped_vaggs: list[tuple[ast.FuncCall, str]] = []
        for vcall, vname in vblock.aggregates:
            mapped_vaggs.append(
                (
                    ast.FuncCall(
                        vcall.name,
                        tuple(
                            a
                            if isinstance(a, ast.Star)
                            else exprs.rename_bindings(a, psi)
                            for a in vcall.args
                        ),
                        vcall.distinct,
                    ),
                    vname,
                )
            )
        agg_rename: dict[str, str] = {}  # query agg name -> view output col
        for call, name in block.aggregates:
            found = None
            for mapped_vcall, vname in mapped_vaggs:
                if mapped_vcall == call and vname.lower() in exposure:
                    found = exposure[vname.lower()]
                    break
            if found is None:
                return None
            agg_rename[name.lower()] = found

        # Extra view groups must be pinned to constants by the query.
        extra_groups = [
            (expr, out)
            for expr, out in mapped_groups.items()
            if expr not in matched_group_exprs
        ]
        pins: list[ast.Expr] = []
        for expr, out in extra_groups:
            if not theory.pinned(expr):
                return None
            pins.append(
                ast.BinaryOp(
                    "=", ast.ColumnRef(None, out), ast.Literal(theory.constant_of(expr))
                )
            )

        # HAVING bookkeeping (over the view's output namespace).
        def to_view_names(expr: ast.Expr) -> Optional[ast.Expr]:
            ok = True

            def visit(node: ast.Expr) -> Optional[ast.Expr]:
                nonlocal ok
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    target = group_rename.get(node.name.lower()) or agg_rename.get(
                        node.name.lower()
                    )
                    if target is None:
                        ok = False
                        return None
                    return ast.ColumnRef(None, target)
                return None

            result = exprs.transform(expr, visit)
            return result if ok else None

        q_having = []
        for conj in block.having:
            rewritten = to_view_names(conj)
            if rewritten is None:
                return None
            q_having.append(rewritten)

        having_theory = PredicateTheory(
            [c for p in (q_having, pins) for c in p]
        )
        unmet_having = []
        for conj in vblock.having:
            rewritten = self._rename_over_exposure(conj, exposure)
            if rewritten is None or not having_theory.entails(rewritten):
                # Unexposed or unproven HAVING: only the probe path (which
                # evaluates the view itself, HAVING included) can justify it.
                unmet_having.append(conj)

        scalar = not block.group_exprs

        def build_view_plan() -> ops.Operator:
            binding = f"v{next(self._binding_counter)}"
            leaf = ops.ViewRel(view.name, binding, view.output_names)

            def qualify(expr: ast.Expr) -> ast.Expr:
                def visit(node: ast.Expr) -> Optional[ast.Expr]:
                    if isinstance(node, ast.ColumnRef) and node.table is None:
                        return ast.ColumnRef(binding, node.name)
                    return None

                return exprs.transform(expr, visit)

            conjuncts = [qualify(c) for c in pins + sigma_conjuncts + q_having]
            plan: ops.Operator = leaf
            predicate = exprs.make_conjunction(conjuncts)
            if predicate is not None:
                plan = ops.Select(plan, predicate)
            outputs = []
            for expr, name in block.outputs:
                rewritten = to_view_names(expr)
                if rewritten is None:
                    raise MatchError("output not exposed by aggregate view")
                outputs.append((qualify(rewritten), name))
            plan = ops.Project(plan, tuple(outputs))
            if block.distinct:
                plan = ops.Distinct(plan)
            return plan

        if not scalar:
            # Row-for-row correspondence needs the view's HAVING met.
            if unmet_having:
                return None
            try:
                plan = build_view_plan()
            except MatchError:
                return None
            # Pinned extra groups simply select matching view rows — the
            # correspondence holds on all states, so this is unconditional.
            return Rewriting(
                witness=plan,
                conditional=False,
                trace=[
                    RuleApplication(
                        "U2",
                        f"aggregate view {view.name} matches grouping "
                        f"{[n for _, n in block.group_exprs]}",
                    )
                ],
                views_used=(view.name,),
            )

        # Scalar query: all view groups pinned; probe for group existence.
        probe_binding = f"v{next(self._binding_counter)}"
        probe_leaf = ops.ViewRel(view.name, probe_binding, view.output_names)

        def probe_qualify(expr: ast.Expr) -> ast.Expr:
            def visit(node: ast.Expr) -> Optional[ast.Expr]:
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return ast.ColumnRef(probe_binding, node.name)
                return None

            return exprs.transform(expr, visit)

        probe_pred = exprs.make_conjunction(
            [probe_qualify(c) for c in pins + sigma_conjuncts]
        )
        probe_plan: ops.Operator = probe_leaf
        if probe_pred is not None:
            probe_plan = ops.Select(probe_plan, probe_pred)
        probe_plan = ops.Project(probe_plan, ((ast.Literal(1), "one"),))

        if not self.allow_conditional:
            return None
        self.probes_executed += 1
        if self.probe_runner(probe_plan):
            try:
                plan = build_view_plan()
            except MatchError:
                return None
            return Rewriting(
                witness=plan,
                conditional=True,
                trace=[
                    RuleApplication(
                        "C3a",
                        f"aggregate view {view.name}: pinned group exists "
                        "in the current state (probe non-empty)",
                    )
                ],
                views_used=(view.name,),
                probes_executed=1,
            )

        # Probe empty: with no HAVING on the view, the aggregation input
        # is provably empty on every PA-equivalent state, so the scalar
        # aggregate is a constant row.
        if vblock.having:
            return None
        constant_row: dict[str, ast.Expr] = {}
        for call, name in block.aggregates:
            if call.name.lower() == "count":
                constant_row[name.lower()] = ast.Literal(0)
            else:
                constant_row[name.lower()] = ast.Literal(None)

        def to_constants(expr: ast.Expr) -> ast.Expr:
            def visit(node: ast.Expr) -> Optional[ast.Expr]:
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    value = constant_row.get(node.name.lower())
                    if value is None:
                        raise MatchError("non-aggregate output in empty scalar case")
                    return value
                return None

            return exprs.transform(expr, visit)

        from repro.algebra.translate import _DUAL

        try:
            outputs = tuple(
                (to_constants(expr), name) for expr, name in block.outputs
            )
            having_expr = exprs.make_conjunction(
                [to_constants(c) for c in block.having]
            )
        except MatchError:
            return None
        plan = _DUAL
        if having_expr is not None:
            plan = ops.Select(plan, having_expr)
        plan = ops.Project(plan, outputs)
        return Rewriting(
            witness=plan,
            conditional=True,
            trace=[
                RuleApplication(
                    "C3a",
                    f"aggregate view {view.name}: pinned group absent on all "
                    "PA-equivalent states; scalar aggregate is constant",
                )
            ],
            views_used=(view.name,),
            probes_executed=1,
        )

    # -- Path C: re-aggregation over a finer-grained aggregate view -------------

    def _agg_via_reaggregation(
        self, block: AggBlock, view: CandidateView
    ) -> Optional[Rewriting]:
        """Q groups coarser than V's: derive Q's aggregates from V's.

        Requirements: V has no HAVING (subgroup filtering would corrupt
        the re-aggregated totals), predicates match exactly modulo
        selections over V's group columns, every Q group expression is
        one of V's, and each Q aggregate is derivable:

        * ``count(*)``  = sum of V's ``count(*)``;
        * ``sum(x)``    = sum of V's ``sum(x)``;
        * ``min/max(x)``= min/max of V's ``min/max(x)``;
        * ``avg(x)``    = sum(V.sum(x)) / sum(V.count(x)).
        """
        vblock: AggBlock = view.block
        q_inner = block.inner
        if vblock.having or q_inner.semijoins or vblock.inner.semijoins:
            return None
        if block.having:
            return None  # coarse HAVING over derived aggregates: unsupported
        if any(t.kind != "table" for t in q_inner.tables):
            return None
        if any(t.kind != "table" for t in vblock.inner.tables):
            return None
        if len(vblock.inner.tables) != len(q_inner.tables):
            return None

        exposure: dict[str, str] = {}
        for (expr, _), out_name in zip(vblock.outputs, view.output_names):
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                exposure.setdefault(expr.name.lower(), out_name)

        by_relation: dict[str, list[TableInstance]] = {}
        for qt in q_inner.tables:
            by_relation.setdefault(qt.relation.lower(), []).append(qt)
        choices = [
            by_relation.get(vt.relation.lower(), []) for vt in vblock.inner.tables
        ]
        for assignment in itertools.product(*choices):
            self._tick()
            bindings = [qt.binding for qt in assignment]
            if len(set(bindings)) != len(bindings):
                continue
            psi = {
                vt.binding: qt.binding
                for vt, qt in zip(vblock.inner.tables, assignment)
            }
            result = self._try_reaggregation(block, view, vblock, psi, exposure)
            if result is not None:
                return result
        return None

    def _try_reaggregation(
        self,
        block: AggBlock,
        view: CandidateView,
        vblock: AggBlock,
        psi: dict[str, str],
        exposure: dict[str, str],
    ) -> Optional[Rewriting]:
        theory = PredicateTheory(block.inner.conjuncts)
        mapped_vconj = [exprs.rename_bindings(c, psi) for c in vblock.inner.conjuncts]
        if not all(theory.entails(c) for c in mapped_vconj):
            return None

        mapped_groups: dict[ast.Expr, str] = {}
        for expr, name in vblock.group_exprs:
            if name.lower() not in exposure:
                return None  # all finer group columns must be exposed
            mapped_groups[exprs.rename_bindings(expr, psi)] = exposure[name.lower()]

        # Q's groups: subset of V's (strict subset is the point here).
        group_rename: dict[str, str] = {}
        matched: set[ast.Expr] = set()
        for expr, name in block.group_exprs:
            if expr not in mapped_groups:
                return None
            group_rename[name.lower()] = mapped_groups[expr]
            matched.add(expr)

        # Q conjuncts beyond the view's: only over V's group columns.
        vtheory = PredicateTheory(mapped_vconj)
        sigma_conjuncts: list[ast.Expr] = []
        for conj in block.inner.conjuncts:
            rewritten = self._rewrite_over_groups(conj, mapped_groups)
            if rewritten is not None:
                sigma_conjuncts.append(rewritten)
            elif not vtheory.entails(conj):
                return None

        # Map V's aggregate outputs: name -> (call, exposed column).
        v_aggs: dict[tuple, str] = {}
        for vcall, vname in vblock.aggregates:
            if vname.lower() not in exposure:
                continue
            mapped_call = ast.FuncCall(
                vcall.name,
                tuple(
                    a if isinstance(a, ast.Star) else exprs.rename_bindings(a, psi)
                    for a in vcall.args
                ),
                vcall.distinct,
            )
            v_aggs[mapped_call] = exposure[vname.lower()]

        def exposed(call: ast.FuncCall) -> Optional[str]:
            return v_aggs.get(call)

        binding = f"v{next(self._binding_counter)}"

        def col(name: str) -> ast.ColumnRef:
            return ast.ColumnRef(binding, name)

        # Derive each Q aggregate; collect (inner agg call over the view
        # scan, internal name) plus a post-aggregation expression.
        inner_aggs: list[tuple[ast.FuncCall, str]] = []
        post_exprs: dict[str, ast.Expr] = {}  # q agg name -> expr over inner names

        def fresh(call: ast.FuncCall) -> str:
            name = f"r{len(inner_aggs) + 1}"
            inner_aggs.append((call, name))
            return name

        for call, qname in block.aggregates:
            if call.distinct:
                return None  # distinct aggregates do not re-aggregate
            fname = call.name.lower()
            if fname == "count":
                source = exposed(call)
                if source is None:
                    return None
                total = fresh(ast.FuncCall("sum", (col(source),)))
                # SQL count is 0 (not NULL) over an empty group set —
                # but with no qualifying view rows the coarse group does
                # not exist either, so plain sum is exact per group.
                post_exprs[qname.lower()] = ast.ColumnRef(None, total)
            elif fname == "sum":
                source = exposed(call)
                if source is None:
                    return None
                total = fresh(ast.FuncCall("sum", (col(source),)))
                post_exprs[qname.lower()] = ast.ColumnRef(None, total)
            elif fname in ("min", "max"):
                source = exposed(call)
                if source is None:
                    return None
                best = fresh(ast.FuncCall(fname, (col(source),)))
                post_exprs[qname.lower()] = ast.ColumnRef(None, best)
            elif fname == "avg":
                sum_call = ast.FuncCall("sum", call.args)
                count_call = ast.FuncCall("count", call.args)
                sum_src = exposed(sum_call)
                count_src = exposed(count_call)
                if sum_src is None or count_src is None:
                    return None
                total = fresh(ast.FuncCall("sum", (col(sum_src),)))
                count = fresh(ast.FuncCall("sum", (col(count_src),)))
                post_exprs[qname.lower()] = ast.CaseExpr(
                    branches=(
                        (
                            ast.BinaryOp(">", ast.ColumnRef(None, count), ast.Literal(0)),
                            ast.BinaryOp(
                                "/",
                                ast.ColumnRef(None, total),
                                ast.ColumnRef(None, count),
                            ),
                        ),
                    ),
                    default=None,
                )
            else:
                return None

        if not block.group_exprs:
            # Scalar re-aggregation: over an empty view the Aggregate
            # still yields one row (sum -> NULL, matching SQL's scalar
            # semantics for sum/min/max/avg) but count must become 0.
            for call, qname in block.aggregates:
                if call.name.lower() == "count":
                    inner = post_exprs[qname.lower()]
                    post_exprs[qname.lower()] = ast.FuncCall(
                        "coalesce", (inner, ast.Literal(0))
                    )

        # Assemble the witness: σ(pins) over the view scan, re-aggregate,
        # project the query's outputs.
        def qualify(expr: ast.Expr) -> ast.Expr:
            def visit(node: ast.Expr) -> Optional[ast.Expr]:
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return ast.ColumnRef(binding, node.name)
                return None

            return exprs.transform(expr, visit)

        plan: ops.Operator = ops.ViewRel(view.name, binding, view.output_names)
        predicate = exprs.make_conjunction([qualify(c) for c in sigma_conjuncts])
        if predicate is not None:
            plan = ops.Select(plan, predicate)
        group_exprs = tuple(
            (col(group_rename[name.lower()]), name)
            for _, name in block.group_exprs
        )
        plan = ops.Aggregate(plan, group_exprs, tuple(inner_aggs))

        def to_outputs(expr: ast.Expr) -> Optional[ast.Expr]:
            ok = True

            def visit(node: ast.Expr):
                nonlocal ok
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    lowered = node.name.lower()
                    if lowered in post_exprs:
                        return post_exprs[lowered]
                    if lowered in group_rename:
                        return ast.ColumnRef(None, node.name)
                    ok = False
                return None

            result = exprs.transform(expr, visit)
            return result if ok else None

        outputs = []
        for expr, name in block.outputs:
            rewritten = to_outputs(expr)
            if rewritten is None:
                return None
            outputs.append((rewritten, name))
        plan = ops.Project(plan, tuple(outputs))
        if block.distinct:
            plan = ops.Distinct(plan)

        return Rewriting(
            witness=plan,
            conditional=False,
            trace=[
                RuleApplication(
                    "U2",
                    f"re-aggregated the finer-grained view {view.name} "
                    f"(groups {[n for _, n in vblock.group_exprs]} -> "
                    f"{[n for _, n in block.group_exprs]})",
                )
            ],
            views_used=(view.name,),
        )

    @staticmethod
    def _rewrite_over_groups(
        conj: ast.Expr, mapped_groups: dict[ast.Expr, str]
    ) -> Optional[ast.Expr]:
        """Rewrite a conjunct so it references only view group outputs."""
        ok = True

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            nonlocal ok
            if node in mapped_groups:
                return ast.ColumnRef(None, mapped_groups[node])
            if isinstance(node, ast.ColumnRef) and node.table is not None:
                ok = False
            return None

        result = exprs.transform(conj, visit)
        return result if ok else None

    @staticmethod
    def _rename_over_exposure(
        conj: ast.Expr, exposure: dict[str, str]
    ) -> Optional[ast.Expr]:
        ok = True

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            nonlocal ok
            if isinstance(node, ast.ColumnRef) and node.table is None:
                target = exposure.get(node.name.lower())
                if target is None:
                    ok = False
                    return None
                return ast.ColumnRef(None, target)
            return None

        result = exprs.transform(conj, visit)
        return result if ok else None

    def _joint_key(
        self, table: TableInstance, coverers: list[Application]
    ) -> Optional[tuple[str, ...]]:
        """A key of ``table`` exposed by every covering application."""
        for key in self.catalog.keys_for(table.relation):
            if all(
                all(
                    (table.binding, col.lower()) in app.available for col in key
                )
                for app in coverers
            ):
                return key
        return None

    def _empty_rewriting(self, block: SPJBlock) -> Rewriting:
        """Unsatisfiable predicate: the query is empty on every state."""
        from repro.algebra.translate import _DUAL

        plan = ops.Select(_DUAL, ast.Literal(False))
        witness = ops.Project(plan, tuple(block.outputs))
        return Rewriting(
            witness=witness,
            conditional=False,
            trace=[
                RuleApplication(
                    "U2", "predicate unsatisfiable: query is empty on all states"
                )
            ],
            views_used=(),
        )


def _qualify(predicate: ast.Expr, binding: str) -> ast.Expr:
    """Qualify unqualified column refs in a constraint predicate."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            return ast.ColumnRef(binding, node.name)
        return None

    return exprs.transform(predicate, visit)
