"""Canonical query blocks for validity inference.

The inference rules (paper Section 5) reason about queries of the form
``select A from R where P`` — flattened select-project-join blocks —
optionally wrapped in grouping/aggregation.  This module converts bound
logical plans (:mod:`repro.algebra.ops`) into:

* :class:`SPJBlock` — tables (base relations, authorization-view scans,
  or opaque subplans), normalized predicate conjuncts, output
  expressions, and a distinct flag;
* :class:`AggBlock` — an inner SPJBlock plus group expressions,
  aggregate calls, having conjuncts, and final outputs.

Derived tables (Alias over an SPJ subtree) are flattened with binding
renaming; non-flattenable subtrees (nested aggregates, set operations,
outer joins, LIMIT) become *opaque* table instances handled
compositionally by rule U2/C2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.algebra.normalize import normalize_predicate


@dataclass(frozen=True)
class TableInstance:
    """One entry in a block's FROM multiset."""

    relation: str  # base-table name, view name, or "<subquery>"
    binding: str
    kind: str  # "table" | "view" | "opaque"
    columns: tuple[str, ...]
    #: logical plan for opaque instances (checked recursively via U2/C2)
    subplan: Optional[ops.Operator] = field(default=None, compare=False)

    @property
    def is_base_table(self) -> bool:
        return self.kind == "table"


@dataclass(frozen=True)
class SemiJoinSpec:
    """A [NOT] IN/EXISTS subquery conjunct attached to a block.

    ``operand`` is expressed over the block's table bindings (None for
    the EXISTS form); ``subplan`` is the uncorrelated inner query,
    validated recursively (rule U2/C2) during matching.
    """

    subplan: "ops.Operator" = field(compare=False)
    operand: Optional[ast.Expr] = None
    negated: bool = False


@dataclass(frozen=True)
class SPJBlock:
    """Flattened select-project-join block (bag semantics)."""

    tables: tuple[TableInstance, ...]
    conjuncts: tuple[ast.Expr, ...]
    outputs: tuple[tuple[ast.Expr, str], ...]
    distinct: bool = False
    semijoins: tuple[SemiJoinSpec, ...] = ()

    @property
    def base_tables(self) -> tuple[TableInstance, ...]:
        return tuple(t for t in self.tables if t.kind == "table")

    def binding_of(self, binding: str) -> TableInstance:
        for table in self.tables:
            if table.binding == binding:
                return table
        raise KeyError(binding)

    def with_outputs(self, outputs) -> "SPJBlock":
        return SPJBlock(
            self.tables, self.conjuncts, tuple(outputs), self.distinct,
            self.semijoins,
        )

    def describe(self) -> str:
        tables = ", ".join(f"{t.relation} {t.binding}" for t in self.tables)
        preds = " AND ".join(str(c) for c in self.conjuncts) or "true"
        outs = ", ".join(f"{e} AS {n}" for e, n in self.outputs)
        head = "SELECT DISTINCT" if self.distinct else "SELECT"
        return f"{head} {outs} FROM {tables} WHERE {preds}"


@dataclass(frozen=True)
class AggBlock:
    """Aggregation over an SPJ block."""

    inner: SPJBlock
    group_exprs: tuple[tuple[ast.Expr, str], ...]
    aggregates: tuple[tuple[ast.FuncCall, str], ...]
    having: tuple[ast.Expr, ...]  # over group/agg output names (binding None)
    outputs: tuple[tuple[ast.Expr, str], ...]  # over group/agg output names
    distinct: bool = False

    def describe(self) -> str:
        groups = ", ".join(f"{e}" for e, _ in self.group_exprs)
        aggs = ", ".join(f"{a} AS {n}" for a, n in self.aggregates)
        return (
            f"AGG[{aggs}] GROUP BY [{groups}] HAVING "
            f"[{' AND '.join(str(h) for h in self.having) or 'true'}] "
            f"OVER ({self.inner.describe()})"
        )


class _Partial:
    """Mutable accumulator while flattening an operator tree."""

    __slots__ = ("tables", "conjuncts", "outputs", "semijoins")

    def __init__(self):
        self.tables: list[TableInstance] = []
        self.conjuncts: list[ast.Expr] = []
        # ordered outputs: (expr over table bindings, OutCol of the plan)
        self.outputs: list[tuple[ast.Expr, ops.OutCol]] = []
        self.semijoins: list[SemiJoinSpec] = []

    def colmap(self) -> dict[tuple[Optional[str], str], ast.Expr]:
        mapping: dict[tuple[Optional[str], str], ast.Expr] = {}
        for expr, col in self.outputs:
            binding = col.binding.lower() if col.binding else None
            mapping.setdefault((binding, col.name.lower()), expr)
            # Unqualified lookups (binding None) also resolve by name.
            mapping.setdefault((None, col.name.lower()), expr)
        return mapping

    def substitute(self, expr: ast.Expr) -> ast.Expr:
        mapping = self.colmap()

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.ColumnRef):
                key = (node.table.lower() if node.table else None, node.name.lower())
                replacement = mapping.get(key)
                if replacement is not None:
                    return replacement
            return None

        return exprs.transform(expr, visit)


class BlockBuilder:
    """Converts logical plans to blocks; owns binding uniquification.

    ``ctx`` (a :class:`repro.service.context.QueryContext`) makes the
    plan-flattening recursion cooperative: deeply nested plans observe
    the request deadline/cancel token while being blockified.
    """

    def __init__(self, ctx=None):
        self._used_bindings: set[str] = set()
        self._counter = itertools.count(1)
        self.ctx = ctx

    def _fresh_binding(self, base: str) -> str:
        candidate = base
        while candidate.lower() in self._used_bindings:
            candidate = f"{base}_{next(self._counter)}"
        self._used_bindings.add(candidate.lower())
        return candidate

    # -- public -----------------------------------------------------------

    def to_query_form(self, plan: ops.Operator):
        """Convert to SPJBlock or AggBlock; None if not block-shaped.

        Aggregate shapes are tried first — ``to_spj`` would otherwise
        swallow a top-level Aggregate as one opaque instance.
        """
        agg = self.to_agg(plan)
        if agg is not None:
            return agg
        return self.to_spj(plan)

    def to_spj(self, plan: ops.Operator) -> Optional[SPJBlock]:
        """Flatten to an SPJBlock; None if the tree has agg/set-op shape."""
        distinct = False
        if isinstance(plan, ops.Distinct):
            distinct = True
            plan = plan.child
        partial = self._build(plan, allow_opaque=True)
        if partial is None:
            return None
        outputs = tuple((expr, col.name) for expr, col in partial.outputs)
        return SPJBlock(
            tables=tuple(partial.tables),
            conjuncts=tuple(
                dict.fromkeys(
                    c
                    for conj in partial.conjuncts
                    for c in normalize_predicate(conj)
                )
            ),
            outputs=outputs,
            distinct=distinct,
            semijoins=tuple(partial.semijoins),
        )

    def to_agg(self, plan: ops.Operator) -> Optional[AggBlock]:
        """Match Project(Select*(Aggregate(inner))) shapes."""
        distinct = False
        if isinstance(plan, ops.Distinct):
            distinct = True
            plan = plan.child

        outputs: Optional[tuple[tuple[ast.Expr, str], ...]] = None
        if isinstance(plan, ops.Project):
            outputs = plan.exprs
            plan = plan.child

        having: list[ast.Expr] = []
        while isinstance(plan, ops.Select):
            having.extend(normalize_predicate(plan.predicate))
            plan = plan.child

        if not isinstance(plan, ops.Aggregate):
            return None
        agg = plan
        inner_partial = self._build(agg.child, allow_opaque=True)
        if inner_partial is None:
            return None

        group_exprs = tuple(
            (inner_partial.substitute(expr), name) for expr, name in agg.group_exprs
        )
        aggregates = tuple(
            (
                ast.FuncCall(
                    call.name,
                    tuple(
                        arg if isinstance(arg, ast.Star) else inner_partial.substitute(arg)
                        for arg in call.args
                    ),
                    call.distinct,
                ),
                name,
            )
            for call, name in agg.aggregates
        )
        if outputs is None:
            outputs = tuple(
                (ast.ColumnRef(None, col.name), col.name) for col in agg.columns
            )

        # Inner outputs: the columns the aggregation consumes.
        needed: list[tuple[ast.Expr, str]] = []
        for expr, name in group_exprs:
            needed.append((expr, name))
        inner_block = SPJBlock(
            tables=tuple(inner_partial.tables),
            conjuncts=tuple(
                dict.fromkeys(
                    c
                    for conj in inner_partial.conjuncts
                    for c in normalize_predicate(conj)
                )
            ),
            outputs=tuple(needed),
            distinct=False,
            semijoins=tuple(inner_partial.semijoins),
        )
        return AggBlock(
            inner=inner_block,
            group_exprs=group_exprs,
            aggregates=aggregates,
            having=tuple(having),
            outputs=tuple(outputs),
            distinct=distinct,
        )

    # -- recursive flattening ------------------------------------------------

    def _build(self, plan: ops.Operator, allow_opaque: bool) -> Optional[_Partial]:
        if self.ctx is not None:
            self.ctx.tick(0)
        if type(plan).__name__ == "_Dual":
            # FROM-less SELECT: one row, no columns, no tables.
            return _Partial()
        if isinstance(plan, ops.Rel):
            return self._leaf(plan, kind="table")
        if isinstance(plan, ops.ViewRel):
            return self._leaf(plan, kind="view")
        if isinstance(plan, ops.Select):
            partial = self._build(plan.child, allow_opaque)
            if partial is None:
                return None
            partial.conjuncts.append(partial.substitute(plan.predicate))
            return partial
        if isinstance(plan, ops.Project):
            partial = self._build(plan.child, allow_opaque)
            if partial is None:
                return None
            partial.outputs = [
                (partial.substitute(expr), ops.OutCol(None, name))
                for expr, name in plan.exprs
            ]
            return partial
        if isinstance(plan, ops.SemiJoin):
            left = self._build(plan.left, allow_opaque)
            if left is None:
                return self._opaque(plan) if allow_opaque else None
            operand = (
                left.substitute(plan.operand) if plan.operand is not None else None
            )
            left.semijoins.append(
                SemiJoinSpec(
                    subplan=plan.right, operand=operand, negated=plan.negated
                )
            )
            return left
        if isinstance(plan, ops.Join):
            if plan.kind not in ("inner", "cross"):
                return self._opaque(plan) if allow_opaque else None
            left = self._build(plan.left, allow_opaque)
            right = self._build(plan.right, allow_opaque)
            if left is None or right is None:
                return None
            merged = _Partial()
            merged.tables = left.tables + right.tables
            merged.conjuncts = left.conjuncts + right.conjuncts
            merged.outputs = left.outputs + right.outputs
            merged.semijoins = left.semijoins + right.semijoins
            if plan.predicate is not None:
                merged.conjuncts.append(merged.substitute(plan.predicate))
            return merged
        if isinstance(plan, ops.Alias):
            inner = self._build(plan.child, allow_opaque=False)
            if inner is None:
                if allow_opaque:
                    return self._opaque(plan)
                return None
            partial = _Partial()
            partial.tables = inner.tables
            partial.conjuncts = inner.conjuncts
            partial.semijoins = inner.semijoins
            partial.outputs = [
                (expr, ops.OutCol(plan.binding, col.name))
                for expr, col in inner.outputs
            ]
            return partial
        if isinstance(plan, ops.Sort):
            # Order is irrelevant to multiset equivalence.
            return self._build(plan.child, allow_opaque)
        if allow_opaque and isinstance(
            plan, (ops.Aggregate, ops.Distinct, ops.SetOperation, ops.Limit)
        ):
            return self._opaque(plan)
        return None

    def _leaf(self, plan, kind: str) -> _Partial:
        binding = self._fresh_binding(plan.binding)
        instance = TableInstance(
            relation=plan.name,
            binding=binding,
            kind=kind,
            columns=plan.schema_columns,
        )
        partial = _Partial()
        partial.tables = [instance]
        partial.outputs = [
            (ast.ColumnRef(binding, c), ops.OutCol(plan.binding, c))
            for c in plan.schema_columns
        ]
        return partial

    def _opaque(self, plan: ops.Operator) -> _Partial:
        """Wrap a non-flattenable subtree as an opaque table instance."""
        if isinstance(plan, ops.Alias):
            base_name = plan.binding
            columns = tuple(c.name for c in plan.columns)
            subplan = plan.child
            out_binding = plan.binding
        else:
            base_name = "subquery"
            columns = tuple(c.name for c in plan.columns)
            subplan = plan
            out_binding = None
        binding = self._fresh_binding(base_name)
        instance = TableInstance(
            relation="<subquery>",
            binding=binding,
            kind="opaque",
            columns=columns,
            subplan=subplan,
        )
        partial = _Partial()
        partial.tables = [instance]
        partial.outputs = [
            (ast.ColumnRef(binding, c), ops.OutCol(out_binding, c)) for c in columns
        ]
        return partial


def block_output_columns(block: SPJBlock) -> set[tuple[str, str]]:
    """(binding, column) pairs referenced by outputs and conjuncts."""
    cols: set[tuple[str, str]] = set()
    for expr, _ in block.outputs:
        for ref in exprs.columns_in(expr):
            if ref.table:
                cols.add((ref.table, ref.name))
    for conj in block.conjuncts:
        for ref in exprs.columns_in(conj):
            if ref.table:
                cols.add((ref.table, ref.name))
    return cols
