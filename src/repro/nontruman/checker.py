"""The Non-Truman validity checker (paper Sections 4-5).

Given a user query and a session, the checker decides whether the query
is **unconditionally valid** (Definition 4.1), **conditionally valid**
in the current database state (Definition 4.3), or invalid — in which
case the Non-Truman model rejects it.

Architecture:

1. the query is bound against the catalog; references to *granted*
   authorization views stay as :class:`~repro.algebra.ops.ViewRel`
   scans (rule U1), references to base tables must be justified;
2. set operations, ORDER BY, and LIMIT are handled structurally (rules
   U2/C2: an expression combining valid queries is valid);
3. SPJ and aggregate blocks are matched against the user's instantiated
   authorization views by :class:`~repro.nontruman.matching.BlockMatcher`
   (rules U2, U3a/b/c, C3a/b), recursively for derived tables and
   probe queries;
4. accepted queries carry an executable *witness* rewriting over view
   scans plus a rule-by-rule derivation trace.

Options mirror the paper's Section 5.6 optimizations: ``use_pruning``
(irrelevant-view elimination), ``use_cache`` (decision caching /
prepared statements), ``allow_conditional`` and ``allow_u3`` (rule-tier
ablations for experiment E7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import (
    BindError,
    CatalogError,
    ParameterError,
    ReproError,
    UnsupportedFeatureError,
)
from repro.sql import ast
from repro.algebra import ops
from repro.algebra.translate import Translator
from repro.authviews.session import SessionContext
from repro.authviews.views import InstantiatedView
from repro.catalog.catalog import ViewDef
from repro.nontruman.blocks import AggBlock, BlockBuilder, SPJBlock
from repro.nontruman.decision import RuleApplication, Validity, ValidityDecision
from repro.nontruman.matching import BlockMatcher, CandidateView, Rewriting
from repro.nontruman.pruning import prune_views

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


class ValidityChecker:
    """Decides query validity for one database."""

    def __init__(
        self,
        db: "Database",
        use_pruning: bool = True,
        use_cache: bool = False,
        allow_conditional: bool = True,
        allow_u3: bool = True,
        max_depth: int = 4,
        max_cover_nodes: int = 20000,
        enable_dependent_joins: bool = True,
        enable_overlap_covers: bool = True,
        enable_reaggregation: bool = True,
    ):
        self.db = db
        self.use_pruning = use_pruning
        self.use_cache = use_cache
        self.allow_conditional = allow_conditional
        self.allow_u3 = allow_u3
        self.max_depth = max_depth
        self.max_cover_nodes = max_cover_nodes
        self.enable_dependent_joins = enable_dependent_joins
        self.enable_overlap_covers = enable_overlap_covers
        self.enable_reaggregation = enable_reaggregation
        #: instrumentation for benchmarks
        self.views_considered = 0
        self.views_pruned = 0

    # ------------------------------------------------------------------

    def check(
        self,
        query: ast.QueryExpr,
        session: SessionContext,
        ctx=None,
    ) -> ValidityDecision:
        """Decide validity; ``ctx`` (a
        :class:`repro.service.context.QueryContext`) makes the inference
        cooperative — the matcher's cover search ticks it, so a
        deadline/cancel aborts *mid-inference* and nothing is cached.
        """
        from repro.instrument import COUNTERS

        COUNTERS.bump("validity.check")
        if self.use_cache:
            cached = self.db.validity_cache.lookup(
                session.user, query, session.user_id
            )
            if cached is not None:
                validity, reason = cached
                return ValidityDecision(
                    validity=validity, reason=reason, from_cache=True
                )

        decision = self._check_fresh(query, session, ctx)

        if self.use_cache:
            self.db.validity_cache.store(
                session.user, query, session.user_id, decision.validity, decision.reason
            )
        return decision

    def _check_fresh(
        self, query: ast.QueryExpr, session: SessionContext, ctx=None
    ) -> ValidityDecision:
        try:
            plan = self._bind(query, session)
        except (CatalogError, BindError, ParameterError, UnsupportedFeatureError) as exc:
            return ValidityDecision(
                validity=Validity.INVALID, reason=f"cannot bind query: {exc}"
            )

        views = self._candidate_views(query, session)
        matcher = BlockMatcher(
            catalog=self.db.catalog,
            views=views,
            probe_runner=lambda p: self._run_probe(p, session, ctx),
            subcheck=lambda p: None,  # replaced below (needs matcher ref)
            user=session.user,
            max_cover_nodes=self.max_cover_nodes,
            allow_conditional=self.allow_conditional,
            allow_u3=self.allow_u3,
            enable_dependent_joins=self.enable_dependent_joins,
            enable_overlap_covers=self.enable_overlap_covers,
            enable_reaggregation=self.enable_reaggregation,
            ctx=ctx,
        )
        matcher.subcheck = lambda p, depth=[0]: self._subcheck(p, matcher, depth)

        rewriting = self._rewrite_plan(plan, matcher, depth=0)
        if rewriting is None:
            return ValidityDecision(
                validity=Validity.INVALID,
                reason=(
                    "no rewriting in terms of the available authorization "
                    "views was found (rules U1-U3, C1-C3)"
                ),
            )
        validity = (
            Validity.CONDITIONAL if rewriting.conditional else Validity.UNCONDITIONAL
        )
        return ValidityDecision(
            validity=validity,
            reason="query answerable from authorization views",
            witness=rewriting.witness,
            trace=rewriting.trace,
            views_used=rewriting.views_used,
            probes_executed=rewriting.probes_executed,
        )

    # -- binding -----------------------------------------------------------

    def _bind(self, query: ast.QueryExpr, session: SessionContext) -> ops.Operator:
        def view_ok(view: ViewDef) -> bool:
            if not view.authorization:
                return True  # ordinary views are expanded inline
            return self.db.grants.is_granted(view.name, session.user)

        translator = Translator(
            self.db.catalog,
            param_values=session.param_values(),
            view_filter=view_ok,
            keep_view_scans=True,
            allow_access_params=True,
        )
        return translator.translate(query)

    # -- candidate views --------------------------------------------------------

    def _candidate_views(
        self, query: ast.QueryExpr, session: SessionContext
    ) -> list[CandidateView]:
        from repro.authviews.views import AuthorizationView

        # Prune on the raw stored definitions BEFORE instantiation — the
        # whole point of the §5.6 optimization is to avoid per-view work
        # for views that cannot participate.
        granted = [
            view_def
            for view_def in self.db.catalog.views()
            if view_def.authorization
            and self.db.grants.is_granted(view_def.name, session.user)
        ]
        self.views_considered = len(granted)
        if self.use_pruning:
            granted = prune_views(granted, query)
        self.views_pruned = self.views_considered - len(granted)

        candidates: list[CandidateView] = []
        for view_def in granted:
            try:
                instantiated = AuthorizationView.from_def(view_def).instantiate(
                    session
                )
            except ReproError:
                continue
            candidate = self._blockify_view(instantiated, session)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _blockify_view(
        self, instantiated: InstantiatedView, session: SessionContext
    ) -> Optional[CandidateView]:
        translator = Translator(
            self.db.catalog,
            param_values=session.param_values(),
            view_filter=lambda v: not v.authorization,  # no view nesting
            allow_access_params=True,
        )
        try:
            plan = translator.translate(instantiated.query)
        except ReproError:
            return None
        column_names = instantiated.definition.column_names
        if column_names:
            if len(column_names) != len(plan.columns):
                return None
            plan = ops.Project(
                plan,
                tuple(
                    (col.ref(), name)
                    for col, name in zip(plan.columns, column_names)
                ),
            )
        builder = BlockBuilder()
        block = builder.to_query_form(plan)
        if block is None:
            return None
        if isinstance(block, SPJBlock) and any(
            t.kind != "table" for t in block.tables
        ):
            return None
        output_names = tuple(c.name for c in plan.columns)
        if isinstance(block, SPJBlock) and len(block.outputs) != len(output_names):
            return None
        return CandidateView(
            name=instantiated.name, block=block, output_names=output_names
        )

    # -- plan-level recursion (rules U2/C2 over query structure) ---------------------

    def _rewrite_plan(
        self, plan: ops.Operator, matcher: BlockMatcher, depth: int
    ) -> Optional[Rewriting]:
        if depth > self.max_depth:
            return None

        if isinstance(plan, ops.SetOperation):
            left = self._rewrite_plan(plan.left, matcher, depth + 1)
            if left is None:
                return None
            right = self._rewrite_plan(plan.right, matcher, depth + 1)
            if right is None:
                return None
            return Rewriting(
                witness=ops.SetOperation(plan.op, plan.all, left.witness, right.witness),
                conditional=left.conditional or right.conditional,
                trace=left.trace
                + right.trace
                + [RuleApplication("U2", f"{plan.op} of valid queries")],
                views_used=tuple(
                    dict.fromkeys(left.views_used + right.views_used)
                ),
                probes_executed=left.probes_executed + right.probes_executed,
            )
        if isinstance(plan, ops.Sort):
            child = self._rewrite_plan(plan.child, matcher, depth)
            if child is None:
                return None
            return Rewriting(
                witness=ops.Sort(child.witness, plan.keys),
                conditional=child.conditional,
                trace=child.trace,
                views_used=child.views_used,
                probes_executed=child.probes_executed,
            )
        if isinstance(plan, ops.Limit):
            child = self._rewrite_plan(plan.child, matcher, depth)
            if child is None:
                return None
            return Rewriting(
                witness=ops.Limit(child.witness, plan.limit, plan.offset),
                conditional=child.conditional,
                trace=child.trace
                + [RuleApplication("U2", "LIMIT over a valid query")],
                views_used=child.views_used,
                probes_executed=child.probes_executed,
            )

        builder = BlockBuilder(ctx=matcher.ctx)
        agg = builder.to_agg(plan)
        if agg is not None:
            return matcher.match_agg(agg)
        spj = BlockBuilder(ctx=matcher.ctx).to_spj(plan)
        if spj is not None and not self._is_nonprogress(spj, plan):
            return matcher.match_spj(spj)
        return None

    @staticmethod
    def _is_nonprogress(block: SPJBlock, plan: ops.Operator) -> bool:
        """Guard against a block that just wraps the whole plan opaquely."""
        return (
            len(block.tables) == 1
            and block.tables[0].kind == "opaque"
            and block.tables[0].subplan is plan
        )

    # -- callbacks for the matcher -----------------------------------------------

    def _subcheck(
        self, plan: ops.Operator, matcher: BlockMatcher, depth_box
    ) -> Optional[Rewriting]:
        if depth_box[0] >= self.max_depth:
            return None
        depth_box[0] += 1
        try:
            return self._rewrite_plan(plan, matcher, depth=depth_box[0])
        finally:
            depth_box[0] -= 1

    def _run_probe(
        self, plan: ops.Operator, session: SessionContext, ctx=None
    ) -> bool:
        result = self.db.run_plan(plan, session, ctx=ctx)
        return len(result.rows) > 0
