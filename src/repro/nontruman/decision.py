"""Validity decisions and derivation traces."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra import ops


class Validity(enum.Enum):
    """Outcome of the Non-Truman validity test (paper Definitions 4.1/4.3)."""

    UNCONDITIONAL = "unconditional"
    CONDITIONAL = "conditional"
    INVALID = "invalid"


@dataclass
class RuleApplication:
    """One step in the derivation trace: which inference rule fired."""

    rule: str  # "U1", "U2", "U3a", "U3b", "U3c", "C1", "C2", "C3a", "C3b"
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}" if self.detail else self.rule


@dataclass
class ValidityDecision:
    """Result of checking one query.

    ``witness`` is a logical plan over authorization-view scans
    (:class:`~repro.algebra.ops.ViewRel` leaves) that is equivalent to
    the checked query — on all database states for UNCONDITIONAL, on all
    PA-equivalent states for CONDITIONAL.  Soundness tests execute the
    witness and compare with the original query's result.
    """

    validity: Validity
    reason: str = ""
    witness: Optional[ops.Operator] = None
    trace: list[RuleApplication] = field(default_factory=list)
    #: names of authorization views the witness depends on
    views_used: tuple[str, ...] = ()
    #: number of database-state probes executed (C3 rules)
    probes_executed: int = 0
    #: True when the decision was served from the validity cache
    from_cache: bool = False

    @property
    def valid(self) -> bool:
        return self.validity is not Validity.INVALID

    @property
    def unconditional(self) -> bool:
        return self.validity is Validity.UNCONDITIONAL

    @property
    def conditional(self) -> bool:
        return self.validity is Validity.CONDITIONAL

    def describe(self) -> str:
        lines = [f"validity: {self.validity.value}"]
        if self.reason:
            lines.append(f"reason: {self.reason}")
        if self.views_used:
            lines.append("views used: " + ", ".join(self.views_used))
        for step in self.trace:
            lines.append(f"  - {step}")
        return "\n".join(lines)
