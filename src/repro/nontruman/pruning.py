"""Relevance pruning of authorization views (paper Section 5.6).

"Given a query, we can eliminate authorization views that cannot
possibly be of use in validating the query."  A view is *relevant* only
if it mentions at least one relation the query mentions: a view over
disjoint relations can never cover a query table instance.  The test
runs on raw ASTs, before the (comparatively expensive) translation and
block conversion of the view body — that is the point of the
optimization, measured by experiment E3.
"""

from __future__ import annotations

from repro.sql import ast


def relation_names(query: ast.QueryExpr) -> set[str]:
    """Lower-cased names of all relations referenced in FROM clauses."""
    names: set[str] = set()
    _collect_query(query, names)
    return names


def _collect_query(query: ast.QueryExpr, names: set[str]) -> None:
    if isinstance(query, ast.SetOp):
        _collect_query(query.left, names)
        _collect_query(query.right, names)
        return
    assert isinstance(query, ast.SelectStmt)
    for item in query.from_items:
        _collect_table(item, names)
    # IN/EXISTS subqueries in WHERE also reference relations.
    if query.where is not None:
        for node in ast.walk_expr(query.where):
            if isinstance(node, (ast.InSubquery, ast.ExistsSubquery)):
                _collect_query(node.query, names)


def _collect_table(table_expr: ast.TableExpr, names: set[str]) -> None:
    if isinstance(table_expr, ast.TableRef):
        names.add(table_expr.name.lower())
    elif isinstance(table_expr, ast.SubqueryRef):
        _collect_query(table_expr.query, names)
    elif isinstance(table_expr, ast.JoinRef):
        _collect_table(table_expr.left, names)
        _collect_table(table_expr.right, names)


def is_relevant(view_query: ast.QueryExpr, query_relations: set[str]) -> bool:
    """Can this view possibly participate in a rewriting of the query?"""
    return bool(relation_names(view_query) & query_relations)


def prune_views(instantiated_views, query: ast.QueryExpr):
    """Filter a list of InstantiatedView to those relevant to ``query``.

    Relevance is computed as a fixpoint: a view touching a relation of
    the query is relevant, and the *other* relations of relevant views
    join the target set — those are exactly the relations that C3 probe
    queries (rule C3a condition 3) may need to validate against further
    views (e.g. ``MyRegistrations`` validating the probe on
    ``Registered`` raised by ``CoStudentGrades``, Example 4.4).
    """
    target = relation_names(query)
    view_relations = {
        iv.name: relation_names(iv.query) for iv in instantiated_views
    }
    relevant: dict[str, object] = {}
    changed = True
    while changed:
        changed = False
        for iv in instantiated_views:
            if iv.name in relevant:
                continue
            names = view_relations[iv.name]
            if iv.name.lower() in target or names & target:
                relevant[iv.name] = iv
                target |= names
                changed = True
    return list(relevant.values())
