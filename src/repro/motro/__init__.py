"""Motro's annotated-partial-answer model (paper §7 related work)."""

from repro.motro.model import AnnotatedResult, MotroRewriter, motro_query

__all__ = ["AnnotatedResult", "MotroRewriter", "motro_query"]
