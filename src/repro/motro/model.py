"""Motro's access-control model [20], as described in paper §7.

"In the model proposed by Motro, depending on the authorization, the
user may get only a part of the answer to a query; however, unlike with
the Oracle VPD model, instead of just getting a partial answer, the
user also gets a description indicating in what way the answer is
partial (e.g., 'only grades of user-id 11 have been returned')."

The paper also records the model's limits, which this implementation
honors: "only conjunctive queries/views are handled ... set difference
and aggregation can turn a partial answer into an incorrect answer."

Concretely:

* the query must be select-project-join (optionally DISTINCT/ORDER
  BY/LIMIT); aggregates and set operations are refused with an
  explanatory error rather than mis-answered;
* each base table is restricted to the union of the user's
  *whole-row selection views* over it (views of shape
  ``select * from T where P``, instantiated for the session); the
  applied restriction is reported as a human-readable annotation;
* a table with no such view contributes no rows, annotated accordingly.

This third model completes the comparative story: VPD/Truman modify
silently, Motro modifies *and tells you*, Non-Truman never modifies.
Benchmark E11 contrasts the three on a shared workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import UnsupportedFeatureError
from repro.sql import ast, parse_statement, render
from repro.sql.render import _render_expr
from repro.algebra import expr as exprs
from repro.authviews.session import SessionContext
from repro.authviews.views import AuthorizationView
from repro.db import Result

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class AnnotatedResult(Result):
    """A (possibly partial) answer plus Motro-style annotations."""

    annotations: list[str] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        return bool(self.annotations)

    def describe(self) -> str:
        lines = [f"{len(self.rows)} row(s)"]
        for note in self.annotations:
            lines.append(f"  * {note}")
        return "\n".join(lines)


class MotroRewriter:
    """Restricts a query to the user's authorized fragments, with notes."""

    def __init__(self, db: "Database", session: SessionContext):
        self.db = db
        self.session = session
        self.annotations: list[str] = []

    # ------------------------------------------------------------------

    def restrict(self, query: ast.QueryExpr) -> ast.QueryExpr:
        if isinstance(query, ast.SetOp):
            raise UnsupportedFeatureError(
                "Motro's model handles conjunctive queries only; a set "
                "operation could turn a partial answer into an incorrect one"
            )
        assert isinstance(query, ast.SelectStmt)
        self._reject_non_conjunctive(query)
        new_from = tuple(
            self._restrict_table(item) for item in query.from_items
        )
        return ast.SelectStmt(
            items=query.items,
            from_items=new_from,
            where=query.where,
            group_by=query.group_by,
            having=query.having,
            distinct=query.distinct,
            order_by=query.order_by,
            limit=query.limit,
            offset=query.offset,
        )

    def _reject_non_conjunctive(self, stmt: ast.SelectStmt) -> None:
        if stmt.group_by or stmt.having is not None:
            raise UnsupportedFeatureError(
                "Motro's model cannot return partial aggregates: "
                "an aggregate over a partial answer is an incorrect answer"
            )
        for item in stmt.items:
            if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(
                item.expr
            ):
                raise UnsupportedFeatureError(
                    "Motro's model cannot return partial aggregates"
                )
        if stmt.where is not None:
            for node in ast.walk_expr(stmt.where):
                if isinstance(node, (ast.InSubquery, ast.ExistsSubquery)):
                    raise UnsupportedFeatureError(
                        "Motro's model handles conjunctive queries only"
                    )

    # ------------------------------------------------------------------

    def _restrict_table(self, table_expr: ast.TableExpr) -> ast.TableExpr:
        if isinstance(table_expr, ast.JoinRef):
            if table_expr.kind != "inner":
                raise UnsupportedFeatureError(
                    "Motro's model handles conjunctive queries only"
                )
            return ast.JoinRef(
                self._restrict_table(table_expr.left),
                self._restrict_table(table_expr.right),
                table_expr.kind,
                table_expr.condition,
            )
        if isinstance(table_expr, ast.SubqueryRef):
            raise UnsupportedFeatureError(
                "Motro's model handles conjunctive queries only"
            )
        assert isinstance(table_expr, ast.TableRef)
        if not self.db.catalog.has_table(table_expr.name):
            return table_expr  # view references pass through

        predicate, note = self._authorized_predicate(table_expr.name)
        binding = table_expr.binding_name
        self.annotations.append(f"{binding}: {note}")
        restricted = ast.SelectStmt(
            items=(ast.SelectItem(ast.Star()),),
            from_items=(ast.TableRef(table_expr.name),),
            where=predicate,
        )
        return ast.SubqueryRef(query=restricted, alias=binding)

    def _authorized_predicate(
        self, table: str
    ) -> tuple[Optional[ast.Expr], str]:
        """The disjunction of the user's whole-row selection views on
        ``table``, plus the annotation text."""
        schema = self.db.catalog.table(table)
        fragments: list[ast.Expr] = []
        notes: list[str] = []
        for view_def in self.db.catalog.views():
            if not view_def.authorization:
                continue
            if not self.db.grants.is_granted(view_def.name, self.session.user):
                continue
            shape = self._selection_view_shape(view_def, schema)
            if shape is None:
                continue
            predicate, unrestricted = shape
            if unrestricted:
                return None, f"all rows of {table} are authorized"
            fragments.append(predicate)
            notes.append(_render_expr(predicate))
        if not fragments:
            return (
                ast.Literal(False),
                f"no rows of {table} are authorized for this session",
            )
        disjunction = fragments[0]
        for fragment in fragments[1:]:
            disjunction = ast.BinaryOp("or", disjunction, fragment)
        return (
            disjunction,
            f"only rows of {table} satisfying {' OR '.join(notes)} are returned",
        )

    def _selection_view_shape(self, view_def, schema):
        """Match ``select * from T where P`` (whole-row selection view).

        Returns (instantiated predicate, unrestricted?) or None.
        """
        query = view_def.query
        if not isinstance(query, ast.SelectStmt):
            return None
        if query.group_by or query.having or query.distinct:
            return None
        if len(query.from_items) != 1 or not isinstance(
            query.from_items[0], ast.TableRef
        ):
            return None
        if query.from_items[0].name.lower() != schema.name.lower():
            return None
        # must expose every column (star, or all columns listed)
        if len(query.items) == 1 and isinstance(query.items[0].expr, ast.Star):
            exposes_all = True
        else:
            named = [
                item.expr.name.lower()
                for item in query.items
                if isinstance(item.expr, ast.ColumnRef)
            ]
            exposes_all = set(named) >= {
                c.lower() for c in schema.column_names
            }
        if not exposes_all:
            return None
        if query.where is None:
            return None, True
        predicate = exprs.substitute_params(
            query.where, self.session.param_values()
        )
        if exprs.params_in(predicate) or exprs.access_params_in(predicate):
            return None  # access-pattern views are not selection fragments
        binding = query.from_items[0].binding_name

        def strip_binding(node: ast.Expr):
            if isinstance(node, ast.ColumnRef) and node.table is not None:
                if node.table.lower() in (binding.lower(), schema.name.lower()):
                    return ast.ColumnRef(None, node.name)
            return None

        return exprs.transform(predicate, strip_binding), False


def motro_query(db: "Database", sql, session: SessionContext) -> AnnotatedResult:
    """Answer ``sql`` with Motro's annotated-partial-answer semantics."""
    query = parse_statement(sql) if isinstance(sql, str) else sql
    if not isinstance(query, ast.QueryExpr):
        raise UnsupportedFeatureError("motro_query expects a SELECT statement")
    rewriter = MotroRewriter(db, session)
    restricted = rewriter.restrict(query)
    result = db.execute_query(restricted, session=session, mode="open")
    return AnnotatedResult(
        columns=result.columns,
        rows=result.rows,
        annotations=rewriter.annotations,
    )
