"""Benchmark harness utilities: experiment runners and table reporting."""

from repro.bench.harness import Experiment, Measurement, time_callable
from repro.bench.reporting import format_table, print_experiment_header

__all__ = [
    "Experiment",
    "Measurement",
    "time_callable",
    "format_table",
    "print_experiment_header",
]
