"""Experiment harness.

Each benchmark module (``benchmarks/bench_e*.py``) builds an
:class:`Experiment`, adds :class:`Measurement` rows, and prints the
resulting table — the series the corresponding figure/claim in
EXPERIMENTS.md reports.  pytest-benchmark handles the per-operation
timing; this harness handles the derived quantities (counts, ratios,
acceptance rates) that timing alone does not capture.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class Measurement:
    """One row of an experiment table."""

    label: str
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class Experiment:
    """A named experiment accumulating measurement rows."""

    id: str
    title: str
    claim: str  # the paper claim/figure this experiment operationalizes
    rows: list[Measurement] = field(default_factory=list)

    def add(self, label: str, **values: object) -> Measurement:
        row = Measurement(label, values)
        self.rows.append(row)
        return row

    def columns(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row.values:
                seen.setdefault(key)
        return list(seen)

    def to_json_dict(self) -> dict:
        """Machine-readable form of the experiment table.

        The shape is stable and diffable across PRs (``BENCH_<id>.json``):
        column order is the first-seen order, every row carries its
        label under ``"case"``, and values stay whatever JSON scalar the
        benchmark recorded (numbers are not re-rounded here).
        """
        return {
            "id": self.id,
            "title": self.title,
            "claim": self.claim,
            "columns": ["case"] + self.columns(),
            "rows": [
                {"case": row.label, **row.values} for row in self.rows
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            self.to_json_dict(), indent=indent, default=str, sort_keys=False
        ) + "\n"

    def write_json(self, path) -> None:
        """Write ``BENCH_<id>.json``-style output to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def report(self) -> str:
        from repro.bench.reporting import format_table

        header = [
            f"== {self.id}: {self.title} ==",
            f"   paper claim: {self.claim}",
        ]
        columns = ["case"] + self.columns()
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [row.label] + [row.values.get(c, "") for c in self.columns()]
            )
        return "\n".join(header) + "\n" + format_table(columns, table_rows)


def time_callable(
    fn: Callable[[], object],
    repeat: int = 5,
    warmup: int = 1,
) -> tuple[float, float]:
    """(median, stdev) wall-clock seconds of ``fn`` over ``repeat`` runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    median = statistics.median(samples)
    stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return median, stdev
