"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Iterable


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: list[str], rows: Iterable[list[object]]) -> str:
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_experiment_header(experiment_id: str, title: str) -> None:
    print()
    print(f"===== {experiment_id}: {title} =====")
