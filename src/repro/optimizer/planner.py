"""Volcano optimizer facade: optimization + DAG-based validity checking.

Ties together memo construction, rule-based expansion, view
unification, validity marking (§5.6.2), and cost-based plan extraction.
Used by experiments E1 (Figure 1 DAG statistics) and E2 (marking
overhead) and cross-checked against the block-based checker in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.algebra import ops
from repro.optimizer.cost import CostModel, PlanChoice, best_plan
from repro.optimizer.dag import Memo, insert_plan
from repro.optimizer.expand import expand_memo
from repro.optimizer.marking import mark_validity


@dataclass
class DagStatistics:
    """Shape of an expanded AND-OR DAG (Figure 1 quantities)."""

    eq_nodes: int
    op_nodes: int
    plans: int
    merges: int
    expansion_passes: int


@dataclass
class OptimizeResult:
    plan: PlanChoice
    statistics: DagStatistics
    optimize_seconds: float


@dataclass
class DagValidityResult:
    valid: bool
    statistics: DagStatistics
    marking_seconds: float
    total_seconds: float
    valid_eq_nodes: int


class VolcanoOptimizer:
    """A small Volcano: expand, unify, mark, extract."""

    def __init__(
        self,
        row_count: Callable[[str], int],
        max_operations: int = 50000,
        enable_subsumption: bool = True,
        distinct_count=None,
    ):
        """``distinct_count(table, column)`` (e.g. from TableStatistics)
        refines the cost model's selectivity estimates."""
        self.row_count = row_count
        self.max_operations = max_operations
        self.enable_subsumption = enable_subsumption
        self.distinct_count = distinct_count

    def _statistics(self, memo: Memo, root: int, passes: int) -> DagStatistics:
        return DagStatistics(
            eq_nodes=memo.eq_count,
            op_nodes=memo.op_count,
            plans=memo.plan_count(root),
            merges=memo.merges,
            expansion_passes=passes,
        )

    # -- plain optimization -----------------------------------------------------

    def optimize(self, plan: ops.Operator) -> OptimizeResult:
        started = time.perf_counter()
        memo = Memo()
        root = insert_plan(memo, plan)
        passes = expand_memo(
            memo,
            max_operations=self.max_operations,
            enable_subsumption=self.enable_subsumption,
        )
        model = CostModel(self.row_count, self.distinct_count)
        choice = best_plan(memo, root, model)
        elapsed = time.perf_counter() - started
        return OptimizeResult(
            plan=choice,
            statistics=self._statistics(memo, root, passes),
            optimize_seconds=elapsed,
        )

    def expand_only(
        self, plan: ops.Operator, joins_only: bool = False
    ) -> tuple[Memo, int, DagStatistics]:
        """Insert + expand without costing; used by experiment E1.

        ``joins_only=True`` restricts expansion to join commutativity
        and associativity — the Figure 1 join-order memo, tractable to
        larger relation counts."""
        memo = Memo()
        root = insert_plan(memo, plan)
        passes = expand_memo(
            memo,
            max_operations=self.max_operations,
            enable_subsumption=self.enable_subsumption and not joins_only,
            enable_select_rules=not joins_only,
        )
        return memo, root, self._statistics(memo, root, passes)

    # -- validity checking (§5.6.2) -------------------------------------------------

    def check_validity(
        self,
        query_plan: ops.Operator,
        view_plans: list[ops.Operator],
        expand_views: bool = False,
    ) -> DagValidityResult:
        """Basic-rule (U1/U2) validity via DAG marking.

        Per the paper, the basic rules do not require equivalence rules
        to be applied to the views — their unexpanded DAGs are unified
        with the expanded query DAG (``expand_views=False``).  The
        complex-rule experiments set ``expand_views=True`` to measure
        the extra cost the paper anticipates.
        """
        from repro.optimizer.expand import Expander

        started = time.perf_counter()
        memo = Memo()
        query_root = insert_plan(memo, query_plan)
        expand_memo(
            memo,
            max_operations=self.max_operations,
            enable_subsumption=self.enable_subsumption,
        )
        view_roots = [insert_plan(memo, vp) for vp in view_plans]
        if expand_views:
            passes = expand_memo(
                memo,
                max_operations=self.max_operations,
                enable_subsumption=self.enable_subsumption,
            )
        else:
            # §5.6.2: the views' DAGs are unified UNEXPANDED; only the
            # subsumption derivations run so that view roots differing
            # from query subexpressions by a weaker selection / wider
            # projection still connect.
            expander = Expander(memo, max_operations=self.max_operations)
            passes = (
                expander.subsumption_pass() if self.enable_subsumption else 0
            )
        mark_started = time.perf_counter()
        valid_count = mark_validity(memo, view_roots)
        finished = time.perf_counter()
        return DagValidityResult(
            valid=memo.node(query_root).valid,
            statistics=self._statistics(memo, query_root, passes),
            marking_seconds=finished - mark_started,
            total_seconds=finished - started,
            valid_eq_nodes=valid_count,
        )
