"""DAG expansion: transformation rules applied to a fixpoint (§5.6.1).

Implemented rules:

* **join commutativity** — ``A ⋈ B → B ⋈ A``;
* **join associativity** — ``(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)`` with predicate
  conjuncts redistributed by the binding sets they reference;
* **select-join merge** — ``σ_P(A ⋈_J B) → A ⋈_{J∧P} B``;
* **join-split pushdown** — conjuncts referencing one side only are
  pushed into a selection below the join;
* **select-select collapse** — ``σ_P(σ_Q(E)) → σ_{P∧Q}(E)``;
* **subsumption derivations** ([25], §5.6.1) — ``σ_P(E)`` computable
  from ``σ_Q(E)`` when P ⇒ Q, and ``π_A(E)`` from ``π_B(E)`` when A ⊆ B;
  these let a query's stronger selection or narrower projection be
  derived from a view's weaker/wider one.

Rules only ever *add* operations (possibly merging equivalence nodes via
hash-consing), so a fixpoint exists; a node budget guards pathological
blowup.
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast
from repro.sql.parser import Parser
from repro.algebra import expr as exprs
from repro.algebra.implication import PredicateTheory
from repro.optimizer.dag import Memo, OpNode


def _pred_bindings(params: tuple) -> set[str]:
    names: set[str] = set()
    for conj in params:
        names |= exprs.bindings_in(conj)
    return names


class Expander:
    """Applies transformation rules to a memo until fixpoint."""

    def __init__(self, memo: Memo, max_operations: int = 50000,
                 enable_subsumption: bool = True,
                 enable_select_rules: bool = True):
        """``enable_select_rules=False`` restricts expansion to join
        commutativity/associativity — the textbook join-order memo shown
        in Figure 1.  The full ruleset additionally moves selections
        around, which multiplies predicate placements and is only
        tractable for the small (≤ 4 relation) queries the validity
        checker sees."""
        self.memo = memo
        self.max_operations = max_operations
        self.enable_subsumption = enable_subsumption
        self.enable_select_rules = enable_select_rules
        self.iterations = 0
        #: eq root id -> binding names produced (for predicate routing)
        self._bindings: dict[int, frozenset[str]] = {}

    # -- binding bookkeeping --------------------------------------------------

    def bindings_of(self, eq_id: int) -> frozenset[str]:
        root = self.memo.find(eq_id)
        cached = self._bindings.get(root)
        if cached is not None:
            return cached
        node = self.memo.node(root)
        result: frozenset[str] = frozenset()
        for op in node.operations:
            if op.kind == "scan":
                result = frozenset({op.params[1]})
                break
            if op.kind == "viewscan":
                result = frozenset({op.params[1]})
                break
            if op.kind in ("join", "setop"):
                result = self.bindings_of(op.children[0]) | self.bindings_of(
                    op.children[1]
                )
                break
            if op.kind in ("select", "distinct", "semijoin", "dependentjoin"):
                result = self.bindings_of(op.children[0])
                break
            if op.kind in ("project", "aggregate"):
                result = self.bindings_of(op.children[0])
                break
        self._bindings[root] = result
        return result

    # -- main loop ----------------------------------------------------------------

    def subsumption_pass(self) -> int:
        """Apply only the subsumption derivations to a fixpoint.

        Used after unifying (unexpanded) view DAGs with an
        already-expanded query DAG — per §5.6.2 the basic rules do not
        require equivalence rules to be applied to the views, only the
        derivations that let a query node be computed from a view node.
        """
        passes = 0
        changed = True
        while changed and self.memo.op_count < self.max_operations:
            passes += 1
            before = self.memo.op_count + self.memo.merges
            self._apply_subsumption()
            changed = self.memo.op_count + self.memo.merges != before
        return passes

    def expand(self) -> int:
        """Run to fixpoint; returns the number of passes."""
        changed = True
        while changed and self.memo.op_count < self.max_operations:
            changed = False
            self.iterations += 1
            self._bindings.clear()
            for eq_id, op in list(self.memo.operations()):
                if self.memo.op_count >= self.max_operations:
                    break
                eq_root = self.memo.find(eq_id)
                before = self.memo.op_count + self.memo.merges
                self._apply_rules(eq_root, op)
                if self.memo.op_count + self.memo.merges != before:
                    changed = True
            if self.enable_subsumption:
                before = self.memo.op_count + self.memo.merges
                self._apply_subsumption()
                if self.memo.op_count + self.memo.merges != before:
                    changed = True
        return self.iterations

    # -- individual rules -------------------------------------------------------------

    def _apply_rules(self, eq_root: int, op: OpNode) -> None:
        if op.kind == "join":
            self._join_commutativity(eq_root, op)
            self._join_associativity(eq_root, op)
            if self.enable_select_rules:
                self._join_split(eq_root, op)
        elif op.kind == "select" and self.enable_select_rules:
            self._select_join_merge(eq_root, op)
            self._select_select(eq_root, op)
        elif op.kind == "project" and self.enable_select_rules:
            self._select_pull_through_project(eq_root, op)

    def _join_commutativity(self, eq_root: int, op: OpNode) -> None:
        kind, params = op.params
        if kind not in ("inner", "cross"):
            return
        self.memo.add_operation(
            "join", op.params, (op.children[1], op.children[0]), target_eq=eq_root
        )

    def _join_associativity(self, eq_root: int, op: OpNode) -> None:
        """(A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C), redistributing conjuncts."""
        kind, outer_pred = op.params
        if kind not in ("inner", "cross"):
            return
        left_eq, right_eq = op.children
        left_node = self.memo.node(left_eq)
        for child_op in list(left_node.operations):
            if child_op.kind != "join":
                continue
            inner_kind, inner_pred = child_op.params
            if inner_kind not in ("inner", "cross"):
                continue
            eq_a, eq_b = child_op.children
            all_conjuncts = tuple(outer_pred) + tuple(inner_pred)
            b_bind = self.bindings_of(eq_b)
            c_bind = self.bindings_of(right_eq)
            a_bind = self.bindings_of(eq_a)
            bc_pred = []
            rest_pred = []
            for conj in all_conjuncts:
                refs = exprs.bindings_in(conj)
                if refs <= (b_bind | c_bind) and refs & c_bind:
                    bc_pred.append(conj)
                else:
                    rest_pred.append(conj)
            bc_kind = "inner" if bc_pred else "cross"
            bc_eq = self.memo.add_operation(
                "join",
                (bc_kind, tuple(sorted(bc_pred, key=repr))),
                (eq_b, right_eq),
            )
            new_kind = "inner" if rest_pred else "cross"
            self.memo.add_operation(
                "join",
                (new_kind, tuple(sorted(rest_pred, key=repr))),
                (eq_a, bc_eq),
                target_eq=eq_root,
            )

    def _join_split(self, eq_root: int, op: OpNode) -> None:
        """Push single-side conjuncts below the join."""
        kind, pred = op.params
        if kind != "inner" or not pred:
            return
        left_eq, right_eq = op.children
        left_bind = self.bindings_of(left_eq)
        right_bind = self.bindings_of(right_eq)
        left_only, right_only, cross = exprs.split_join_predicate(
            pred, set(left_bind), set(right_bind)
        )
        if not left_only and not right_only:
            return
        new_left = left_eq
        if left_only:
            new_left = self.memo.add_operation(
                "select", tuple(sorted(left_only, key=repr)), (left_eq,)
            )
        new_right = right_eq
        if right_only:
            new_right = self.memo.add_operation(
                "select", tuple(sorted(right_only, key=repr)), (right_eq,)
            )
        new_kind = "inner" if cross else "cross"
        self.memo.add_operation(
            "join",
            (new_kind, tuple(sorted(cross, key=repr))),
            (new_left, new_right),
            target_eq=eq_root,
        )

    def _select_join_merge(self, eq_root: int, op: OpNode) -> None:
        """σ_P(A ⋈_J B) → A ⋈_{J∧P} B in the same equivalence node."""
        pred = op.params
        child_node = self.memo.node(op.children[0])
        for child_op in list(child_node.operations):
            if child_op.kind != "join":
                continue
            kind, join_pred = child_op.params
            if kind not in ("inner", "cross"):
                continue
            combined = tuple(sorted(set(join_pred) | set(pred), key=repr))
            self.memo.add_operation(
                "join", ("inner", combined), child_op.children, target_eq=eq_root
            )

    def _select_select(self, eq_root: int, op: OpNode) -> None:
        """σ_P(σ_Q(E)) → σ_{P∧Q}(E)."""
        pred = op.params
        child_node = self.memo.node(op.children[0])
        for child_op in list(child_node.operations):
            if child_op.kind != "select":
                continue
            combined = tuple(sorted(set(pred) | set(child_op.params), key=repr))
            self.memo.add_operation(
                "select", combined, child_op.children, target_eq=eq_root
            )

    def _select_pull_through_project(self, eq_root: int, op: OpNode) -> None:
        """π_B(σ_P(Z)) → π_B(σ_P'(π_{B∪cols(P)}(Z))).

        Pulling the selection above a widened projection lets the inner
        projection unify (via π-subset subsumption) with a view that
        projects more columns under a weaker predicate — the composite
        needed for ``σ stronger-than-view`` rewritings.
        """
        (pairs,) = op.params
        cols_b = self._column_project(op)
        if cols_b is None:
            return
        child_node = self.memo.node(op.children[0])
        for child_op in list(child_node.operations):
            if child_op.kind != "select":
                continue
            pred = child_op.params
            pred_cols = set()
            for conj in pred:
                pred_cols |= exprs.columns_in(conj)
            if any(c.table is None for c in pred_cols):
                return
            extended = list(cols_b)
            name_of: dict[ast.ColumnRef, str] = {
                expr: name for expr, name in cols_b
            }
            for col in sorted(pred_cols, key=str):
                if col not in name_of:
                    fresh = f"_s{len(extended)}"
                    extended.append((col, fresh))
                    name_of[col] = fresh
            inner_proj = self.memo.add_operation(
                "project", (tuple(extended),), (child_op.children[0],)
            )
            renamed_pred = tuple(
                sorted(
                    (
                        exprs.substitute_columns(
                            conj,
                            {c: ast.ColumnRef(None, name_of[c]) for c in pred_cols},
                        )
                        for conj in pred
                    ),
                    key=repr,
                )
            )
            sel = self.memo.add_operation("select", renamed_pred, (inner_proj,))
            outer = tuple(
                (ast.ColumnRef(None, name), name) for _, name in cols_b
            )
            self.memo.add_operation(
                "project", (outer,), (sel,), target_eq=eq_root
            )

    # -- subsumption ([25]) ---------------------------------------------------------------

    def _apply_subsumption(self) -> None:
        """σ_P(E) from σ_Q(E) when P ⇒ Q; π_A(E) from π_B(E) when A ⊆ B."""
        selects: dict[int, list[tuple[int, OpNode]]] = {}
        projects: dict[int, list[tuple[int, OpNode]]] = {}
        for eq_id, op in self.memo.operations():
            root = self.memo.find(eq_id)
            if op.kind == "select":
                selects.setdefault(self.memo.find(op.children[0]), []).append(
                    (root, op)
                )
            elif op.kind == "project":
                projects.setdefault(self.memo.find(op.children[0]), []).append(
                    (root, op)
                )

        for child, group in selects.items():
            if len(group) < 2:
                continue
            for i, (eq_p, op_p) in enumerate(group):
                theory = PredicateTheory(op_p.params)
                for j, (eq_q, op_q) in enumerate(group):
                    if i == j or eq_p == eq_q:
                        continue
                    if all(theory.entails(c) for c in op_q.params):
                        # P ⇒ Q: evaluate σ_P over the σ_Q result.
                        q_result_eq = eq_q
                        self.memo.add_operation(
                            "select", op_p.params, (q_result_eq,), target_eq=eq_p
                        )

        for child, group in projects.items():
            if len(group) < 2:
                continue
            for i, (eq_a, op_a) in enumerate(group):
                cols_a = self._column_project(op_a)
                if cols_a is None:
                    continue
                for j, (eq_b, op_b) in enumerate(group):
                    if i == j or eq_a == eq_b:
                        continue
                    cols_b = self._column_project(op_b)
                    if cols_b is None:
                        continue
                    mapping = dict(cols_b)
                    if all(expr in mapping for expr, _ in cols_a):
                        renamed = tuple(
                            (ast.ColumnRef(None, mapping[expr]), name)
                            for expr, name in cols_a
                        )
                        self.memo.add_operation(
                            "project", (renamed,), (eq_b,), target_eq=eq_a
                        )

    @staticmethod
    def _column_project(op: OpNode) -> Optional[list[tuple[ast.Expr, str]]]:
        """(expr, name) pairs if the project is column-only."""
        (pairs,) = op.params
        result = []
        for expr, name in pairs:
            if not isinstance(expr, ast.ColumnRef):
                return None
            result.append((expr, name))
        return result


def expand_memo(memo: Memo, max_operations: int = 50000,
                enable_subsumption: bool = True,
                enable_select_rules: bool = True) -> int:
    """Expand ``memo`` to fixpoint; returns the number of passes."""
    return Expander(
        memo,
        max_operations=max_operations,
        enable_subsumption=enable_subsumption,
        enable_select_rules=enable_select_rules,
    ).expand()
