"""Volcano-style optimizer with AND-OR DAG validity marking (paper §5.6).

The paper describes validity testing inside a Volcano [13] optimizer
extended with the multi-query-optimization unification of [25]:

* queries and views are inserted into one **AND-OR DAG** — rectangular
  *equivalence nodes* (OR: any child computes the result) over circular
  *operation nodes* (AND: all children needed);
* transformation rules (join commutativity/associativity, selection
  push/pull, subsumption derivations) expand the DAG to a fixpoint;
* hash-consing of operation signatures *unifies* common subexpressions,
  so a view equivalent to a query subexpression lands in the same
  equivalence node;
* the basic inference rules U1/U2 become a bottom-up **marking**: an
  equivalence node is valid if any child operation is valid; an
  operation node is valid if all its child equivalence nodes are valid
  (§5.6.2).

This package is the second, independent implementation of the basic
rules (the block matcher in :mod:`repro.nontruman.matching` is the
first); tests cross-check the two, and experiments E1/E2 measure DAG
growth (Figure 1) and marking overhead.
"""

from repro.optimizer.dag import Memo, EqNode, OpNode
from repro.optimizer.expand import expand_memo
from repro.optimizer.marking import mark_validity
from repro.optimizer.cost import best_plan, CostModel
from repro.optimizer.planner import VolcanoOptimizer, DagStatistics
from repro.optimizer.pushdown import (
    PushableEquality,
    ScanAnnotation,
    annotate_scan,
    split_pushable_equalities,
)

__all__ = [
    "Memo",
    "EqNode",
    "OpNode",
    "expand_memo",
    "mark_validity",
    "best_plan",
    "CostModel",
    "VolcanoOptimizer",
    "DagStatistics",
    "PushableEquality",
    "ScanAnnotation",
    "annotate_scan",
    "split_pushable_equalities",
]
