"""Cost model and best-plan extraction (Volcano's original purpose).

Cardinality estimation is deliberately textbook-simple — the
reproduction's claims are about *relative* plan quality (e.g. the
redundant joins Truman rewrites introduce, experiment E4), not absolute
estimates:

* scan: table row count (from a stats callback);
* selection: 10% per equality conjunct on a non-key column, exact 1-row
  for a pinned key, 30% per inequality;
* join: ``|L|·|R| / max(|L|,|R|)`` for equi-joins (primary-key-ish
  assumption), ``|L|·|R|`` for cross joins;
* distinct/aggregate: 10% of input; project: pass-through.

Operation costs follow a hash-join/hash-aggregate model: linear in the
inputs plus output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.optimizer.dag import Memo, OpNode


@dataclass
class PlanChoice:
    """Extracted best plan: chosen operation per equivalence node."""

    cost: float
    rows: float
    op: Optional[OpNode]
    children: tuple["PlanChoice", ...] = ()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.op is None:
            return f"{pad}<leaf>"
        head = (
            f"{pad}{self.op.kind}{list(self.op.params)[:1]} "
            f"(rows={self.rows:.0f}, cost={self.cost:.0f})"
        )
        lines = [head]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class CostModel:
    """Estimates cardinalities and costs over a memo.

    ``distinct_count(table, column) -> Optional[int]`` (e.g. from
    :class:`~repro.optimizer.statistics.TableStatistics`) refines
    equi-join and equality-selection selectivities; without it the
    model falls back to fixed textbook constants.
    """

    def __init__(
        self,
        row_count: Callable[[str], int],
        distinct_count: Optional[Callable[[str, str], Optional[int]]] = None,
    ):
        self.row_count = row_count
        self.distinct_count = distinct_count

    def _column_distinct(self, col) -> Optional[int]:
        """Distinct count for a canonical ``relname#k`` column ref."""
        if self.distinct_count is None or col.table is None:
            return None
        relation = col.table.split("#")[0]
        return self.distinct_count(relation, col.name)

    def estimate_rows(self, memo: Memo, eq_id: int, _seen=None) -> float:
        node = memo.node(eq_id)
        if node.rows is not None:
            return node.rows
        if _seen is None:
            _seen = set()
        if node.id in _seen:
            return 1.0
        _seen.add(node.id)
        best: Optional[float] = None
        for op in node.operations:
            rows = self._op_rows(memo, op, _seen)
            if best is None or rows < best:
                best = rows
        node.rows = best if best is not None else 1.0
        return node.rows

    def _op_rows(self, memo: Memo, op: OpNode, seen) -> float:
        if op.kind == "scan":
            return max(float(self.row_count(op.params[0])), 1.0)
        if op.kind == "viewscan":
            return max(float(self.row_count(op.params[0])), 1.0)
        child_rows = [self.estimate_rows(memo, c, seen) for c in op.children]
        if op.kind == "select":
            selectivity = 1.0
            for conj in op.params:
                selectivity *= self._conjunct_selectivity(conj)
            return max(child_rows[0] * selectivity, 1.0)
        if op.kind == "join":
            kind, pred = op.params
            product = child_rows[0] * child_rows[1]
            if not pred:
                return product
            selectivity = 1.0
            informed = False
            for conj in pred:
                estimate = self._equi_join_selectivity(conj)
                if estimate is not None:
                    selectivity *= estimate
                    informed = True
            if informed:
                return max(product * selectivity, 1.0)
            return max(product / max(child_rows[0], child_rows[1], 1.0), 1.0)
        if op.kind in ("distinct", "aggregate"):
            return max(child_rows[0] * 0.1, 1.0)
        if op.kind == "project":
            return child_rows[0]
        if op.kind == "setop":
            return child_rows[0] + child_rows[1]
        return child_rows[0] if child_rows else 1.0

    def _conjunct_selectivity(self, conj) -> float:
        from repro.sql import ast

        if (
            isinstance(conj, ast.BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.Literal)
        ):
            distinct = self._column_distinct(conj.left)
            if distinct:
                return 1.0 / distinct
        return 0.1

    def _equi_join_selectivity(self, conj) -> Optional[float]:
        from repro.sql import ast

        if not (
            isinstance(conj, ast.BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.ColumnRef)
        ):
            return None
        left = self._column_distinct(conj.left)
        right = self._column_distinct(conj.right)
        if left and right:
            return 1.0 / max(left, right)
        return None

    def op_cost(self, memo: Memo, op: OpNode) -> float:
        """Local processing cost (children's costs added separately)."""
        child_rows = [self.estimate_rows(memo, c) for c in op.children]
        out_rows = self._op_rows(memo, op, set())
        if op.kind in ("scan", "viewscan"):
            return out_rows
        if op.kind == "select":
            return child_rows[0]
        if op.kind == "join":
            return child_rows[0] + child_rows[1] + out_rows
        if op.kind in ("distinct", "aggregate", "project"):
            return child_rows[0]
        if op.kind == "setop":
            return child_rows[0] + child_rows[1]
        return sum(child_rows)


def best_plan(
    memo: Memo, eq_id: int, model: CostModel, _memo_table: Optional[dict] = None
) -> PlanChoice:
    """Volcano extraction: cheapest plan rooted at an equivalence node."""
    if _memo_table is None:
        _memo_table = {}
    root = memo.find(eq_id)
    if root in _memo_table:
        return _memo_table[root]
    # Cycle guard: give a provisional infinite cost during recursion.
    _memo_table[root] = PlanChoice(cost=float("inf"), rows=1.0, op=None)
    node = memo.node(root)
    best: Optional[PlanChoice] = None
    for op in node.operations:
        children = tuple(
            best_plan(memo, c, model, _memo_table) for c in op.children
        )
        if any(c.cost == float("inf") for c in children):
            continue
        cost = model.op_cost(memo, op) + sum(c.cost for c in children)
        if best is None or cost < best.cost:
            best = PlanChoice(
                cost=cost,
                rows=model.estimate_rows(memo, root),
                op=op,
                children=children,
            )
    result = best if best is not None else _memo_table[root]
    _memo_table[root] = result
    return result
