"""Bottom-up validity marking on the AND-OR DAG (paper §5.6.2).

Given the root equivalence nodes of the user's instantiated
authorization views (marked valid a priori — rule U1), the marking
propagates:

1. an equivalence node is valid if **any** of its operation children is
   valid;
2. an operation node is valid if **all** of its child equivalence nodes
   are valid (rule U2).

The query is unconditionally valid (per the basic rules) iff its root
equivalence node ends up marked.  The paper notes this misses some
rewritings (e.g. covers requiring a relation to be joined redundantly);
the block matcher is the more complete engine — tests cross-check the
two on the cases the DAG should find.
"""

from __future__ import annotations

from typing import Iterable

from repro.optimizer.dag import Memo


def mark_validity(memo: Memo, view_roots: Iterable[int]) -> int:
    """Mark valid nodes; returns the number of valid equivalence nodes.

    ``view_roots`` are the equivalence node ids of the authorization
    views' root expressions (after unification with the query DAG).
    """
    for root in view_roots:
        memo.node(root).valid = True

    changed = True
    passes = 0
    while changed:
        changed = False
        passes += 1
        for eq in memo.equivalence_nodes():
            for op in eq.operations:
                if op.valid:
                    continue
                if op.kind == "scan":
                    # A base-relation scan is never valid by itself —
                    # only through a view that covers it.
                    continue
                if op.kind == "viewscan":
                    # Rule U1: authorization-view scans are valid.
                    op.valid = True
                    changed = True
                    continue
                if op.children and all(memo.node(c).valid for c in op.children):
                    op.valid = True
                    changed = True
            if not eq.valid and any(op.valid for op in eq.operations):
                eq.valid = True
                changed = True
    return sum(1 for eq in memo.equivalence_nodes() if eq.valid)


def is_valid(memo: Memo, eq_id: int) -> bool:
    return memo.node(eq_id).valid
