"""Plan annotations for index-pushable selection conjuncts.

The vectorized batch executor (:mod:`repro.engine.vectorized`) wants to
turn ``σ_{col = literal}(Rel)`` into a :class:`repro.storage.HashIndex`
lookup instead of a full scan.  This module is the *analysis* half of
that optimization, kept in the optimizer layer so both executors (and
tests) can reason about pushability without duplicating predicate
plumbing:

* :func:`split_pushable_equalities` — partition a selection predicate
  over a base-table scan into single-column ``col = literal`` conjuncts
  (candidate index probes) and a residual predicate;
* :func:`annotate_scan` — combine the split with the physical question
  "does a single-column hash index on that column actually exist?" and
  produce a :class:`ScanAnnotation` naming the chosen probe.

Only *top-level conjuncts* qualify: pushing through OR/NOT would change
semantics, and NULL literals never qualify (``col = NULL`` is UNKNOWN
for every row, but a hash probe on key ``(None,)`` is defined to return
nothing only by convention — the residual path keeps the semantics in
one place, the scalar evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops


@dataclass(frozen=True)
class PushableEquality:
    """One ``col = literal`` conjunct over a base-table scan."""

    column: str  # schema column name, lower-cased
    value: object  # literal value (never None)
    conjunct: ast.Expr  # the original conjunct (for re-assembly)


@dataclass(frozen=True)
class ScanAnnotation:
    """How to evaluate one ``Select(Rel)`` pair.

    ``probe`` is the equality chosen for an index lookup (None = full
    scan); ``residual`` is the predicate that must still be applied to
    fetched rows — it includes every conjunct *not* consumed by the
    probe, so applying ``residual`` after the probe is always
    equivalent to applying the original predicate after a full scan.
    """

    rel: ops.Rel
    probe: Optional[PushableEquality]
    probe_columns: tuple[str, ...] = ()
    residual: Optional[ast.Expr] = None


def _column_of(rel: ops.Rel, ref: ast.ColumnRef) -> Optional[str]:
    """The schema column of ``rel`` that ``ref`` resolves to, if any."""
    name = ref.name.lower()
    if name not in {c.lower() for c in rel.schema_columns}:
        return None
    if ref.table is not None and ref.table.lower() != rel.binding.lower():
        return None
    return name


def split_pushable_equalities(
    predicate: Optional[ast.Expr], rel: ops.Rel
) -> tuple[list[PushableEquality], Optional[ast.Expr]]:
    """Partition ``predicate`` into pushable equalities and a residual.

    A conjunct is pushable when it has the shape ``col = literal`` or
    ``literal = col`` with ``col`` resolving to a column of ``rel`` and
    the literal non-NULL.  The residual conjunction preserves original
    conjunct order.
    """
    pushable: list[PushableEquality] = []
    residual: list[ast.Expr] = []
    for conj in exprs.conjuncts(predicate):
        pair = _match_equality(conj, rel)
        if pair is not None:
            pushable.append(pair)
        else:
            residual.append(conj)
    return pushable, exprs.make_conjunction(residual)


def _match_equality(conj: ast.Expr, rel: ops.Rel) -> Optional[PushableEquality]:
    if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
        return None
    sides = ((conj.left, conj.right), (conj.right, conj.left))
    for col_side, lit_side in sides:
        if not isinstance(col_side, ast.ColumnRef):
            continue
        if not isinstance(lit_side, ast.Literal) or lit_side.value is None:
            continue
        column = _column_of(rel, col_side)
        if column is not None:
            return PushableEquality(column, lit_side.value, conj)
    return None


def annotate_scan(
    rel: ops.Rel,
    predicate: Optional[ast.Expr],
    has_index: Callable[[str, tuple[str, ...]], bool],
) -> ScanAnnotation:
    """Choose an index probe for ``σ_predicate(rel)``.

    ``has_index(table_name, columns)`` answers whether a hash index on
    exactly those columns exists.  Single-column probes only (the
    executor batches equality conjuncts one at a time; multi-column
    index selection is future work).  Among several candidates the
    first pushable conjunct wins — with hash indexes every equality
    probe returns the same final result, so the choice only affects
    how much the residual filter has to discard.
    """
    pushable, residual = split_pushable_equalities(predicate, rel)
    for candidate in pushable:
        if has_index(rel.name, (candidate.column,)):
            leftover = [
                p.conjunct for p in pushable if p is not candidate
            ]
            full_residual = exprs.make_conjunction(
                leftover + exprs.conjuncts(residual)
            )
            return ScanAnnotation(
                rel=rel,
                probe=candidate,
                probe_columns=(candidate.column,),
                residual=full_residual,
            )
    return ScanAnnotation(rel=rel, probe=None, residual=predicate)
