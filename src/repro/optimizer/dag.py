"""The AND-OR DAG (memo) structure of the Volcano optimizer.

Terminology follows the paper's Section 5.6.1: *equivalence nodes*
(rectangles in Figure 1) group alternative *operation nodes* (circles)
that all compute the same logical expression.

Unification ([25]) is implemented through hash-consing: every operation
node has a structural signature ``(kind, params, child eq ids)``; when a
transformation produces an operation whose signature already exists in
another equivalence node, the two equivalence nodes are merged with a
union-find.  This is exactly how common subexpressions of a query and a
set of (authorization) views end up shared.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.algebra.normalize import normalize_predicate


@dataclass
class OpNode:
    """An operation (AND) node: all children are needed."""

    kind: str  # "scan" | "viewscan" | "select" | "project" | "join" | "aggregate" | "distinct"
    params: tuple  # canonical parameters (predicate conjuncts, exprs, ...)
    children: tuple[int, ...]  # equivalence node ids
    #: validity mark for §5.6.2 (op valid ⇐ all child eq nodes valid)
    valid: bool = False

    def signature(self, find) -> tuple:
        return (self.kind, self.params, tuple(find(c) for c in self.children))


@dataclass
class EqNode:
    """An equivalence (OR) node: any operation computes the result."""

    id: int
    operations: list[OpNode] = field(default_factory=list)
    valid: bool = False
    #: estimated output cardinality (filled by the cost model)
    rows: Optional[float] = None


class Memo:
    """Equivalence classes with hash-consing and union-find merging."""

    def __init__(self):
        self._eq: dict[int, EqNode] = {}
        self._parent: dict[int, int] = {}
        self._signatures: dict[tuple, int] = {}  # op signature -> eq id
        self._next_id = itertools.count(0)
        self.merges = 0

    # -- union-find -------------------------------------------------------

    def find(self, eq_id: int) -> int:
        root = eq_id
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[eq_id] != root:
            self._parent[eq_id], eq_id = root, self._parent[eq_id]
        return root

    def node(self, eq_id: int) -> EqNode:
        return self._eq[self.find(eq_id)]

    def _new_eq(self) -> EqNode:
        eq_id = next(self._next_id)
        node = EqNode(eq_id)
        self._eq[eq_id] = node
        self._parent[eq_id] = eq_id
        return node

    def merge(self, a: int, b: int) -> int:
        """Unify two equivalence nodes; returns the surviving root id."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self.merges += 1
        keep, drop = (ra, rb) if ra < rb else (rb, ra)
        keep_node, drop_node = self._eq[keep], self._eq[drop]
        keep_node.operations.extend(drop_node.operations)
        keep_node.valid = keep_node.valid or drop_node.valid
        self._parent[drop] = keep
        del self._eq[drop]
        return keep

    # -- insertion -----------------------------------------------------------

    def add_operation(
        self, kind: str, params: tuple, children: tuple[int, ...],
        target_eq: Optional[int] = None,
    ) -> int:
        """Insert an operation; returns the id of its equivalence node.

        If an operation with the same signature exists, its equivalence
        node is reused (and merged with ``target_eq`` when given —
        unification).
        """
        children = tuple(self.find(c) for c in children)
        signature = (kind, params, children)
        existing = self._signatures.get(signature)
        if existing is not None:
            existing = self.find(existing)
            if target_eq is not None:
                return self.merge(existing, self.find(target_eq))
            return existing
        op = OpNode(kind=kind, params=params, children=children)
        if target_eq is not None:
            eq = self.node(target_eq)
        else:
            eq = self._new_eq()
        eq.operations.append(op)
        self._signatures[signature] = eq.id
        return self.find(eq.id)

    # -- views over the structure -----------------------------------------------

    def equivalence_nodes(self) -> list[EqNode]:
        return [self._eq[i] for i in sorted(self._eq)]

    def operations(self) -> list[tuple[int, OpNode]]:
        result = []
        for eq in self.equivalence_nodes():
            for op in eq.operations:
                result.append((eq.id, op))
        return result

    @property
    def eq_count(self) -> int:
        return len(self._eq)

    @property
    def op_count(self) -> int:
        return sum(len(eq.operations) for eq in self._eq.values())

    def plan_count(self, eq_id: int, _memo: Optional[dict] = None) -> int:
        """Number of distinct plans rooted at an equivalence node."""
        if _memo is None:
            _memo = {}
        root = self.find(eq_id)
        if root in _memo:
            return _memo[root]
        _memo[root] = 0  # cycle guard (shouldn't happen in a DAG)
        total = 0
        for op in self._eq[root].operations:
            combo = 1
            for child in op.children:
                combo *= self.plan_count(child, _memo)
            total += combo
        _memo[root] = total
        return total


# ---------------------------------------------------------------------------
# Inserting algebra plans into the memo
# ---------------------------------------------------------------------------


def canonical_predicate(pred: Optional[ast.Expr]) -> tuple:
    """Order-insensitive canonical form of a predicate for signatures."""
    if pred is None:
        return ()
    conjuncts = normalize_predicate(pred)
    return tuple(sorted(conjuncts, key=repr))


def canonicalize_plan(plan: ops.Operator) -> ops.Operator:
    """α-rename relation bindings to canonical names.

    Binding names chosen by the SQL author are irrelevant to the logical
    content; renaming each leaf to ``relname#k`` (k-th occurrence, in
    leaf order) lets structurally identical query and view
    subexpressions share operation signatures — the prerequisite for
    unification in the memo.
    """
    counters: dict[str, int] = {}
    mapping: dict[str, str] = {}
    for leaf in ops.walk(plan):
        if isinstance(leaf, (ops.Rel, ops.ViewRel)):
            key = leaf.name.lower()
            index = counters.get(key, 0)
            counters[key] = index + 1
            mapping[leaf.binding] = f"{key}#{index}"
    return _rename_plan(plan, mapping)


def _rename_plan(plan: ops.Operator, mapping: dict[str, str]) -> ops.Operator:
    def rn(expr: ast.Expr) -> ast.Expr:
        return exprs.rename_bindings(expr, mapping)

    if isinstance(plan, ops.Rel):
        return ops.Rel(plan.name, mapping.get(plan.binding, plan.binding),
                       plan.schema_columns)
    if isinstance(plan, ops.ViewRel):
        return ops.ViewRel(plan.name, mapping.get(plan.binding, plan.binding),
                           plan.schema_columns, plan.access_args)
    if isinstance(plan, ops.Alias):
        # Alias scopes vanish during canonicalization; inner bindings are
        # already unique after translation.
        inner = _rename_plan(plan.child, mapping)
        renames = tuple(
            (ast.ColumnRef(c.binding, c.name), out.name)
            for c, out in zip(inner.columns, plan.columns)
        )
        return ops.Project(inner, renames)
    if isinstance(plan, ops.Select):
        return ops.Select(_rename_plan(plan.child, mapping), rn(plan.predicate))
    if isinstance(plan, ops.Project):
        return ops.Project(
            _rename_plan(plan.child, mapping),
            tuple((rn(e), n) for e, n in plan.exprs),
        )
    if isinstance(plan, ops.Distinct):
        return ops.Distinct(_rename_plan(plan.child, mapping))
    if isinstance(plan, ops.Join):
        return ops.Join(
            _rename_plan(plan.left, mapping),
            _rename_plan(plan.right, mapping),
            plan.kind,
            rn(plan.predicate) if plan.predicate is not None else None,
        )
    if isinstance(plan, ops.SemiJoin):
        return ops.SemiJoin(
            _rename_plan(plan.left, mapping),
            _rename_plan(plan.right, mapping),
            rn(plan.operand) if plan.operand is not None else None,
            plan.negated,
        )
    if isinstance(plan, ops.DependentJoin):
        return ops.DependentJoin(
            _rename_plan(plan.left, mapping),
            plan.view_name,
            plan.view_binding,
            plan.view_columns,
            plan.param_name,
            rn(plan.key_expr),
            rn(plan.predicate) if plan.predicate is not None else None,
        )
    if isinstance(plan, ops.Aggregate):
        return ops.Aggregate(
            _rename_plan(plan.child, mapping),
            tuple((rn(e), n) for e, n in plan.group_exprs),
            tuple(
                (
                    ast.FuncCall(
                        a.name,
                        tuple(
                            x if isinstance(x, ast.Star) else rn(x) for x in a.args
                        ),
                        a.distinct,
                    ),
                    n,
                )
                for a, n in plan.aggregates
            ),
        )
    if isinstance(plan, ops.SetOperation):
        return ops.SetOperation(
            plan.op,
            plan.all,
            _rename_plan(plan.left, mapping),
            _rename_plan(plan.right, mapping),
        )
    if isinstance(plan, ops.Sort):
        return ops.Sort(
            _rename_plan(plan.child, mapping),
            tuple((rn(e), d) for e, d in plan.keys),
        )
    if isinstance(plan, ops.Limit):
        return ops.Limit(_rename_plan(plan.child, mapping), plan.limit, plan.offset)
    return plan


def _is_identity_project(plan: ops.Project) -> bool:
    child_cols = plan.child.columns
    if len(plan.exprs) != len(child_cols):
        return False
    for (expr, name), col in zip(plan.exprs, child_cols):
        if not isinstance(expr, ast.ColumnRef):
            return False
        if expr != col.ref() or name.lower() != col.name.lower():
            return False
    return True


def insert_plan(memo: Memo, plan: ops.Operator, canonical: bool = True) -> int:
    """Insert a logical plan, returning its root equivalence node id.

    Join trees are inserted as binary joins over canonical predicate
    conjunct sets; Alias nodes are transparent (they do not change the
    computed multiset).  With ``canonical`` (default) the plan's
    bindings are α-renamed first so common subexpressions unify.
    """
    if canonical:
        plan = canonicalize_plan(plan)
    return _insert(memo, plan)


def _insert(memo: Memo, plan: ops.Operator) -> int:
    if isinstance(plan, ops.Rel):
        return memo.add_operation(
            "scan", (plan.name.lower(), plan.binding), ()
        )
    if isinstance(plan, ops.ViewRel):
        return memo.add_operation(
            "viewscan", (plan.name.lower(), plan.binding, plan.access_args), ()
        )
    if isinstance(plan, ops.Alias):
        return _insert(memo, plan.child)
    if isinstance(plan, ops.Select):
        child = _insert(memo, plan.child)
        params = canonical_predicate(plan.predicate)
        if not params:
            return child
        return memo.add_operation("select", params, (child,))
    if isinstance(plan, ops.Project):
        child = _insert(memo, plan.child)
        if _is_identity_project(plan):
            # π over exactly the child's columns computes the child
            # itself; collapsing makes `SELECT *` views unify with bare
            # scans/selections.
            return child
        params = tuple(plan.exprs)
        return memo.add_operation("project", (params,), (child,))
    if isinstance(plan, ops.Distinct):
        child = _insert(memo, plan.child)
        return memo.add_operation("distinct", (), (child,))
    if isinstance(plan, ops.Join):
        left = _insert(memo, plan.left)
        right = _insert(memo, plan.right)
        params = (plan.kind, canonical_predicate(plan.predicate))
        return memo.add_operation("join", params, (left, right))
    if isinstance(plan, ops.Aggregate):
        child = _insert(memo, plan.child)
        params = (tuple(plan.group_exprs), tuple(plan.aggregates))
        return memo.add_operation("aggregate", params, (child,))
    if isinstance(plan, ops.SetOperation):
        left = _insert(memo, plan.left)
        right = _insert(memo, plan.right)
        return memo.add_operation(
            "setop", (plan.op, plan.all), (left, right)
        )
    if isinstance(plan, ops.SemiJoin):
        left = _insert(memo, plan.left)
        right = _insert(memo, plan.right)
        params = (plan.negated, repr(plan.operand))
        return memo.add_operation("semijoin", params, (left, right))
    if isinstance(plan, ops.DependentJoin):
        left = _insert(memo, plan.left)
        params = (
            plan.view_name.lower(),
            plan.param_name,
            repr(plan.key_expr),
            repr(plan.predicate),
        )
        return memo.add_operation("dependentjoin", params, (left,))
    if isinstance(plan, (ops.Sort, ops.Limit)):
        # Order/limit do not change the logical content the optimizer
        # reasons about; treat them as transparent for DAG purposes.
        return _insert(memo, plan.child)
    raise TypeError(f"cannot insert operator {type(plan).__name__} into memo")
