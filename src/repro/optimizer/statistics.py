"""Table statistics for the cost model (ANALYZE support).

The Volcano paper's search is only as good as its cardinality
estimates.  :class:`TableStatistics` snapshots row counts and
per-column distinct counts from the live tables; the cost model uses
them for textbook equi-join selectivity (``1 / max(d_left, d_right)``)
and equality-selection selectivity (``1 / d``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class TableStats:
    rows: int
    distinct: dict[str, int] = field(default_factory=dict)

    def distinct_count(self, column: str) -> int:
        return max(self.distinct.get(column.lower(), 1), 1)


class TableStatistics:
    """Snapshot of per-table statistics, refreshed by :meth:`analyze`."""

    def __init__(self, db: "Database"):
        self.db = db
        self._stats: dict[str, TableStats] = {}

    def analyze(self) -> None:
        """Recompute statistics for every base table."""
        self._stats.clear()
        for schema in self.db.catalog.tables():
            table = self.db.table(schema.name)
            distinct = {
                col.name.lower(): table.distinct_count(col.name)
                for col in schema.columns
            }
            self._stats[schema.name.lower()] = TableStats(
                rows=table.row_count, distinct=distinct
            )

    def row_count(self, table: str) -> int:
        stats = self._stats.get(table.lower())
        if stats is not None:
            return stats.rows
        # Fall back to the live table (un-analyzed database).
        try:
            return self.db.table(table).row_count
        except Exception:
            return 1

    def distinct_count(self, table: str, column: str) -> Optional[int]:
        stats = self._stats.get(table.lower())
        if stats is None:
            try:
                return self.db.table(table).distinct_count(column)
            except Exception:
                return None
        return stats.distinct_count(column)
