"""Integrity constraints.

Besides the standard constraints (primary key, foreign key, unique,
not-null, check), the catalog supports the generalized
**total-participation** constraint that drives inference rules
U3a/U3b/U3c of the paper: *every tuple of the core satisfying a core
predicate has a join partner in the remainder satisfying a remainder
predicate*.  A foreign key is the common special case (paper §5.6.3);
"every full-time student is registered for some course" (Example 5.3)
and "everyone who paid fees is registered" (Example 5.4) are
non-FK instances.

Constraint *visibility* matters for inference: the paper (§4.2) notes
that integrity constraints the user is not authorized to know must not
be used to declare queries valid, otherwise acceptance leaks the
constraint itself.  Each constraint carries a ``visible_to`` set
(``None`` = visible to everyone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql import ast


@dataclass(frozen=True)
class PrimaryKey:
    table: str
    columns: tuple[str, ...]

    def __str__(self) -> str:
        return f"PRIMARY KEY {self.table}({', '.join(self.columns)})"


@dataclass(frozen=True)
class Unique:
    table: str
    columns: tuple[str, ...]

    def __str__(self) -> str:
        return f"UNIQUE {self.table}({', '.join(self.columns)})"


@dataclass(frozen=True)
class NotNull:
    table: str
    column: str

    def __str__(self) -> str:
        return f"NOT NULL {self.table}.{self.column}"


@dataclass(frozen=True)
class ForeignKey:
    """``table(columns)`` references ``ref_table(ref_columns)``."""

    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"FOREIGN KEY {self.table}({', '.join(self.columns)}) "
            f"REFERENCES {self.ref_table}({', '.join(self.ref_columns)})"
        )


@dataclass(frozen=True)
class CheckConstraint:
    """Row-level check predicate over a single table's columns."""

    table: str
    predicate: ast.Expr

    def __str__(self) -> str:
        return f"CHECK {self.table}: {self.predicate}"


@dataclass(frozen=True)
class TotalParticipation:
    """Every tuple of σ(core_pred)(core) joins some tuple of σ(remainder_pred)(remainder).

    ``join_pairs`` lists ``(core_column, remainder_column)`` equality
    pairs.  ``visible_to`` restricts which users may benefit from the
    constraint during validity inference (``None`` = public).
    """

    core_table: str
    remainder_table: str
    join_pairs: tuple[tuple[str, str], ...]
    core_pred: Optional[ast.Expr] = None
    remainder_pred: Optional[ast.Expr] = None
    visible_to: Optional[frozenset[str]] = None
    name: str = ""

    def is_visible_to(self, user: Optional[str]) -> bool:
        if self.visible_to is None:
            return True
        return user is not None and user in self.visible_to

    def __str__(self) -> str:
        pairs = ", ".join(f"{c}={r}" for c, r in self.join_pairs)
        core = f"σ({self.core_pred})({self.core_table})" if self.core_pred else self.core_table
        rem = (
            f"σ({self.remainder_pred})({self.remainder_table})"
            if self.remainder_pred
            else self.remainder_table
        )
        return f"TOTAL PARTICIPATION {core} ⊆⋈[{pairs}] {rem}"


def foreign_key_participation(fk: ForeignKey) -> TotalParticipation:
    """Derive the total-participation constraint implied by a foreign key.

    A FK guarantees a referenced tuple exists whenever the referencing
    columns are non-null; we conservatively require NOT NULL semantics
    by attaching an IS NOT NULL core predicate on each FK column.
    """
    pred: Optional[ast.Expr] = None
    for col in fk.columns:
        clause = ast.IsNull(ast.ColumnRef(None, col), negated=True)
        pred = clause if pred is None else ast.BinaryOp("and", pred, clause)
    ref_cols = fk.ref_columns or fk.columns
    return TotalParticipation(
        core_table=fk.table,
        remainder_table=fk.ref_table,
        join_pairs=tuple(zip(fk.columns, ref_cols)),
        core_pred=pred,
        remainder_pred=None,
        name=f"fk_{fk.table}_{'_'.join(fk.columns)}",
    )
