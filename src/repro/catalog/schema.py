"""Table schemas: named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import UnknownColumnError
from repro.catalog.types import DataType


@dataclass(frozen=True)
class Column:
    name: str
    dtype: DataType
    not_null: bool = False

    def __str__(self) -> str:
        suffix = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.dtype.value}{suffix}"


@dataclass(frozen=True)
class TableSchema:
    """Ordered list of columns for a base table or view result."""

    name: str
    columns: tuple[Column, ...]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(col.name.lower() == lowered for col in self.columns)

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise UnknownColumnError(name, context=self.name)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return index
        raise UnknownColumnError(name, context=self.name)

    def __len__(self) -> int:
        return len(self.columns)

    def __str__(self) -> str:
        cols = ", ".join(str(col) for col in self.columns)
        return f"{self.name}({cols})"
