"""System catalog: schemas, data types, and integrity constraints."""

from repro.catalog.types import DataType, coerce_value, infer_type_name
from repro.catalog.schema import Column, TableSchema
from repro.catalog.constraints import (
    CheckConstraint,
    ForeignKey,
    NotNull,
    PrimaryKey,
    TotalParticipation,
    Unique,
)
from repro.catalog.catalog import Catalog

__all__ = [
    "DataType",
    "coerce_value",
    "infer_type_name",
    "Column",
    "TableSchema",
    "PrimaryKey",
    "ForeignKey",
    "Unique",
    "NotNull",
    "CheckConstraint",
    "TotalParticipation",
    "Catalog",
]
