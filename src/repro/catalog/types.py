"""SQL data types and value coercion.

The engine is dynamically typed at run time (rows hold Python values),
but every column carries a declared :class:`DataType` used for coercion
on insert, for type checking during binding, and for workload
generation.
"""

from __future__ import annotations

import enum

from repro.errors import TypeError_


class DataType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @classmethod
    def from_sql_name(cls, name: str) -> "DataType":
        """Map a SQL type name to a DataType (``varchar(20)`` → TEXT, ...)."""
        lowered = name.lower()
        if lowered in ("int", "integer", "bigint", "smallint", "serial"):
            return cls.INT
        if lowered in ("float", "real", "double", "decimal", "numeric"):
            return cls.FLOAT
        if lowered in ("text", "varchar", "char", "string", "date", "timestamp"):
            return cls.TEXT
        if lowered in ("bool", "boolean"):
            return cls.BOOL
        raise TypeError_(f"unsupported SQL type: {name!r}")


def coerce_value(value: object, dtype: DataType) -> object:
    """Coerce ``value`` to ``dtype``; NULL (None) passes through any type."""
    if value is None:
        return None
    if dtype is DataType.INT:
        if isinstance(value, bool):
            raise TypeError_(f"cannot store boolean {value!r} in INT column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError_(f"cannot store {value!r} in INT column")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeError_(f"cannot store boolean {value!r} in FLOAT column")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError_(f"cannot store {value!r} in FLOAT column")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeError_(f"cannot store {value!r} in TEXT column")
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"cannot store {value!r} in BOOL column")
    raise TypeError_(f"unknown data type {dtype!r}")


def infer_type_name(value: object) -> str:
    """Human-readable type name of a Python value (for error messages)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "text"
    return type(value).__name__
