"""The system catalog: tables, views, and constraints.

The catalog is purely metadata; row storage lives in
:mod:`repro.storage` and is owned by the :class:`~repro.db.Database`
facade.  View definitions (including authorization views) are stored
here generically as parsed queries so that the binder can expand them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import DuplicateNameError, UnknownTableError
from repro.sql import ast
from repro.catalog.constraints import (
    CheckConstraint,
    ForeignKey,
    NotNull,
    PrimaryKey,
    TotalParticipation,
    Unique,
    foreign_key_participation,
)
from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import DataType


@dataclass(frozen=True)
class ViewDef:
    """A stored (possibly authorization) view definition."""

    name: str
    query: ast.QueryExpr
    authorization: bool = False
    column_names: tuple[str, ...] = ()


class Catalog:
    """Named collection of table schemas, view definitions, and constraints."""

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._views: dict[str, ViewDef] = {}
        self._primary_keys: dict[str, PrimaryKey] = {}
        self._uniques: list[Unique] = []
        self._not_nulls: list[NotNull] = []
        self._foreign_keys: list[ForeignKey] = []
        self._checks: list[CheckConstraint] = []
        self._participations: list[TotalParticipation] = []
        #: participations declared directly (not derived from foreign
        #: keys); these need explicit persistence — FK-derived ones are
        #: rebuilt when the CREATE TABLE DDL replays
        self._manual_participations: list[TotalParticipation] = []
        #: bumped on every view-registry change; cached validity
        #: decisions (repro.service) are dropped when this moves
        self._views_version = 0
        #: bumped on every DDL change (table or view); prepared
        #: templates (repro.prepared) are stamped with this epoch
        self._schema_version = 0
        #: per-relation DDL counters for *exact* prepared-template
        #: invalidation: a template depends only on the relations it
        #: (transitively) references, so redefining relation X must not
        #: evict templates over relation Y
        self._relation_versions: dict[str, int] = {}

    @property
    def views_version(self) -> int:
        return self._views_version

    @property
    def schema_version(self) -> int:
        return self._schema_version

    def relation_version(self, name: str) -> int:
        """DDL counter for one relation (0 if never created/dropped)."""
        return self._relation_versions.get(name.lower(), 0)

    def _bump_relation(self, name: str) -> None:
        key = name.lower()
        self._relation_versions[key] = self._relation_versions.get(key, 0) + 1
        self._schema_version += 1

    def restore_views_version(self, version: int) -> None:
        """Advance the views version (snapshot load restores the policy
        epoch observed at checkpoint time)."""
        self._views_version = max(self._views_version, version)

    # -- registration ---------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables or key in self._views:
            raise DuplicateNameError(schema.name)
        self._tables[key] = schema
        self._bump_relation(key)
        for col in schema.columns:
            if col.not_null:
                self._not_nulls.append(NotNull(schema.name, col.name))

    def create_table_from_ast(self, stmt: ast.CreateTable) -> TableSchema:
        """Register a table from a parsed CREATE TABLE statement."""
        pk_cols = set(stmt.primary_key)
        for col in stmt.columns:
            if col.primary_key:
                pk_cols.add(col.name)
        columns = tuple(
            Column(
                name=col.name,
                dtype=DataType.from_sql_name(col.type_name),
                not_null=col.not_null or col.name in pk_cols,
            )
            for col in stmt.columns
        )
        schema = TableSchema(stmt.name, columns)
        self.create_table(schema)

        if stmt.primary_key:
            self.set_primary_key(stmt.name, stmt.primary_key)
        else:
            inline_pk = tuple(c.name for c in stmt.columns if c.primary_key)
            if inline_pk:
                self.set_primary_key(stmt.name, inline_pk)
        for col in stmt.columns:
            if col.unique and not col.primary_key:
                self.add_unique(Unique(stmt.name, (col.name,)))
        for unique in stmt.uniques:
            self.add_unique(Unique(stmt.name, unique))
        for fk in stmt.foreign_keys:
            ref_columns = fk.ref_columns
            if not ref_columns:
                ref_pk = self._primary_keys.get(fk.ref_table.lower())
                if ref_pk is None:
                    raise UnknownTableError(fk.ref_table)
                ref_columns = ref_pk.columns
            self.add_foreign_key(
                ForeignKey(stmt.name, fk.columns, fk.ref_table, ref_columns)
            )
        for check in stmt.checks:
            self.add_check(CheckConstraint(stmt.name, check.predicate))
        return schema

    def create_view(self, view: ViewDef) -> None:
        key = view.name.lower()
        if key in self._tables or key in self._views:
            raise DuplicateNameError(view.name)
        self._views[key] = view
        self._views_version += 1
        self._bump_relation(key)

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise UnknownTableError(name)
        del self._tables[key]
        self._bump_relation(key)
        self._primary_keys.pop(key, None)
        self._uniques = [u for u in self._uniques if u.table.lower() != key]
        self._not_nulls = [n for n in self._not_nulls if n.table.lower() != key]
        self._foreign_keys = [
            f
            for f in self._foreign_keys
            if f.table.lower() != key and f.ref_table.lower() != key
        ]
        self._checks = [c for c in self._checks if c.table.lower() != key]
        self._participations = [
            p
            for p in self._participations
            if p.core_table.lower() != key and p.remainder_table.lower() != key
        ]
        self._manual_participations = [
            p
            for p in self._manual_participations
            if p.core_table.lower() != key and p.remainder_table.lower() != key
        ]

    def drop_view(self, name: str) -> None:
        key = name.lower()
        if key not in self._views:
            raise UnknownTableError(name)
        del self._views[key]
        self._views_version += 1
        self._bump_relation(key)

    # -- constraints ------------------------------------------------------

    def set_primary_key(self, table: str, columns: Iterable[str]) -> None:
        self._primary_keys[table.lower()] = PrimaryKey(table, tuple(columns))

    def add_unique(self, unique: Unique) -> None:
        self._uniques.append(unique)

    def add_foreign_key(self, fk: ForeignKey) -> None:
        self._foreign_keys.append(fk)
        self._participations.append(foreign_key_participation(fk))

    def add_check(self, check: CheckConstraint) -> None:
        self._checks.append(check)

    def add_participation(self, constraint: TotalParticipation) -> None:
        self._participations.append(constraint)
        self._manual_participations.append(constraint)

    def manual_participations(self) -> list[TotalParticipation]:
        return list(self._manual_participations)

    # -- lookups -----------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def has_relation(self, name: str) -> bool:
        return self.has_table(name) or self.has_view(name)

    def table(self, name: str) -> TableSchema:
        schema = self._tables.get(name.lower())
        if schema is None:
            raise UnknownTableError(name)
        return schema

    def view(self, name: str) -> ViewDef:
        view = self._views.get(name.lower())
        if view is None:
            raise UnknownTableError(name)
        return view

    def tables(self) -> list[TableSchema]:
        return list(self._tables.values())

    def views(self) -> list[ViewDef]:
        return list(self._views.values())

    def primary_key(self, table: str) -> Optional[PrimaryKey]:
        return self._primary_keys.get(table.lower())

    def uniques_for(self, table: str) -> list[Unique]:
        key = table.lower()
        return [u for u in self._uniques if u.table.lower() == key]

    def keys_for(self, table: str) -> list[tuple[str, ...]]:
        """All declared keys (PK + uniques) of ``table`` as column tuples."""
        keys: list[tuple[str, ...]] = []
        pk = self.primary_key(table)
        if pk is not None:
            keys.append(pk.columns)
        keys.extend(u.columns for u in self.uniques_for(table))
        return keys

    def not_nulls_for(self, table: str) -> list[NotNull]:
        key = table.lower()
        return [n for n in self._not_nulls if n.table.lower() == key]

    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_for(self, table: str) -> list[ForeignKey]:
        key = table.lower()
        return [f for f in self._foreign_keys if f.table.lower() == key]

    def checks_for(self, table: str) -> list[CheckConstraint]:
        key = table.lower()
        return [c for c in self._checks if c.table.lower() == key]

    def participations(self, user: Optional[str] = None) -> list[TotalParticipation]:
        """All total-participation constraints visible to ``user``."""
        return [p for p in self._participations if p.is_visible_to(user)]

    def participations_for_core(
        self, core_table: str, user: Optional[str] = None
    ) -> list[TotalParticipation]:
        key = core_table.lower()
        return [
            p
            for p in self.participations(user)
            if p.core_table.lower() == key
        ]
