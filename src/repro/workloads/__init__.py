"""Workload generators: the paper's running examples at scale."""

from repro.workloads.university import UniversityConfig, build_university
from repro.workloads.bank import BankConfig, build_bank
from repro.workloads.collab import CollabConfig, build_collab, collab_namespace
from repro.workloads.queries import student_query_mix, LabeledQuery

__all__ = [
    "UniversityConfig",
    "build_university",
    "BankConfig",
    "build_bank",
    "CollabConfig",
    "build_collab",
    "collab_namespace",
    "student_query_mix",
    "LabeledQuery",
]
