"""The collaboration workload: ReBAC policies over a document tree.

A deterministic org-chart + folder-tree generator for the
:mod:`repro.rebac` subsystem: teams with members, folders nested into
chains ``folder_depth`` deep, and documents filed into folders — so a
user's right to read a document typically flows through a grant chain
about ten links long (document → parent folders → team userset → user).
A fraction of the direct grants carry expiry timestamps relative to
``base_time``, so expiry behaviour is exercised (and, with a
:class:`~repro.service.clock.ManualClock`, deterministic).

``build_collab`` creates the schema and data, attaches the compiled
ReBAC policy (:func:`repro.rebac.attach_rebac`), and writes the
relationship tuples.  Sessions must carry a ``time`` parameter — the
compiled views have an ``expires_at > $time`` conjunct; helpers in
tests use ``db.connect(user_id=..., mode=..., time=...)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.db import Database
from repro.rebac import (
    Computed,
    Direct,
    NamespaceConfig,
    ObjectTypeDef,
    RebacManager,
    RelationDef,
    TableBinding,
    Via,
    attach_rebac,
)
from repro.service.clock import Clock

SCHEMA_SQL = """
create table Folders(
    folder_id varchar(20) primary key,
    name varchar(40) not null
);
create table Documents(
    doc_id varchar(20) primary key,
    folder_id varchar(20) not null,
    title varchar(60) not null,
    content varchar(80) not null,
    foreign key (folder_id) references Folders
);
"""

_TEAM_NAMES = [
    "eng", "design", "sales", "legal", "research", "support", "ops",
    "finance", "marketing", "security", "data", "platform",
]

_WORDS = [
    "plan", "report", "spec", "notes", "draft", "review", "budget",
    "roadmap", "summary", "memo", "brief", "charter",
]


def collab_namespace() -> NamespaceConfig:
    """Teams, nested folders, documents — editors are viewers, and both
    relations inherit down the folder tree via ``parent`` tuples."""
    return NamespaceConfig(
        [
            ObjectTypeDef(
                name="team",
                relations=(RelationDef("member"),),
            ),
            ObjectTypeDef(
                name="folder",
                relations=(
                    RelationDef("parent"),
                    RelationDef(
                        "viewer",
                        union=(
                            Direct(),
                            Computed("editor"),
                            Via("parent", "viewer"),
                        ),
                    ),
                    RelationDef(
                        "editor", union=(Direct(), Via("parent", "editor"))
                    ),
                ),
                permissions=("viewer", "editor"),
                binding=TableBinding(
                    table="Folders",
                    id_column="folder_id",
                    columns=("folder_id", "name"),
                ),
            ),
            ObjectTypeDef(
                name="document",
                relations=(
                    RelationDef("parent"),
                    RelationDef(
                        "viewer",
                        union=(
                            Direct(),
                            Computed("editor"),
                            Via("parent", "viewer"),
                        ),
                    ),
                    RelationDef(
                        "editor", union=(Direct(), Via("parent", "editor"))
                    ),
                ),
                permissions=("viewer", "editor"),
                binding=TableBinding(
                    table="Documents",
                    id_column="doc_id",
                    columns=("doc_id", "folder_id", "title", "content"),
                ),
            ),
        ]
    )


@dataclass(frozen=True)
class CollabConfig:
    teams: int = 4
    users_per_team: int = 4
    #: folder chains this deep hang off each team's root folder
    folder_depth: int = 8
    documents: int = 24
    #: fraction of direct document grants that expire
    expiring_fraction: float = 0.25
    #: grants expire between base_time and base_time + expiry_spread
    base_time: float = 1_000_000.0
    expiry_spread: float = 1_000.0
    seed: int = 7


def user_name(team_index: int, member_index: int) -> str:
    return f"u{team_index}_{member_index}"


def team_name(team_index: int) -> str:
    return _TEAM_NAMES[team_index % len(_TEAM_NAMES)]


def build_collab(
    config: CollabConfig = CollabConfig(),
    db: Optional[Database] = None,
    deploy_policy: bool = True,
    clock: Optional[Clock] = None,
) -> Database:
    """Create and populate a collaboration database.

    ``db`` populates an existing (possibly sharded/cluster) database;
    ``deploy_policy=False`` loads only the base tables — the
    differential tests use it to hand-author the same policy.
    """
    rng = random.Random(config.seed)
    if db is None:
        db = Database()
    db.execute_script(SCHEMA_SQL)

    manager: Optional[RebacManager] = None
    if deploy_policy:
        manager = attach_rebac(db, collab_namespace(), clock=clock)

    def tuple_write(obj: str, relation: str, subject: str,
                    expires_at: Optional[float] = None) -> None:
        if manager is not None:
            manager.write_tuple(obj, relation, subject, expires_at=expires_at)

    # org chart: teams and members
    for t in range(config.teams):
        for m in range(config.users_per_team):
            tuple_write(
                f"team:{team_name(t)}", "member", f"user:{user_name(t, m)}"
            )

    # folder chains: one root per team, nested folder_depth deep; the
    # team's userset views the root, so leaf access is a ~10-link chain
    leaf_folders: list[str] = []
    for t in range(config.teams):
        team = team_name(t)
        chain_parent: Optional[str] = None
        for depth in range(config.folder_depth):
            folder_id = f"f{t}_{depth}"
            db.execute(
                f"insert into Folders values ('{folder_id}', "
                f"'{team} level {depth}')",
                sync=False,
            )
            if chain_parent is None:
                tuple_write(
                    f"folder:{folder_id}", "viewer", f"team:{team}#member"
                )
            else:
                tuple_write(
                    f"folder:{folder_id}", "parent", f"folder:{chain_parent}"
                )
            chain_parent = folder_id
        leaf_folders.append(chain_parent)

    # documents: filed into leaf folders, round-robin across teams, with
    # a sprinkle of direct (possibly expiring) grants to outside users
    for d in range(config.documents):
        t = d % config.teams
        folder_id = leaf_folders[t]
        doc_id = f"d{d}"
        title = f"{_WORDS[d % len(_WORDS)]} {d}"
        content = f"content of {title} ({team_name(t)})"
        db.execute(
            f"insert into Documents values ('{doc_id}', '{folder_id}', "
            f"'{title}', '{content}')",
            sync=False,
        )
        tuple_write(f"document:{doc_id}", "parent", f"folder:{folder_id}")
        if rng.random() < 0.5:
            other_team = (t + 1) % config.teams
            grantee = user_name(other_team, rng.randrange(config.users_per_team))
            expires = None
            if rng.random() < config.expiring_fraction:
                expires = config.base_time + rng.uniform(
                    1.0, config.expiry_spread
                )
            tuple_write(
                f"document:{doc_id}", "viewer", f"user:{grantee}",
                expires_at=expires,
            )
    db._durable_commit()
    return db
