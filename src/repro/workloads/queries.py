"""Query workloads over the university schema.

``student_query_mix`` generates the query mix a student-portal
application would issue, labeled with the *intended* semantics:

* ``authorized`` — answerable from the student's authorization views
  (the Non-Truman model should accept, and the Truman model happens to
  return correct results);
* ``misleading`` — queries whose Truman-modified version silently
  returns wrong answers (the §3.3 pitfalls); the Non-Truman model
  rejects them instead;
* ``unauthorized`` — queries touching data no view covers.

Experiments E6 (misleading-answer rates) and E7 (rule-tier coverage)
consume these labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.db import Database


@dataclass(frozen=True)
class LabeledQuery:
    sql: str
    label: str  # "authorized" | "misleading" | "unauthorized"
    #: which rule tier is needed to accept it: "U2" | "U3" | "C3" | None
    tier: Optional[str] = "U2"

    def __str__(self) -> str:
        return f"[{self.label}/{self.tier}] {self.sql}"


def student_query_mix(
    db: Database,
    user_id: str,
    count: int = 50,
    seed: int = 0,
) -> list[LabeledQuery]:
    """A deterministic mix of student-portal queries for ``user_id``."""
    rng = random.Random(seed)
    my_courses = [
        row[0]
        for row in db.execute(
            f"select course_id from Registered where student_id = '{user_id}' "
            "order by course_id"
        ).rows
    ]
    all_courses = [
        row[0]
        for row in db.execute("select course_id from Courses order by course_id").rows
    ]
    other_students = [
        row[0]
        for row in db.execute(
            f"select student_id from Students where student_id <> '{user_id}' "
            "order by student_id"
        ).rows
    ]

    generators = [
        # -- authorized -------------------------------------------------
        lambda: LabeledQuery(
            f"select * from Grades where student_id = '{user_id}'",
            "authorized",
            "U2",
        ),
        lambda: LabeledQuery(
            f"select course_id, grade from Grades where student_id = '{user_id}' "
            "and grade >= 3.0",
            "authorized",
            "U2",
        ),
        lambda: LabeledQuery(
            f"select avg(grade) from Grades where student_id = '{user_id}'",
            "authorized",
            "U2",
        ),
        lambda: LabeledQuery(
            f"select avg(grade) from Grades where course_id = "
            f"'{rng.choice(all_courses)}'",
            "authorized",
            "C3",
        ),
        lambda: LabeledQuery(
            "select distinct name, type from Students",
            "authorized",
            "U3",
        ),
        lambda: LabeledQuery(
            "select distinct name from Students where Students.type = 'FullTime'",
            "authorized",
            "U3",
        ),
        lambda: LabeledQuery(
            f"select * from Grades where course_id = "
            f"'{rng.choice(my_courses) if my_courses else all_courses[0]}'",
            "authorized",
            "C3",
        ),
        lambda: LabeledQuery(
            "select * from Courses",
            "authorized",
            "U2",
        ),
        # re-aggregation: the total grade count is derivable by summing
        # AvgGrades' per-course counts (path C of the matcher), so the
        # Non-Truman model rightly accepts it — while the Truman model
        # still mis-answers it over the restricted view.
        lambda: LabeledQuery(
            "select count(*) from Grades",
            "authorized",
            "U2",
        ),
        # -- misleading under Truman ------------------------------------------
        lambda: LabeledQuery(
            "select avg(grade) from Grades",
            "misleading",
            None,
        ),
        lambda: LabeledQuery(
            "select sum(grade) from Grades",
            "misleading",
            None,
        ),
        lambda: LabeledQuery(
            "select max(grade) from Grades",
            "misleading",
            None,
        ),
        # -- unauthorized ---------------------------------------------------
        lambda: LabeledQuery(
            f"select * from Grades where student_id = "
            f"'{rng.choice(other_students)}'",
            "unauthorized",
            None,
        ),
        lambda: LabeledQuery(
            "select student_id, grade from Grades where grade < 2.0",
            "unauthorized",
            None,
        ),
    ]

    return [rng.choice(generators)() for _ in range(count)]
