"""The university schema of paper Section 2, with a scalable generator.

Tables: ``Students(student_id, name, type)``, ``Courses(course_id,
name)``, ``Registered(student_id, course_id)``, ``Grades(student_id,
course_id, grade)`` — plus ``FeesPaid(student_id)`` from Example 5.4.

``build_university`` creates the schema, loads deterministic synthetic
data (seeded), declares the paper's integrity constraints, and deploys
the paper's authorization views.  The generated data *satisfies* the
declared total-participation constraints (every student registers for
at least one course; every fee-payer is registered), which tests verify
via :meth:`repro.db.Database.validate_participations`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.db import Database
from repro.catalog.constraints import TotalParticipation
from repro.sql.parser import Parser

SCHEMA_SQL = """
create table Students(
    student_id varchar(10) primary key,
    name varchar(40) not null,
    type varchar(10) not null
);
create table Courses(
    course_id varchar(10) primary key,
    name varchar(60) not null
);
create table Registered(
    student_id varchar(10),
    course_id varchar(10),
    primary key (student_id, course_id),
    foreign key (student_id) references Students,
    foreign key (course_id) references Courses
);
create table Grades(
    student_id varchar(10),
    course_id varchar(10),
    grade float,
    primary key (student_id, course_id),
    foreign key (student_id) references Students,
    foreign key (course_id) references Courses
);
create table FeesPaid(
    student_id varchar(10) primary key,
    foreign key (student_id) references Students
);
"""

#: the paper's authorization views (Sections 1, 2, 4 and 6)
AUTH_VIEWS_SQL = """
create authorization view MyGrades as
    select * from Grades where student_id = $user_id;
create authorization view MyRegistrations as
    select * from Registered where student_id = $user_id;
create authorization view CoStudentGrades as
    select Grades.student_id, Grades.course_id, Grades.grade
    from Grades, Registered
    where Registered.student_id = $user_id
      and Grades.course_id = Registered.course_id;
create authorization view AvgGrades as
    select course_id, avg(grade) as avg_grade, count(*) as num_grades
    from Grades group by course_id;
create authorization view RegStudents as
    select Registered.course_id, Students.student_id, Students.name, Students.type
    from Registered, Students
    where Students.student_id = Registered.student_id;
create authorization view SingleGrade as
    select * from Grades where student_id = $$1;
create authorization view AllCourses as
    select * from Courses;
"""

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Ken", "Lena", "Mallory", "Niaj", "Olivia", "Peggy",
    "Quentin", "Rita", "Sybil", "Trent", "Uma", "Victor", "Wendy", "Xu",
    "Yara", "Zane",
]

_SUBJECTS = [
    "Intro Programming", "Data Structures", "Databases", "Operating Systems",
    "Networks", "Compilers", "Algorithms", "Machine Learning", "Graphics",
    "Security", "Distributed Systems", "Theory of Computation",
]


@dataclass(frozen=True)
class UniversityConfig:
    students: int = 100
    courses: int = 12
    registrations_per_student: int = 3
    grade_fraction: float = 0.8  # fraction of registrations with grades
    fees_fraction: float = 0.6
    fulltime_fraction: float = 0.7
    seed: int = 42


def build_university(
    config: UniversityConfig = UniversityConfig(),
    deploy_views: bool = True,
    grant_views_public: bool = True,
    declare_constraints: bool = True,
    db: Optional[Database] = None,
) -> Database:
    """Create and populate a university database.

    ``db`` populates an existing (possibly sharded/cluster) database
    instead of constructing a fresh single-node one.
    """
    rng = random.Random(config.seed)
    if db is None:
        db = Database()
    db.execute_script(SCHEMA_SQL)

    course_ids = [f"CS{100 + i}" for i in range(config.courses)]
    for i, course_id in enumerate(course_ids):
        name = _SUBJECTS[i % len(_SUBJECTS)]
        db.execute(
            f"insert into Courses values ('{course_id}', '{name} {i // len(_SUBJECTS) + 1}')"
        )

    for i in range(config.students):
        student_id = str(10 + i)
        name = _FIRST_NAMES[i % len(_FIRST_NAMES)]
        kind = "FullTime" if rng.random() < config.fulltime_fraction else "PartTime"
        db.execute(
            f"insert into Students values ('{student_id}', '{name}', '{kind}')"
        )
        # Every student registers for at least one course (Example 5.1's
        # integrity constraint holds by construction).
        count = max(1, min(config.registrations_per_student, len(course_ids)))
        chosen = rng.sample(course_ids, count)
        for course_id in chosen:
            db.execute(
                f"insert into Registered values ('{student_id}', '{course_id}')"
            )
            if rng.random() < config.grade_fraction:
                grade = round(rng.uniform(1.0, 4.0), 1)
                db.execute(
                    "insert into Grades values "
                    f"('{student_id}', '{course_id}', {grade})"
                )
        if rng.random() < config.fees_fraction:
            db.execute(f"insert into FeesPaid values ('{student_id}')")

    if declare_constraints:
        declare_university_constraints(db)
    if deploy_views:
        db.execute_script(AUTH_VIEWS_SQL)
        if grant_views_public:
            for view in db.catalog.views():
                if not view.authorization:
                    continue
                if view.name == "SingleGrade":
                    # The access-pattern view is the *secretary's*
                    # authorization (Section 2) — granting it publicly
                    # would let every student look up any classmate by id.
                    db.grant(view.name, to_user="secretary")
                else:
                    db.grant_public(view.name)
    return db


def declare_university_constraints(db: Database) -> None:
    """The paper's non-FK integrity constraints (Examples 5.1, 5.3, 5.4)."""
    db.add_participation_constraint(
        TotalParticipation(
            core_table="Students",
            remainder_table="Registered",
            join_pairs=(("student_id", "student_id"),),
            name="every_student_registered",
        )
    )
    db.add_participation_constraint(
        TotalParticipation(
            core_table="Students",
            remainder_table="Registered",
            join_pairs=(("student_id", "student_id"),),
            core_pred=Parser("type = 'FullTime'").parse_expr(),
            name="fulltime_students_registered",
        )
    )
    db.add_participation_constraint(
        TotalParticipation(
            core_table="FeesPaid",
            remainder_table="Registered",
            join_pairs=(("student_id", "student_id"),),
            name="feespaid_registered",
        )
    )


def student_ids(db: Database) -> list[str]:
    result = db.execute("select student_id from Students order by student_id")
    return [row[0] for row in result.rows]


def course_ids(db: Database) -> list[str]:
    result = db.execute("select course_id from Courses order by course_id")
    return [row[0] for row in result.rows]
