"""The bank scenario from the paper's introduction.

Section 1 motivates fine-grained access control with a bank:

* "a customer should be able to query her account balance, and no one
  else's" — ``MyAccounts`` parameterized view;
* "a teller should have read access to balances of all accounts but not
  the addresses of customers" — ``TellerBalances`` projecting the
  address column away (cell-level authorization);
* "a teller should be allowed to see the balance of any account by
  providing the account-id but not the balances of all accounts
  together" — ``AccountByNumber`` access-pattern view.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db import Database

SCHEMA_SQL = """
create table Customers(
    cust_id varchar(10) primary key,
    name varchar(40) not null,
    address varchar(80) not null
);
create table Accounts(
    acct_id varchar(12) primary key,
    cust_id varchar(10) not null,
    branch varchar(20) not null,
    balance float not null,
    foreign key (cust_id) references Customers
);
"""

AUTH_VIEWS_SQL = """
create authorization view MyAccounts as
    select * from Accounts where cust_id = $user_id;
create authorization view MyCustomerRecord as
    select * from Customers where cust_id = $user_id;
create authorization view TellerBalances as
    select Accounts.acct_id, Accounts.branch, Accounts.balance,
           Customers.cust_id, Customers.name
    from Accounts, Customers
    where Accounts.cust_id = Customers.cust_id;
create authorization view AccountByNumber as
    select * from Accounts where acct_id = $$1;
create authorization view BranchTotals as
    select branch, sum(balance) as total_balance, count(*) as num_accounts
    from Accounts group by branch;
"""

_BRANCHES = ["Downtown", "Uptown", "Airport", "Harbor", "Campus"]


@dataclass(frozen=True)
class BankConfig:
    customers: int = 50
    accounts_per_customer: int = 2
    seed: int = 7


def build_bank(config: BankConfig = BankConfig()) -> Database:
    """Create and populate the bank database with its views deployed.

    Grants: ``MyAccounts``/``MyCustomerRecord`` to PUBLIC (each session
    only sees its own rows via ``$user_id``); teller views are granted
    explicitly by callers, e.g. ``db.grant("TellerBalances", "teller1")``.
    """
    rng = random.Random(config.seed)
    db = Database()
    db.execute_script(SCHEMA_SQL)
    account_serial = 0
    for i in range(config.customers):
        cust_id = f"C{100 + i}"
        name = f"Customer {i}"
        address = f"{rng.randint(1, 999)} Main St, Apt {rng.randint(1, 40)}"
        db.execute(
            f"insert into Customers values ('{cust_id}', '{name}', '{address}')"
        )
        for _ in range(config.accounts_per_customer):
            account_serial += 1
            acct_id = f"A{10000 + account_serial}"
            branch = rng.choice(_BRANCHES)
            balance = round(rng.uniform(10.0, 50000.0), 2)
            db.execute(
                "insert into Accounts values "
                f"('{acct_id}', '{cust_id}', '{branch}', {balance})"
            )
    db.execute_script(AUTH_VIEWS_SQL)
    db.grant_public("MyAccounts")
    db.grant_public("MyCustomerRecord")
    return db


def grant_teller(db: Database, teller_user: str) -> None:
    """Grant the teller-facing views to one teller principal."""
    db.grant("TellerBalances", teller_user)
    db.grant("AccountByNumber", teller_user)
    db.grant("BranchTotals", teller_user)


def account_ids(db: Database) -> list[str]:
    result = db.execute("select acct_id from Accounts order by acct_id")
    return [row[0] for row in result.rows]
