"""Enforcement gateway demo: three concurrent student portals.

Spins up the service layer (:mod:`repro.service`) over the university
workload and drives three users from three client threads — the
multi-session regime the paper's in-server enforcement architecture
(§2) implies.  Shows:

* concurrent Non-Truman enforcement — valid queries answered exactly,
  invalid ones rejected with the rule trace, in parallel;
* the shared validity-decision cache warming across sessions (§5.6);
* a deadline-expired request returning a structured timeout;
* backpressure when the admission queue is full;
* the audit log and the ``\\stats``-style metrics snapshot.

Run:  python examples/service_demo.py
"""

import threading

from repro import ServiceOverloaded
from repro.service import EnforcementGateway, QueryRequest
from repro.workloads.university import UniversityConfig, build_university

db = build_university(UniversityConfig(students=30, courses=6, seed=7))
gateway = EnforcementGateway(db, workers=4, queue_size=16, name="portal")

USERS = ("11", "12", "13")
print_lock = threading.Lock()


def portal_session(user: str) -> None:
    """One student's portal session: her grades (twice — the second
    one should hit the cache), a co-student listing, and a forbidden
    full-table scan."""
    scripts = [
        f"select grade from Grades where student_id = '{user}'",
        f"select grade from Grades where student_id = '{user}'",
        f"select course_id from Registered where student_id = '{user}'",
        "select * from Grades",  # not derivable from her views
    ]
    for sql in scripts:
        response = gateway.execute(QueryRequest(user=user, sql=sql))
        with print_lock:
            status = response.status.value
            hit = " [cache hit]" if response.cache_hit else ""
            print(f"  user {user}: {status:>8}{hit}  {sql}")
            if response.ok:
                print(f"    {len(response.rows)} row(s)")
            else:
                print(f"    {response.error}")


print("=" * 70)
print("THREE CONCURRENT PORTAL SESSIONS (non-truman enforcement)")
print("=" * 70)
clients = [threading.Thread(target=portal_session, args=(u,)) for u in USERS]
for client in clients:
    client.start()
for client in clients:
    client.join()

print()
print("=" * 70)
print("DEADLINES AND BACKPRESSURE")
print("=" * 70)
expired = gateway.execute(
    QueryRequest(user="11", sql="select * from Courses", mode="open",
                 deadline=0.0)
)
print(f"  deadline=0 request -> {expired.status.value}: {expired.error}")

flood = [
    gateway.submit(
        QueryRequest(user=u, sql="select count(*) from Courses", mode="open")
    )
    for u in USERS
]
try:
    tiny = EnforcementGateway(db, workers=1, queue_size=1, name="tiny")
    tiny._rwlock.acquire_read()  # pin the worker mid-write for the demo
    pinned = tiny.submit(
        QueryRequest(user=None, mode="open",
                     sql="insert into Courses values ('CS900', 'Demo')")
    )
    while tiny.metrics.gauge("workers_busy").value < 1:
        pass  # wait until the worker has dequeued the pinned DML
    queued = tiny.submit(
        QueryRequest(user="11", sql="select 1 from Courses", mode="open")
    )
    try:
        tiny.submit(
            QueryRequest(user="12", sql="select 1 from Courses", mode="open")
        )
    except ServiceOverloaded as exc:
        print(f"  queue full -> ServiceOverloaded: {exc}")
    tiny._rwlock.release_read()
    pinned.result(timeout=10)
    queued.result(timeout=10)
    tiny.shutdown(drain=True)
    db.execute("delete from Courses where course_id = 'CS900'")
finally:
    for pending in flood:
        pending.result(timeout=10)

print()
print("=" * 70)
print("AUDIT TRAIL (last 6 records, literal-stripped signatures)")
print("=" * 70)
for record in gateway.audit.tail(6):
    rules = ",".join(record.rules) or "-"
    print(
        f"  #{record.seq} user={record.user} status={record.status:>8} "
        f"rules={rules:<8} {record.latency_ms:6.2f}ms  {record.signature}"
    )

print()
print(gateway.render_stats())
gateway.shutdown(drain=True)
