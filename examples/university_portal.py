"""University portal: the paper's running example, end to end.

Demonstrates every inference-rule family on the generated university
workload:

* U1/U2 — plain rewritings over MyGrades;
* conditional validity (C3) — all grades of a course the student is
  registered for (Examples 4.3/4.4), including the leak-prevention
  rejection when the registration view is missing;
* U3 — integrity-constraint inference over RegStudents (Examples
  5.1-5.3);
* aggregate views — course averages via AvgGrades (Examples 4.1/4.2);
* access patterns — the secretary's SingleGrade view (§2/§6).

Run:  python examples/university_portal.py
"""

from repro import QueryRejectedError
from repro.workloads import UniversityConfig, build_university

db = build_university(UniversityConfig(students=40, courses=6, seed=19))


def show(conn, sql, label=""):
    print(f"\n--- {label or sql}")
    print(f"    {sql}")
    try:
        decision = conn.check_validity(sql)
        if decision.valid:
            rows = conn.query(sql).rows
            kind = decision.validity.value
            print(f"    ACCEPTED ({kind}); {len(rows)} row(s)")
            for step in decision.trace[:3]:
                print(f"      via {step}")
            if rows[:3]:
                print(f"      sample: {rows[:3]}")
        else:
            print(f"    REJECTED: {decision.reason}")
    except QueryRejectedError as exc:
        print(f"    REJECTED: {exc}")


student = db.connect(user_id="11", mode="non-truman")

print("=" * 70)
print("STUDENT 11 (Non-Truman model; queries written on base tables)")
print("=" * 70)

show(student, "select course_id, grade from Grades where student_id = '11'",
     "own grades (rule U2 over MyGrades)")
show(student, "select avg(grade) from Grades where student_id = '11'",
     "own average (U2 + re-aggregation)")

my_course = db.execute(
    "select course_id from Registered where student_id = '11' "
    "order by course_id limit 1"
).scalar()
show(student, f"select * from Grades where course_id = '{my_course}'",
     f"everyone's grades in {my_course} — registered, so C3 applies")

other_course = db.execute(
    "select c.course_id from Courses c "
    "where c.course_id not in "
    "('" + "','".join(
        r[0] for r in db.execute(
            "select course_id from Registered where student_id = '11'"
        ).rows
    ) + "') order by c.course_id limit 1"
).scalar()
if other_course:
    show(student, f"select * from Grades where course_id = '{other_course}'",
         f"grades in {other_course} — NOT registered, rejected")

show(student, "select distinct name, type from Students",
     "student directory (U3: every student registers for some course)")
show(student, "select name, type from Students",
     "same without DISTINCT — multiset semantics forbid it (Ex. 5.1)")
show(student, f"select avg(grade) from Grades where course_id = '{my_course}'",
     "course average via the AvgGrades aggregate view")
show(student, "select avg(grade) from Grades",
     "global average — not derivable, rejected")

print()
print("=" * 70)
print("SECRETARY (access-pattern view SingleGrade, §6)")
print("=" * 70)
secretary = db.connect(user_id="secretary", mode="non-truman")
# The secretary may also browse the student roster.
db.execute("create authorization view Roster as select * from Students")
db.grant("Roster", to_user="secretary")
show(secretary, "select * from Grades where student_id = '12'",
     "one specific student: $$1 binds to '12'")
show(secretary, "select * from Grades",
     "all grades at once — exactly what the access pattern forbids")
show(secretary,
     "select s.name, g.grade from Students s, Grades g "
     "where s.student_id = g.student_id",
     "join via dependent join (one SingleGrade call per student)")

print()
print("=" * 70)
print("UPDATES (paper §4.4)")
print("=" * 70)
db.execute("authorize insert on Registered where Registered.student_id = $user_id")
db.execute("authorize delete on Registered where Registered.student_id = $user_id")
free_course = db.execute(
    "select course_id from Courses order by course_id desc limit 1"
).scalar()
db.execute(f"delete from Registered where student_id = '11' and course_id = '{free_course}'")
print(f"insert own registration ({free_course}):",
      student.execute(f"insert into Registered values ('11', '{free_course}')"),
      "row")
try:
    student.execute(f"insert into Registered values ('12', '{free_course}')")
except Exception as exc:
    print(f"insert for another student: REJECTED ({exc})")
