"""Bank scenario (paper Section 1's motivating examples).

Three principals with three authorization styles:

* **customer** — parameterized view: her own accounts only;
* **teller** — cell-level view: every balance, but no addresses;
* **restricted teller** — access-pattern view: any ONE account by
  number, never the full list.

Run:  python examples/bank_teller.py
"""

from repro import QueryRejectedError
from repro.workloads.bank import BankConfig, account_ids, build_bank, grant_teller

db = build_bank(BankConfig(customers=12, accounts_per_customer=2, seed=31))
grant_teller(db, "teller")
db.grant("AccountByNumber", "window_clerk")


def attempt(conn, sql, label):
    print(f"\n  {label}")
    print(f"    {sql}")
    try:
        result = conn.query(sql)
        sample = result.rows[:3]
        print(f"    OK: {len(result)} row(s); sample {sample}")
    except QueryRejectedError:
        print("    REJECTED (not derivable from this principal's views)")


print("=" * 70)
print("CUSTOMER C100 — 'her account balance, and no one else's'")
print("=" * 70)
customer = db.connect(user_id="C100", mode="non-truman")
attempt(customer, "select acct_id, balance from Accounts where cust_id = 'C100'",
        "own balances")
attempt(customer, "select balance from Accounts where cust_id = 'C101'",
        "someone else's balance")
attempt(customer, "select avg(balance) from Accounts",
        "bank-wide statistics")

print()
print("=" * 70)
print("TELLER — 'balances of all accounts but not the addresses'")
print("=" * 70)
teller = db.connect(user_id="teller", mode="non-truman")
attempt(teller, "select acct_id, balance from Accounts", "all balances")
attempt(teller,
        "select c.name, a.balance from Customers c, Accounts a "
        "where c.cust_id = a.cust_id",
        "balances with customer names")
attempt(teller, "select name, address from Customers",
        "customer addresses (projected away by TellerBalances)")
attempt(teller, "select branch, sum(balance) from Accounts group by branch",
        "branch totals via the BranchTotals aggregate view")

print()
print("=" * 70)
print("WINDOW CLERK — 'any one account by account-id, never the list'")
print("=" * 70)
clerk = db.connect(user_id="window_clerk", mode="non-truman")
some_account = account_ids(db)[5]
attempt(clerk, f"select balance from Accounts where acct_id = '{some_account}'",
        f"lookup of {some_account} ($$1 bound by the query constant)")
attempt(clerk, "select acct_id, balance from Accounts",
        "the full list")
attempt(clerk, "select count(*) from Accounts",
        "even the count is withheld")

print()
print("=" * 70)
print("WHY: the decision trace for the teller's join")
print("=" * 70)
decision = teller.check_validity(
    "select c.name, a.balance from Customers c, Accounts a "
    "where c.cust_id = a.cust_id"
)
print(decision.describe())
