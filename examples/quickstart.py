"""Quickstart: fine-grained access control in 60 lines.

Creates the paper's university schema, deploys a parameterized
authorization view, and shows the Non-Truman model at work: valid
queries run unmodified, invalid queries are rejected with an
explanation.

Run:  python examples/quickstart.py
"""

from repro import Database, QueryRejectedError

db = Database()

# 1. Schema and data (paper Section 2's running example).
db.execute_script(
    """
    create table Students(student_id varchar(10) primary key,
        name varchar(40) not null, type varchar(10));
    create table Grades(student_id varchar(10), course_id varchar(10),
        grade float,
        primary key (student_id, course_id),
        foreign key (student_id) references Students);

    insert into Students values
        ('11','Alice','FullTime'), ('12','Bob','PartTime');
    insert into Grades values
        ('11','CS101',3.5), ('11','CS102',4.0), ('12','CS101',2.5);
    """
)

# 2. One parameterized authorization view serves every student:
#    $user_id is bound from the session at access time.
db.execute(
    "create authorization view MyGrades as "
    "select * from Grades where student_id = $user_id"
)
db.grant_public("MyGrades")

# 3. Alice connects under the Non-Truman model and queries the BASE
#    table — authorization-transparent querying.
alice = db.connect(user_id="11", mode="non-truman")

result = alice.query("select course_id, grade from Grades where student_id = '11'")
print("Alice's grades:", result.rows)

result = alice.query("select avg(grade) from Grades where student_id = '11'")
print("Alice's average:", result.scalar())

# 4. Queries that cannot be answered from her views are REJECTED —
#    never silently modified.
for sql in (
    "select avg(grade) from Grades",          # everyone's average
    "select * from Grades where student_id = '12'",  # Bob's grades
):
    try:
        alice.query(sql)
    except QueryRejectedError as exc:
        print(f"rejected: {sql!r}\n  -> {exc}")

# 5. Inspect WHY a query was accepted: the decision carries the witness
#    rewriting over the authorization views and the rule trace.
decision = alice.check_validity(
    "select course_id from Grades where student_id = '11' and grade >= 3.9"
)
print("\nvalidity decision:")
print(decision.describe())
print("\nwitness plan:")
print(decision.witness.pretty())
