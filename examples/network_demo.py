"""Network front-end demo: serve the gateway over TCP, talk to it.

Starts a :class:`~repro.net.server.NetworkService` over an in-process
university database, then drives it like a real deployment would:

1. authenticated sessions (one per student) issuing valid queries;
2. a denied query coming back as the same typed ``QueryRejectedError``
   the library raises in-process;
3. a result large enough to stream across several row_batch frames;
4. a client that drops mid-query — watch ``disconnect_cancels`` tick
   and the audit log record the cancelled request exactly once;
5. the merged gateway + network stats snapshot, fetched over the wire.

Run with ``PYTHONPATH=src python examples/network_demo.py``.
"""

import time

from repro.db import Database
from repro.errors import QueryRejectedError
from repro.net import NetworkService, ReproClient
from repro.service import EnforcementGateway
from repro.workloads.university import build_university


def main() -> None:
    db = build_university()
    gateway = EnforcementGateway(db, workers=4, name="demo-gateway")

    # a small max frame so the demo visibly streams in chunks
    with NetworkService(gateway, max_frame_size=4096) as service:
        host, port = service.address
        print(f"serving on {host}:{port}\n")

        with ReproClient(host, port, user="11") as client:
            print("-- a student reads her own grades over the wire --")
            result = client.query(
                "select course_id, grade from Grades where student_id = '11'"
            )
            for row in result.rows:
                print("  ", row)
            print(f"  decision: {result.decision['validity']} "
                  f"(rules {result.decision['rules']})\n")

            print("-- the same session tries everyone's grades --")
            try:
                client.query("select * from Grades")
            except QueryRejectedError as exc:
                print(f"  denied, as in-process: {exc}\n")

            print("-- a big result streams as multiple frames --")
            result = client.query("select * from Registered", mode="open")
            print(f"  {len(result.rows)} rows in "
                  f"{result.row_frames} row_batch frame(s)\n")

        print("-- a client drops mid-query --")
        dropper = ReproClient(host, port, mode="open")
        dropper.start_query(
            "select count(*) from Registered r1, Registered r2, Registered r3 "
            "where r1.student_id < r2.student_id "
            "and r2.course_id <> r3.course_id"
        )
        time.sleep(0.1)
        dropper.drop()  # no goodbye: the server must cancel the work
        time.sleep(0.5)
        print(f"  disconnect_cancels = "
              f"{gateway.metrics.counter('disconnect_cancels').value}")
        record = gateway.audit.tail(1)[0]
        print(f"  last audit record: status={record.status} "
              f"signature={record.signature[:60]}...\n")

        print("-- merged stats over the wire --")
        with ReproClient(host, port) as client:
            stats = client.stats()
            for key in ("requests_ok", "requests_rejected", "net_queries",
                        "frames_sent", "frames_received", "connections_open",
                        "sessions_authenticated", "disconnect_cancels",
                        "requests_cancelled_inflight"):
                print(f"  {key:<28} {stats.get(key)}")

    gateway.shutdown()
    print("\ndone")


if __name__ == "__main__":
    main()
