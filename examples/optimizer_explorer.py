"""Volcano optimizer explorer (paper §5.6, Figure 1).

Builds the AND-OR DAG for A ⋈ B ⋈ C, prints its equivalence/operation
structure, shows cost-based plan extraction, and demonstrates §5.6.2's
validity marking with a view unified into the query DAG.

Run:  python examples/optimizer_explorer.py
"""

from repro import Database
from repro.sql import parse_query
from repro.algebra.translate import Translator
from repro.optimizer import VolcanoOptimizer

db = Database()
db.execute_script(
    """
    create table A(id int primary key, next_id int);
    create table B(id int primary key, next_id int);
    create table C(id int primary key, next_id int);
    """
)
for table, rows in (("A", 1000), ("B", 100), ("C", 10)):
    for i in range(3):  # small physical data; stats are what matter
        db.execute(f"insert into {table} values ({i}, {i})")


class FakeStats:
    """Pretend table sizes for the cost model."""

    sizes = {"a": 1000, "b": 100, "c": 10}

    def __call__(self, table: str) -> int:
        return self.sizes.get(table.lower(), 10)


optimizer = VolcanoOptimizer(FakeStats())
session = db.connect().session

print("=" * 70)
print("Figure 1: the AND-OR DAG for  A ⋈ B ⋈ C")
print("=" * 70)
plan = db.plan_query(
    parse_query(
        "select * from A, B, C where A.next_id = B.id and B.next_id = C.id"
    ),
    session,
)
memo, root, stats = optimizer.expand_only(plan, joins_only=True)
print(f"equivalence nodes: {stats.eq_nodes}")
print(f"operation nodes:   {stats.op_nodes}")
print(f"plans represented: {stats.plans}")
print(f"unifications:      {stats.merges}")
print()
print("operations per equivalence node:")
for eq in memo.equivalence_nodes():
    ops_repr = ", ".join(
        f"{op.kind}({', '.join(str(c) for c in op.children)})"
        for op in eq.operations
    )
    print(f"  e{eq.id}: {ops_repr}")

print()
print("=" * 70)
print("Cost-based plan choice (|A|=1000, |B|=100, |C|=10)")
print("=" * 70)
result = optimizer.optimize(plan)
print(f"best plan cost: {result.plan.cost:,.0f}")
print(result.plan.describe())
print("(the optimizer joins the small relations first)")

print()
print("=" * 70)
print("§5.6.2: validity marking with a unified view DAG")
print("=" * 70)
view_plan = Translator(db.catalog).translate(
    parse_query("select * from A where next_id > 0")
)
for sql, note in (
    ("select * from A where next_id > 0", "identical to the view"),
    ("select id from A where next_id > 0", "narrower projection (subsumption)"),
    ("select * from A where next_id > 0 and id = 1", "stronger selection"),
    ("select * from A", "weaker than the view -> must fail"),
):
    query_plan = db.plan_query(parse_query(sql), session)
    verdict = optimizer.check_validity(query_plan, [view_plan])
    print(f"  {'VALID  ' if verdict.valid else 'invalid'}  {sql:<50} ({note})")
