"""Truman vs Non-Truman, side by side (paper Sections 3-4).

Runs the same queries under both models and prints what each user
actually sees — reproducing §3.3's misleading-answer pitfalls and how
the Non-Truman model avoids them.

Run:  python examples/truman_vs_nontruman.py
"""

from repro import QueryRejectedError
from repro.workloads import UniversityConfig, build_university

db = build_university(UniversityConfig(students=25, courses=5, seed=23))
db.set_truman_view("Grades", "MyGrades")

truman = db.connect(user_id="11", mode="truman")
nontruman = db.connect(user_id="11", mode="non-truman")

QUERIES = [
    ("own grades",
     "select course_id, grade from Grades where student_id = '11'"),
    ("own average",
     "select avg(grade) from Grades where student_id = '11'"),
    ("class average  <-- the paper's §3.3 pitfall",
     "select avg(grade) from Grades"),
    ("grade count",
     "select count(*) from Grades"),
    ("top grade in the school",
     "select max(grade) from Grades"),
]

header = f"{'query':<45} {'truth':>12} {'Truman':>12} {'Non-Truman':>14}"
print(header)
print("-" * len(header))

for label, sql in QUERIES:
    truth = db.execute(sql)
    truth_repr = (
        f"{truth.scalar():.3f}" if len(truth) == 1 and len(truth.columns) == 1
        and isinstance(truth.scalar(), (int, float))
        else f"{len(truth)} rows"
    )

    truman_result = truman.query(sql)
    truman_repr = (
        f"{truman_result.scalar():.3f}"
        if len(truman_result) == 1 and len(truman_result.columns) == 1
        and isinstance(truman_result.scalar(), (int, float))
        else f"{len(truman_result)} rows"
    )
    if truman_repr != truth_repr:
        truman_repr += " (!)"

    try:
        nt_result = nontruman.query(sql)
        nt_repr = (
            f"{nt_result.scalar():.3f}"
            if len(nt_result) == 1 and len(nt_result.columns) == 1
            and isinstance(nt_result.scalar(), (int, float))
            else f"{len(nt_result)} rows"
        )
    except QueryRejectedError:
        nt_repr = "REJECTED"

    print(f"{label:<45} {truth_repr:>12} {truman_repr:>12} {nt_repr:>14}")

print()
print("(!) = silently differs from the true answer: the Truman model computed")
print("the query over the user's restricted view without telling anyone.")
print("The Non-Truman model never does this — it answers exactly or rejects.")

print()
print("The redundant-join pitfall (§3.3, third bullet):")
from repro.sql import parse_query
from repro.truman.rewrite import truman_rewrite
from repro.sql.render import render

db2 = build_university(UniversityConfig(students=10, courses=4, seed=5))
db2.set_truman_view("Grades", "CoStudentGrades")
session = db2.connect(user_id="11").session
query = parse_query(
    "select g.grade from Grades g, Registered r "
    "where r.student_id = '11' and g.course_id = r.course_id"
)
rewritten = truman_rewrite(db2, query, session)
print("\nuser query (already tests registration):")
print(" ", render(query))
print("Truman-modified query (tests registration AGAIN inside the view):")
print(" ", render(rewritten))
